"""A stage-limited P4 pipeline model.

A Tofino-class switch processes every packet through a fixed number of
match-action stages (12 per pipe on Tofino 1).  Each stage can apply a
bounded number of tables, and actions are restricted to ALU primitives
plus register read-modify-writes.  Programs that need more stages than
the hardware offers simply do not compile — this is the resource
ceiling behind the paper's "support more applications with a smaller
speedup each, or fewer with a larger speedup each" trade-off
(section 6).

The model:

* a **PHV** (packet header vector) is a mutable mapping of named
  integer fields parsed from the packet plus per-packet metadata;
* a **Stage** holds up to ``MAX_TABLES_PER_STAGE`` match-action tables;
* **actions** are registered callables constrained to operate through
  the :class:`~repro.switch.primitives.SwitchALU` and register arrays;
* processing yields a :class:`PipelineResult` with forwarded packets,
  cloned packets (Snatch clones the original toward the web server and
  rewrites the clone toward the analytics server), control-plane
  digests, and a per-packet latency estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple,
)

from repro.obs.registry import MetricsRegistry, get_registry
from repro.switch.primitives import SwitchALU, UnsupportedOperationError
from repro.switch.registers import RegisterFile
from repro.switch.tables import MatchActionTable, MatchKind

__all__ = [
    "PHV",
    "Digest",
    "Stage",
    "PipelineResult",
    "SwitchPipeline",
    "CompiledPipeline",
    "PipelineCompileError",
    "MAX_STAGES",
    "MAX_TABLES_PER_STAGE",
    "LINE_RATE_LATENCY_MS",
    "AES_PASS_LATENCY_MS",
    "BATCH_SIZE_EDGES",
]

MAX_STAGES = 12
MAX_TABLES_PER_STAGE = 4

# Per-packet forwarding latency of a Tofino is sub-microsecond; the
# paper models AES en/decryption of a 160-bit cookie as ~0.1 ms [45].
LINE_RATE_LATENCY_MS = 0.001
AES_PASS_LATENCY_MS = 0.1

# Powers of 1-2-5 covering a single packet up to recirculation-buffer
# sized bursts; integer edges, same style as the latency buckets.
BATCH_SIZE_EDGES: Tuple[int, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500,
    1000, 2000, 5000, 10000, 100000, 1000000,
)


class PipelineCompileError(RuntimeError):
    """Raised when a program exceeds the hardware resource model."""


class PHV:
    """Packet header vector: named integer/bytes fields plus metadata."""

    __slots__ = ("fields", "metadata", "drop", "egress_port")

    def __init__(self, fields: Optional[Dict[str, Any]] = None):
        self.fields: Dict[str, Any] = dict(fields or {})
        self.metadata: Dict[str, Any] = {}
        self.drop = False
        self.egress_port: Optional[int] = None

    def __getitem__(self, name: str) -> Any:
        if name not in self.fields:
            raise KeyError("PHV has no field %r" % name)
        return self.fields[name]

    def __setitem__(self, name: str, value: Any) -> None:
        self.fields[name] = value

    def __contains__(self, name: str) -> bool:
        return name in self.fields

    def get(self, name: str, default: Any = None) -> Any:
        return self.fields.get(name, default)

    def copy(self) -> "PHV":
        clone = PHV(dict(self.fields))
        clone.metadata = dict(self.metadata)
        return clone


@dataclass(slots=True)
class Digest:
    """A message punted to the switch control plane (P4 PSA digest)."""

    name: str
    data: Dict[str, Any]


@dataclass
class Stage:
    """One physical pipeline stage holding a few tables."""

    index: int
    tables: List[MatchActionTable] = field(default_factory=list)

    def add_table(self, table: MatchActionTable) -> None:
        if len(self.tables) >= MAX_TABLES_PER_STAGE:
            raise PipelineCompileError(
                "stage %d already holds %d tables"
                % (self.index, MAX_TABLES_PER_STAGE)
            )
        self.tables.append(table)


@dataclass(slots=True)
class PipelineResult:
    """Outcome of processing one packet."""

    phv: PHV
    forwarded: bool
    clones: List[PHV] = field(default_factory=list)
    digests: List[Digest] = field(default_factory=list)
    latency_ms: float = LINE_RATE_LATENCY_MS


ActionFn = Callable[["SwitchPipeline", PHV, Dict[str, Any]], None]


class SwitchPipeline:
    """A compiled switch program: stages, tables, registers, actions.

    Usage::

        pipe = SwitchPipeline("lark0")
        table = pipe.add_table(stage=0, table=MatchActionTable(...))
        pipe.register_action("count", count_fn)
        result = pipe.process({"udp_dport": 443, ...})
    """

    def __init__(self, name: str, sram_budget_bits: int = 10 * 1024 * 1024,
                 registry: Optional[MetricsRegistry] = None):
        self.name = name
        self.stages: List[Stage] = []
        self.registers = RegisterFile(sram_budget_bits)
        self.alu = SwitchALU(width=64)
        self._actions: Dict[str, ActionFn] = {"NoAction": lambda p, v, a: None}
        self._clone_requests: List[PHV] = []
        self._digest_queue: List[Digest] = []
        self._extra_latency_ms = 0.0
        self.packets_processed = 0
        self.packets_dropped = 0
        # Program shape version: bumped whenever stages, tables or
        # actions change, so a compiled batch plan can tell it is stale.
        self._program_version = 0
        self._compiled: Optional["CompiledPipeline"] = None
        # Instruments are resolved once at construction so the
        # per-packet path only does integer increments.
        self.metrics = registry if registry is not None else get_registry()
        base = "pipeline.%s" % name
        self._m_packets = self.metrics.counter(base + ".packets")
        self._m_drops = self.metrics.counter(base + ".drops")
        self._m_latency_us = self.metrics.histogram(base + ".latency_us")
        self._m_batches = self.metrics.counter(base + ".batches")
        self._m_batch_size = self.metrics.histogram(
            base + ".batch.size", BATCH_SIZE_EDGES
        )
        self._m_batch_latency_us = self.metrics.histogram(
            base + ".batch.latency_us"
        )
        self._stage_meters: List[Any] = []  # (hits, misses) per stage

    # -- program construction -------------------------------------------

    def add_stage(self) -> Stage:
        if len(self.stages) >= MAX_STAGES:
            raise PipelineCompileError(
                "pipeline %s exceeds %d stages" % (self.name, MAX_STAGES)
            )
        stage = Stage(index=len(self.stages))
        self.stages.append(stage)
        prefix = "pipeline.%s.stage%02d" % (self.name, stage.index)
        self._stage_meters.append((
            self.metrics.counter(prefix + ".hits"),
            self.metrics.counter(prefix + ".misses"),
        ))
        self._program_version += 1
        return stage

    def add_table(
        self, stage: int, table: MatchActionTable
    ) -> MatchActionTable:
        while len(self.stages) <= stage:
            self.add_stage()
        self.stages[stage].add_table(table)
        self._program_version += 1
        return table

    def register_action(self, name: str, fn: ActionFn) -> None:
        if name in self._actions:
            raise ValueError("action %r already registered" % name)
        self._actions[name] = fn
        self._program_version += 1

    # -- runtime services available to actions ---------------------------

    def clone_packet(self, phv: PHV) -> PHV:
        """Request an egress clone of the current packet (Snatch clones
        the original toward its normal route and rewrites the clone
        toward the analytics server)."""
        clone = phv.copy()
        self._clone_requests.append(clone)
        return clone

    def emit_digest(self, name: str, data: Dict[str, Any]) -> None:
        self._digest_queue.append(Digest(name, dict(data)))

    def charge_latency(self, ms: float) -> None:
        """Account extra per-packet latency (e.g. an AES pass)."""
        if ms < 0:
            raise ValueError("latency must be non-negative")
        self._extra_latency_ms += ms

    # -- packet processing ------------------------------------------------

    def process(self, fields: Dict[str, Any]) -> PipelineResult:
        """Run one packet through all stages in order."""
        phv = PHV(fields)
        self._clone_requests = []
        self._digest_queue = []
        self._extra_latency_ms = 0.0
        self.packets_processed += 1
        self._m_packets.inc()

        for stage_index, stage in enumerate(self.stages):
            if phv.drop:
                break
            hit_meter, miss_meter = self._stage_meters[stage_index]
            for table in stage.tables:
                if phv.drop:
                    break
                values = [phv.get(key.field_name, 0) for key in table.keys]
                action, params, hit = table.lookup(values)
                (hit_meter if hit else miss_meter).inc()
                fn = self._actions.get(action)
                if fn is None:
                    raise UnsupportedOperationError(
                        "table %s selected unregistered action %r"
                        % (table.name, action)
                    )
                fn(self, phv, params)

        if phv.drop:
            self.packets_dropped += 1
            self._m_drops.inc()
        latency_ms = LINE_RATE_LATENCY_MS + self._extra_latency_ms
        self._m_latency_us.observe(latency_ms * 1000.0)
        return PipelineResult(
            phv=phv,
            forwarded=not phv.drop,
            clones=list(self._clone_requests),
            digests=list(self._digest_queue),
            latency_ms=latency_ms,
        )

    # -- batched fast path ------------------------------------------------

    def compile_batch(self) -> "CompiledPipeline":
        """Return the flattened execution plan, rebuilding it only when
        the program shape or a table's control-plane state changed."""
        compiled = self._compiled
        if compiled is None or not compiled.is_current():
            compiled = CompiledPipeline(self)
            self._compiled = compiled
        return compiled

    def process_batch(
        self,
        batch: Iterable[Dict[str, Any]],
        sink: Optional[Callable[[PipelineResult], None]] = None,
    ) -> List[PipelineResult]:
        """Run a batch of packets through the compiled fast path.

        Results (PHVs, clones, digests, latencies, register state,
        counters) are bit-identical to calling :meth:`process` once per
        element in order; only dispatch overhead is amortized.

        ``batch`` may be a lazy iterable (even one yielding the same
        mutated dict — :class:`PHV` copies its fields), so callers can
        stream header dicts without materializing one per packet; the
        packet counters settle after the loop.

        When ``sink`` is given, each :class:`PipelineResult` is handed
        to it as soon as the packet finishes and the return value is an
        empty list.  Callers that only keep a condensed per-packet
        summary use this so the PHV graph dies young instead of aging
        through the cyclic-GC generations while the batch accumulates
        (holding every PHV alive is what made large batches slower
        than the scalar loop).
        """
        compiled = self.compile_batch()
        stage_plans = compiled.stage_plans
        results: List[PipelineResult] = []
        total_latency_us = 0.0
        count = 0
        for fields in batch:
            count += 1
            phv = PHV(fields)
            self._clone_requests = []
            self._digest_queue = []
            self._extra_latency_ms = 0.0
            for plan in stage_plans:
                if phv.drop:
                    break
                for apply_fn in plan:
                    if phv.drop:
                        break
                    apply_fn(self, phv)
            if phv.drop:
                self.packets_dropped += 1
                self._m_drops.inc()
            latency_ms = LINE_RATE_LATENCY_MS + self._extra_latency_ms
            self._m_latency_us.observe(latency_ms * 1000.0)
            total_latency_us += latency_ms * 1000.0
            result = PipelineResult(
                phv=phv,
                forwarded=not phv.drop,
                clones=list(self._clone_requests),
                digests=list(self._digest_queue),
                latency_ms=latency_ms,
            )
            if sink is None:
                results.append(result)
            else:
                sink(result)
        self.packets_processed += count
        self._m_packets.inc(count)
        self._m_batches.inc()
        self._m_batch_size.observe(count)
        self._m_batch_latency_us.observe(total_latency_us)
        return results

    # -- introspection ----------------------------------------------------

    def resource_report(self) -> Dict[str, Any]:
        return {
            "stages_used": len(self.stages),
            "stages_max": MAX_STAGES,
            "tables": sum(len(s.tables) for s in self.stages),
            "sram_used_bits": self.registers.used_bits,
            "sram_budget_bits": self.registers.sram_budget_bits,
            "packets_processed": self.packets_processed,
            "packets_dropped": self.packets_dropped,
        }


_TableApplyFn = Callable[[SwitchPipeline, PHV], None]


class CompiledPipeline:
    """A flattened execution plan for :meth:`SwitchPipeline.process_batch`.

    Compilation pre-resolves, per table: the key field names, the
    action callables, and — for tables whose keys are all EXACT — a
    dict dispatch index keyed on the match-value tuple.  The index is
    built in TCAM order (entries pre-sorted by descending priority,
    first match wins), so dispatch is one dict probe instead of a
    linear scan of entries.  Tables with ternary/LPM/range keys, or
    with unhashable match specs, fall back to the scalar
    :meth:`~repro.switch.tables.MatchActionTable.lookup`.

    The plan records the pipeline's program version and every table's
    control-plane version, so staleness detection before each batch is
    a handful of integer comparisons; any control-plane insert/remove
    or program mutation triggers a transparent recompile.
    """

    def __init__(self, pipeline: SwitchPipeline):
        self.pipeline = pipeline
        self.program_version = pipeline._program_version
        self._tables: List[MatchActionTable] = [
            table for stage in pipeline.stages for table in stage.tables
        ]
        self.table_versions: Tuple[int, ...] = tuple(
            table.version for table in self._tables
        )
        self.stage_plans: List[List[_TableApplyFn]] = []
        for stage_index, stage in enumerate(pipeline.stages):
            meters = pipeline._stage_meters[stage_index]
            self.stage_plans.append([
                self._compile_table(table, meters) for table in stage.tables
            ])

    def is_current(self) -> bool:
        pipe = self.pipeline
        if self.program_version != pipe._program_version:
            return False
        tables = [table for stage in pipe.stages for table in stage.tables]
        if len(tables) != len(self._tables):
            return False
        return all(
            now is then and now.version == version
            for now, then, version
            in zip(tables, self._tables, self.table_versions)
        )

    def _compile_table(
        self, table: MatchActionTable, meters: Tuple[Any, Any]
    ) -> _TableApplyFn:
        hit_meter, miss_meter = meters
        actions = self.pipeline._actions
        key_names = tuple(key.field_name for key in table.keys)

        index: Optional[Dict[Tuple[Any, ...], Tuple[str, Any, Dict[str, Any]]]]
        index = None
        if all(key.kind is MatchKind.EXACT for key in table.keys):
            index = {}
            try:
                for entry in table.entries():
                    # setdefault keeps the first (highest-priority) entry.
                    index.setdefault(
                        tuple(entry.match_values),
                        (entry.action, actions.get(entry.action),
                         entry.action_params),
                    )
            except TypeError:
                index = None

        if index is not None:
            default = (
                table.default_action,
                actions.get(table.default_action),
                table.default_params,
            )

            # Key-tuple builders specialized by arity: the generic
            # tuple(generator) spins up a generator object per packet,
            # which is both the slowest and the most allocation-heavy
            # way to build a 1- or 2-element key.
            if len(key_names) == 1:
                _k0 = key_names[0]

                def build_key(fields: Dict[str, Any], _k0=_k0):
                    return (fields.get(_k0, 0),)
            elif len(key_names) == 2:
                _k0, _k1 = key_names

                def build_key(fields: Dict[str, Any], _k0=_k0, _k1=_k1):
                    return (fields.get(_k0, 0), fields.get(_k1, 0))
            else:

                def build_key(fields: Dict[str, Any], _keys=key_names):
                    return tuple([fields.get(name, 0) for name in _keys])

            def apply_exact(
                pipe: SwitchPipeline, phv: PHV,
                _table=table, _index=index, _build_key=build_key,
                _default=default, _hit=hit_meter, _miss=miss_meter,
            ) -> None:
                _table.lookups += 1
                try:
                    found = _index.get(_build_key(phv.fields))
                except TypeError:
                    # Unhashable packet value can never equal a hashable
                    # installed exact spec: scalar lookup would miss too.
                    found = None
                if found is not None:
                    _table.hits += 1
                    _hit.inc()
                    action, fn, params = found
                else:
                    _miss.inc()
                    action, fn, params = _default
                    params = dict(params)
                if fn is None:
                    raise UnsupportedOperationError(
                        "table %s selected unregistered action %r"
                        % (_table.name, action)
                    )
                fn(pipe, phv, params)

            return apply_exact

        def apply_linear(
            pipe: SwitchPipeline, phv: PHV,
            _table=table, _keys=key_names, _actions=actions,
            _hit=hit_meter, _miss=miss_meter,
        ) -> None:
            values = [phv.fields.get(name, 0) for name in _keys]
            action, params, hit = _table.lookup(values)
            (_hit if hit else _miss).inc()
            fn = _actions.get(action)
            if fn is None:
                raise UnsupportedOperationError(
                    "table %s selected unregistered action %r"
                    % (_table.name, action)
                )
            fn(pipe, phv, params)

        return apply_linear
