"""Programmable-switch substrate: a P4/Tofino-style pipeline model.

LarkSwitch and AggSwitch (paper section 4.1) are built on this model in
:mod:`repro.core`.  The substrate enforces the hardware constraints the
paper leans on: limited stages, integer-only ALU, match-action tables,
scarce register SRAM, clones, and control-plane digests.
"""

from repro.switch.bloom import BloomFilter, bloom_parameters, optimal_num_hashes
from repro.switch.columns import (
    HAVE_NUMPY,
    PacketColumns,
    force_numpy,
    group_rows,
    numpy_enabled,
)
from repro.switch.hashing import (
    HashUnit,
    crc16,
    crc16_many,
    crc32,
    crc32_many,
    fold_hash,
)
from repro.switch.pipeline import (
    AES_PASS_LATENCY_MS,
    Digest,
    LINE_RATE_LATENCY_MS,
    MAX_STAGES,
    MAX_TABLES_PER_STAGE,
    PHV,
    PipelineCompileError,
    PipelineResult,
    Stage,
    SwitchPipeline,
)
from repro.switch.primitives import (
    SUPPORTED_OPS,
    SwitchALU,
    UnsupportedOperationError,
)
from repro.switch.parser import (
    ETHERNET,
    HeaderField,
    HeaderType,
    IPV4,
    ParseError,
    ParseState,
    Parser,
    QUIC_SHORT,
    UDP,
    build_snatch_packet,
    snatch_parser,
)
from repro.switch.sketch import CountMinSketch, dimensions_for
from repro.switch.quantile_sketch import (
    SampledQuantileSketch,
    capacity_for,
    epsilon_for,
)
from repro.switch.registers import (
    RegisterArray,
    RegisterFile,
    SramExhaustedError,
)
from repro.switch.tables import (
    MatchActionTable,
    MatchKey,
    MatchKind,
    TableEntry,
    TableFullError,
)

__all__ = [
    "AES_PASS_LATENCY_MS",
    "BloomFilter",
    "CountMinSketch",
    "ETHERNET",
    "HeaderField",
    "HeaderType",
    "IPV4",
    "ParseError",
    "ParseState",
    "Parser",
    "QUIC_SHORT",
    "UDP",
    "Digest",
    "HashUnit",
    "LINE_RATE_LATENCY_MS",
    "MAX_STAGES",
    "MAX_TABLES_PER_STAGE",
    "MatchActionTable",
    "MatchKey",
    "MatchKind",
    "PHV",
    "PipelineCompileError",
    "PipelineResult",
    "RegisterArray",
    "RegisterFile",
    "SampledQuantileSketch",
    "capacity_for",
    "epsilon_for",
    "SUPPORTED_OPS",
    "SramExhaustedError",
    "Stage",
    "SwitchALU",
    "SwitchPipeline",
    "TableEntry",
    "TableFullError",
    "UnsupportedOperationError",
    "HAVE_NUMPY",
    "PacketColumns",
    "bloom_parameters",
    "crc16",
    "crc16_many",
    "build_snatch_packet",
    "dimensions_for",
    "force_numpy",
    "group_rows",
    "numpy_enabled",
    "snatch_parser",
    "crc32",
    "crc32_many",
    "fold_hash",
    "optimal_num_hashes",
]
