"""Columnar (struct-of-arrays) packet representation for the data plane.

The scalar pipeline hands every packet around as a Python dict (one PHV
per packet); the batch fast path amortizes dispatch but still runs a
Python-object inner loop.  For sketch-style switch analytics — hashing,
Bloom tests, register scatter-adds — the per-packet work is identical
ALU arithmetic over different bytes, which is exactly the shape that
vectorizes.  This module provides the shared substrate:

* :data:`HAVE_NUMPY` / :func:`numpy_enabled` — a single gate for the
  optional numpy dependency.  Setting the environment variable
  ``REPRO_NO_NUMPY=1`` (or calling :func:`force_numpy`) disables the
  vectorized kernels even when numpy is importable, which is how the
  CI fallback job and the differential suite prove the pure-Python
  path is the semantic reference.
* :class:`PacketColumns` — a batch of packets as padded byte matrices
  plus parallel integer arrays (lengths, leading header fields), built
  once per batch by the parser/switch front end.
* :func:`group_rows` — duplicate-grouping over a byte-slice of every
  row (the "group duplicate cookie bytes before hitting the cipher"
  primitive): returns first-occurrence indexes and an inverse mapping,
  vectorized via ``np.unique`` when numpy is on and a dict scan
  otherwise.  Both implementations return identical groupings with
  first-occurrence order preserved.

Every kernel built on top of this module (vectorized CRC, batched AES,
register scatter ops) is *bit-identical* to its scalar counterpart;
``tests/differential`` proves it end to end.
"""

from __future__ import annotations

import os
from typing import Any, List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised via the no-numpy CI job
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "HAVE_NUMPY",
    "numpy_enabled",
    "force_numpy",
    "get_numpy",
    "PacketColumns",
    "group_rows",
]

HAVE_NUMPY = _np is not None

# Tri-state override: None = follow availability, True/False = forced.
_FORCED: Optional[bool] = None
if os.environ.get("REPRO_NO_NUMPY", "").strip() not in ("", "0"):
    _FORCED = False


def numpy_enabled() -> bool:
    """True when the vectorized kernels should run."""
    if _FORCED is not None:
        return _FORCED and HAVE_NUMPY
    return HAVE_NUMPY


def force_numpy(enabled: Optional[bool]) -> None:
    """Override the numpy gate (``None`` restores auto-detection).

    Used by the differential suite to run the very same workload with
    kernels on and off; production code never calls this.
    """
    global _FORCED
    _FORCED = enabled


def get_numpy():
    """The numpy module, or ``None`` when the gate is closed."""
    return _np if numpy_enabled() else None


class PacketColumns:
    """A batch of variable-length byte strings as struct-of-arrays.

    ``data`` is an ``(n, max_len)`` uint8 matrix, rows zero-padded past
    their length; ``lengths`` the per-row byte counts.  When numpy is
    unavailable the same attributes hold plain Python lists and the
    consumers fall back to scalar loops.
    """

    __slots__ = ("_raw", "data", "lengths", "n", "max_len", "vectorized")

    def __init__(self, rows: Sequence[bytes]):
        raw: List[bytes] = [bytes(r) for r in rows]
        self._raw: Optional[List[bytes]] = raw
        self.n = len(raw)
        lens = [len(r) for r in raw]
        self.max_len = max(lens, default=0)
        np = get_numpy()
        self.vectorized = np is not None
        if np is not None:
            lengths = np.asarray(lens, dtype=np.int64)
            if self.n and lens.count(self.max_len) == self.n:
                # Uniform row length (the common case — e.g. 20-byte
                # connection IDs): one buffer join + reshape instead
                # of a frombuffer call per row.
                data = np.frombuffer(
                    b"".join(raw), dtype=np.uint8
                ).reshape(self.n, self.max_len).copy()
            else:
                data = np.zeros((self.n, self.max_len), dtype=np.uint8)
                for i, row in enumerate(raw):
                    if row:
                        data[i, : len(row)] = np.frombuffer(
                            row, dtype=np.uint8
                        )
            self.data = data
            self.lengths = lengths
        else:
            self.data = None
            self.lengths = lens

    @classmethod
    def from_matrix(cls, data, lengths=None) -> "PacketColumns":
        """Wrap an existing ``(n, width)`` uint8 matrix directly.

        The batched packet-assembly path builds the DCID matrix without
        ever holding per-row ``bytes`` objects; ``raw`` materializes
        them lazily only if a scalar consumer asks.  Requires the numpy
        gate open (callers on the scalar path build from rows instead).
        """
        np = get_numpy()
        if np is None:
            raise RuntimeError(
                "PacketColumns.from_matrix needs the numpy gate open"
            )
        self = cls.__new__(cls)
        data = np.ascontiguousarray(data, dtype=np.uint8)
        if data.ndim != 2:
            raise ValueError("expected an (n, width) matrix")
        self._raw = None
        self.n = int(data.shape[0])
        self.max_len = int(data.shape[1]) if self.n else 0
        self.data = data
        if lengths is None:
            self.lengths = np.full(self.n, self.max_len, dtype=np.int64)
        else:
            self.lengths = np.asarray(lengths, dtype=np.int64)
        self.vectorized = True
        return self

    @property
    def raw(self) -> List[bytes]:
        """Per-row ``bytes`` (materialized lazily for matrix-built
        batches; cached afterwards)."""
        if self._raw is None:
            flat = self.data.tobytes()
            m = self.max_len
            self._raw = [
                flat[i * m:i * m + int(self.lengths[i])]
                for i in range(self.n)
            ]
        return self._raw

    def __len__(self) -> int:
        return self.n

    def __iter__(self):
        return iter(self.raw)

    # -- column extraction -------------------------------------------------

    def byte_column(self, index: int, default: int = -1):
        """Byte at ``index`` of every row (``default`` where too short).

        Returns an int64 array when vectorized, else a list.
        """
        np = get_numpy()
        if np is not None and self.vectorized:
            out = np.full(self.n, default, dtype=np.int64)
            mask = self.lengths > index
            if index < self.max_len:
                out[mask] = self.data[mask, index]
            return out
        return [
            row[index] if len(row) > index else default for row in self.raw
        ]

    def be16_column(self, index: int, default: int = 0):
        """Big-endian 16-bit field at ``index`` (``default`` if short)."""
        np = get_numpy()
        if np is not None and self.vectorized:
            out = np.full(self.n, default, dtype=np.int64)
            mask = self.lengths >= index + 2
            if index + 1 < self.max_len:
                out[mask] = (
                    self.data[mask, index].astype(np.int64) << 8
                ) | self.data[mask, index + 1]
            return out
        return [
            int.from_bytes(row[index:index + 2], "big")
            if len(row) >= index + 2 else default
            for row in self.raw
        ]


def group_rows(
    rows: Sequence[bytes],
    start: int = 0,
    end: Optional[int] = None,
) -> Tuple[List[bytes], List[int], "Any"]:
    """Group rows by the byte slice ``[start, end)`` (plus row length).

    Returns ``(keys, firsts, inverse)`` where ``keys[g]`` is the slice
    bytes of group ``g``, ``firsts[g]`` the index of its first
    occurrence, and ``inverse[i]`` the group of row ``i``.  Groups are
    numbered in first-occurrence order, so the scalar and vectorized
    implementations agree exactly.  Two rows with different total
    lengths never share a group even if their slices match (a truncated
    cookie must not alias a full one in the decode memo).
    """
    np = get_numpy()
    if np is not None and len(rows) > 1:
        columns = rows if isinstance(rows, PacketColumns) else None
        if columns is None:
            columns = PacketColumns(rows)
        if columns.vectorized and columns.max_len > 0:
            stop = columns.max_len if end is None else min(end, columns.max_len)
            stop = max(stop, start)
            width = stop - start
            # Key matrix: [length byte-pair | zero-padded slice]; rows
            # shorter than the slice contribute their zero padding,
            # which is fine because length disambiguates.
            key = np.zeros((columns.n, width + 2), dtype=np.uint8)
            key[:, 0] = (columns.lengths >> 8).astype(np.uint8)
            key[:, 1] = (columns.lengths & 0xFF).astype(np.uint8)
            if width:
                key[:, 2:] = columns.data[:, start:stop]
            void = np.ascontiguousarray(key).view(
                np.dtype((np.void, key.shape[1]))
            ).ravel()
            _, first_idx, inverse = np.unique(
                void, return_index=True, return_inverse=True
            )
            # np.unique sorts by value; renumber groups by first
            # occurrence so the ordering matches the scalar scan.
            order = np.argsort(first_idx, kind="stable")
            rank = np.empty_like(order)
            rank[order] = np.arange(len(order))
            inverse = rank[inverse]
            firsts = first_idx[order]
            raws = columns.raw
            keys = [
                raws[int(i)][start:end] if end is not None
                else raws[int(i)][start:]
                for i in firsts
            ]
            return keys, [int(i) for i in firsts], inverse
    # Scalar fallback: one dict scan, first-occurrence order.
    raw_rows = rows.raw if isinstance(rows, PacketColumns) else rows
    seen = {}
    keys: List[bytes] = []
    firsts: List[int] = []
    inverse: List[int] = []
    for i, row in enumerate(raw_rows):
        row = bytes(row)
        sliced = row[start:end] if end is not None else row[start:]
        k = (len(row), sliced)
        group = seen.get(k)
        if group is None:
            group = len(keys)
            seen[k] = group
            keys.append(sliced)
            firsts.append(i)
        inverse.append(group)
    return keys, firsts, inverse
