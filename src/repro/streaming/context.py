"""StreamingContext: the micro-batch scheduler.

Spark Streaming aggregates the stream over a fixed interval and runs
batch analytics on each interval's data (paper section 2.1).  The
paper's testbed sets the interval to 150 ms; its analytical model uses
Spark's 1 s default, for an average in-batch wait of interval/2.

The context here is deterministic and clock-free: callers push
timestamped records into input streams and then drive batches with
:meth:`run_batch` / :meth:`run_until`.  Each batch materializes every
registered stream (so stateful streams advance in order) and fires
output operations.  A configurable ``processing_time_ms`` (constant or
callable on the batch's record count) models the analytics computation
cost, and :meth:`result_time_ms` exposes when a record's batch result
becomes available — the quantity the testbed experiments log.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.streaming.dstream import DStream, InputDStream
from repro.streaming.rdd import RDD

__all__ = ["StreamingContext", "BatchInfo"]

DEFAULT_BATCH_INTERVAL_MS = 1000.0  # Spark's default interval [25].


class BatchInfo:
    """Bookkeeping for one completed micro-batch."""

    def __init__(self, index: int, start_ms: float, end_ms: float,
                 processing_ms: float, num_records: int):
        self.index = index
        self.start_ms = start_ms
        self.end_ms = end_ms
        self.processing_ms = processing_ms
        self.num_records = num_records

    @property
    def result_available_ms(self) -> float:
        return self.end_ms + self.processing_ms

    def __repr__(self) -> str:
        return "BatchInfo(#%d, [%.0f, %.0f) ms, %d records, +%.1f ms)" % (
            self.index, self.start_ms, self.end_ms, self.num_records,
            self.processing_ms,
        )


class StreamingContext:
    """Drives DStream computation batch by batch."""

    def __init__(
        self,
        batch_interval_ms: float = DEFAULT_BATCH_INTERVAL_MS,
        processing_time_ms: Any = 0.0,
    ):
        if batch_interval_ms <= 0:
            raise ValueError("batch interval must be positive")
        self.batch_interval_ms = float(batch_interval_ms)
        self.processing_time_ms = processing_time_ms
        self.batches_run = 0
        self.batch_history: List[BatchInfo] = []
        self._streams: List[DStream] = []
        self._outputs: List[Tuple[DStream, Callable[[RDD, int], None]]] = []
        self._input_streams: List[InputDStream] = []
        self._pre_batch_hooks: List[Callable[[], None]] = []

    # -- graph registration ------------------------------------------------

    def _register_stream(self, stream: DStream) -> None:
        self._streams.append(stream)
        if isinstance(stream, InputDStream):
            self._input_streams.append(stream)

    def _register_output(
        self, stream: DStream, fn: Callable[[RDD, int], None]
    ) -> None:
        self._outputs.append((stream, fn))

    def input_stream(self, num_partitions: int = 1) -> InputDStream:
        """Create an ingestion stream (like ``queueStream``)."""
        return InputDStream(self, num_partitions)

    def broker_stream(
        self,
        broker,
        topic: str,
        group: str = "streaming",
        num_partitions: int = 1,
    ) -> InputDStream:
        """An input stream fed from a message-broker topic.

        The returned stream drains new messages from the topic before
        each batch (the production pattern of queue-fronted analytics,
        paper section 2.1); message timestamps assign batch membership.
        """
        stream = InputDStream(self, num_partitions)

        def drain() -> None:
            for message in broker.poll(group, topic):
                stream.push(message.value, message.timestamp_ms)

        self._pre_batch_hooks.append(drain)
        return stream

    # -- time arithmetic ------------------------------------------------------

    def batch_time_ms(self, batch_index: int) -> float:
        """End time of batch ``batch_index`` (results computed then)."""
        return (batch_index + 1) * self.batch_interval_ms

    def batch_index_for(self, time_ms: float) -> int:
        return int(time_ms // self.batch_interval_ms)

    def result_time_ms(self, arrival_ms: float) -> float:
        """When the batch result containing a record arriving at
        ``arrival_ms`` becomes available: the batch boundary plus the
        batch processing cost."""
        end = self.batch_time_ms(self.batch_index_for(arrival_ms))
        return end + self._processing_cost(0)

    def expected_wait_ms(self) -> float:
        """Average in-batch wait for uniform arrivals: interval / 2
        (paper footnote 3)."""
        return self.batch_interval_ms / 2.0

    # -- execution ----------------------------------------------------------------

    def _processing_cost(self, num_records: int) -> float:
        if callable(self.processing_time_ms):
            return float(self.processing_time_ms(num_records))
        return float(self.processing_time_ms)

    def run_batch(self) -> BatchInfo:
        """Materialize every stream for the next batch and fire outputs."""
        for hook in self._pre_batch_hooks:
            hook()
        index = self.batches_run
        num_records = 0
        for stream in self._input_streams:
            num_records += stream.rdd_for_batch(index).count()
        for stream in self._streams:
            stream.rdd_for_batch(index)
        for stream, fn in self._outputs:
            fn(stream.rdd_for_batch(index), index)
        self.batches_run += 1
        info = BatchInfo(
            index=index,
            start_ms=index * self.batch_interval_ms,
            end_ms=self.batch_time_ms(index),
            processing_ms=self._processing_cost(num_records),
            num_records=num_records,
        )
        self.batch_history.append(info)
        return info

    def run_batches(self, count: int) -> List[BatchInfo]:
        return [self.run_batch() for _ in range(count)]

    def run_until(self, time_ms: float) -> List[BatchInfo]:
        """Run every batch whose interval ends at or before ``time_ms``."""
        out = []
        while self.batch_time_ms(self.batches_run) <= time_ms:
            out.append(self.run_batch())
        return out

    def gc(self, keep_batches: int = 4) -> None:
        """Evict cached RDDs older than the trailing window."""
        floor = max(0, self.batches_run - keep_batches)
        for stream in self._streams:
            stream._evict_before(floor)
