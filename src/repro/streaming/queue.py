"""Message queue linking data ingestion to the analytics engine.

Production deployments put a message queue (Kafka, Flume, RabbitMQ…)
between web servers and the streaming analytics system (paper
section 2.1); the paper also notes these queues hold *persistent
connections*, so no handshake cost applies between the web server and
the analytics server (footnote 2).

This is a Kafka-flavoured broker: named topics with hash-partitioned
logs, offset-tracking consumer groups, and at-least-once delivery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Message", "Topic", "MessageBroker", "Consumer"]


@dataclass(frozen=True)
class Message:
    """One record in a topic partition."""

    key: Optional[str]
    value: Any
    timestamp_ms: float
    offset: int
    partition: int


class Topic:
    """An append-only log split into hash-keyed partitions."""

    def __init__(self, name: str, num_partitions: int = 1):
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.name = name
        self.num_partitions = num_partitions
        self._logs: List[List[Message]] = [[] for _ in range(num_partitions)]

    def _partition_for(self, key: Optional[str]) -> int:
        if key is None:
            # Round-robin by total record count.
            return sum(len(log) for log in self._logs) % self.num_partitions
        return hash(key) % self.num_partitions

    def append(
        self, key: Optional[str], value: Any, timestamp_ms: float
    ) -> Message:
        partition = self._partition_for(key)
        log = self._logs[partition]
        message = Message(
            key=key,
            value=value,
            timestamp_ms=timestamp_ms,
            offset=len(log),
            partition=partition,
        )
        log.append(message)
        return message

    def read(self, partition: int, offset: int, max_count: int) -> List[Message]:
        if not 0 <= partition < self.num_partitions:
            raise IndexError("topic %s has no partition %d" % (self.name, partition))
        return self._logs[partition][offset:offset + max_count]

    def end_offset(self, partition: int) -> int:
        return len(self._logs[partition])

    def total_messages(self) -> int:
        return sum(len(log) for log in self._logs)


class MessageBroker:
    """Holds topics; producers publish, consumer groups poll."""

    def __init__(self):
        self._topics: Dict[str, Topic] = {}
        self._group_offsets: Dict[Tuple[str, str, int], int] = {}

    def create_topic(self, name: str, num_partitions: int = 1) -> Topic:
        if name in self._topics:
            raise ValueError("topic %r already exists" % name)
        topic = Topic(name, num_partitions)
        self._topics[name] = topic
        return topic

    def topic(self, name: str) -> Topic:
        if name not in self._topics:
            raise KeyError("no topic named %r" % name)
        return self._topics[name]

    def publish(
        self,
        topic_name: str,
        value: Any,
        key: Optional[str] = None,
        timestamp_ms: float = 0.0,
    ) -> Message:
        return self.topic(topic_name).append(key, value, timestamp_ms)

    def poll(
        self,
        group: str,
        topic_name: str,
        max_per_partition: int = 1000,
    ) -> List[Message]:
        """Fetch new messages for a consumer group, advancing offsets."""
        topic = self.topic(topic_name)
        out: List[Message] = []
        for partition in range(topic.num_partitions):
            key = (group, topic_name, partition)
            offset = self._group_offsets.get(key, 0)
            batch = topic.read(partition, offset, max_per_partition)
            out.extend(batch)
            self._group_offsets[key] = offset + len(batch)
        out.sort(key=lambda m: (m.timestamp_ms, m.partition, m.offset))
        return out

    def lag(self, group: str, topic_name: str) -> int:
        """Unconsumed messages across partitions for a group."""
        topic = self.topic(topic_name)
        total = 0
        for partition in range(topic.num_partitions):
            offset = self._group_offsets.get((group, topic_name, partition), 0)
            total += topic.end_offset(partition) - offset
        return total


class Consumer:
    """A convenience wrapper binding a broker, group and topic."""

    def __init__(self, broker: MessageBroker, group: str, topic: str):
        self.broker = broker
        self.group = group
        self.topic = topic

    def poll(self, max_per_partition: int = 1000) -> List[Message]:
        return self.broker.poll(self.group, self.topic, max_per_partition)

    def lag(self) -> int:
        return self.broker.lag(self.group, self.topic)
