"""Resilient Distributed Datasets (RDDs) — the batch layer under DStreams.

Spark Streaming's micro-batch model turns every batch interval of
streaming data into one RDD and runs batch operators on it (paper
section 2.1, Appendix C).  This is a faithful single-process
re-implementation of the RDD operator surface that the DStream methods
in Table 1 delegate to: partitioned, lazy-free (eager but cheap),
deterministic.

Partitioning matters to the paper's Appendix C discussion: in Snatch,
each edge node is a partition whose data cannot be moved, which is why
``partitionBy``/``repartition`` are the two methods INSA cannot
support.  We model partitions explicitly as a list of lists.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
)

__all__ = ["RDD"]


def _default_partitioner(key: Any, num_partitions: int) -> int:
    return hash(key) % num_partitions


class RDD:
    """An immutable, partitioned collection of records."""

    def __init__(self, partitions: Iterable[Iterable[Any]]):
        self._partitions: List[List[Any]] = [list(p) for p in partitions]
        if not self._partitions:
            self._partitions = [[]]

    # -- constructors -----------------------------------------------------

    @classmethod
    def of(cls, records: Iterable[Any], num_partitions: int = 1) -> "RDD":
        """Distribute ``records`` round-robin over ``num_partitions``."""
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        parts: List[List[Any]] = [[] for _ in range(num_partitions)]
        for i, record in enumerate(records):
            parts[i % num_partitions].append(record)
        return cls(parts)

    @classmethod
    def empty(cls, num_partitions: int = 1) -> "RDD":
        return cls([[] for _ in range(max(1, num_partitions))])

    # -- introspection -----------------------------------------------------

    @property
    def num_partitions(self) -> int:
        return len(self._partitions)

    def glom(self) -> "RDD":
        """One record per partition: the partition's contents as a list."""
        return RDD([[list(p)] for p in self._partitions])

    def collect(self) -> List[Any]:
        return list(itertools.chain.from_iterable(self._partitions))

    def is_empty(self) -> bool:
        return all(not p for p in self._partitions)

    # -- element-wise transformations ---------------------------------------

    def map(self, fn: Callable[[Any], Any]) -> "RDD":
        return RDD([[fn(x) for x in p] for p in self._partitions])

    def filter(self, predicate: Callable[[Any], bool]) -> "RDD":
        return RDD([[x for x in p if predicate(x)] for p in self._partitions])

    def flat_map(self, fn: Callable[[Any], Iterable[Any]]) -> "RDD":
        return RDD(
            [
                [y for x in p for y in fn(x)]
                for p in self._partitions
            ]
        )

    def map_partitions(
        self, fn: Callable[[List[Any]], Iterable[Any]]
    ) -> "RDD":
        return RDD([list(fn(list(p))) for p in self._partitions])

    def map_partitions_with_index(
        self, fn: Callable[[int, List[Any]], Iterable[Any]]
    ) -> "RDD":
        return RDD(
            [list(fn(i, list(p))) for i, p in enumerate(self._partitions)]
        )

    # -- key-value transformations ---------------------------------------------

    def map_values(self, fn: Callable[[Any], Any]) -> "RDD":
        return self.map(lambda kv: (kv[0], fn(kv[1])))

    def flat_map_values(self, fn: Callable[[Any], Iterable[Any]]) -> "RDD":
        return self.flat_map(lambda kv: [(kv[0], v) for v in fn(kv[1])])

    def keys(self) -> "RDD":
        return self.map(lambda kv: kv[0])

    def values(self) -> "RDD":
        return self.map(lambda kv: kv[1])

    def group_by_key(self, num_partitions: Optional[int] = None) -> "RDD":
        groups: Dict[Any, List[Any]] = defaultdict(list)
        for key, value in self.collect():
            groups[key].append(value)
        items = sorted(groups.items(), key=lambda kv: repr(kv[0]))
        return self._partition_pairs(items, num_partitions)

    def reduce_by_key(
        self,
        fn: Callable[[Any, Any], Any],
        num_partitions: Optional[int] = None,
    ) -> "RDD":
        acc: Dict[Any, Any] = {}
        for key, value in self.collect():
            acc[key] = fn(acc[key], value) if key in acc else value
        items = sorted(acc.items(), key=lambda kv: repr(kv[0]))
        return self._partition_pairs(items, num_partitions)

    def combine_by_key(
        self,
        create_combiner: Callable[[Any], Any],
        merge_value: Callable[[Any, Any], Any],
        merge_combiners: Callable[[Any, Any], Any],
        num_partitions: Optional[int] = None,
    ) -> "RDD":
        # Combine within partitions, then across, matching Spark's
        # two-phase aggregation.
        partials: List[Dict[Any, Any]] = []
        for partition in self._partitions:
            combiners: Dict[Any, Any] = {}
            for key, value in partition:
                if key in combiners:
                    combiners[key] = merge_value(combiners[key], value)
                else:
                    combiners[key] = create_combiner(value)
            partials.append(combiners)
        merged: Dict[Any, Any] = {}
        for combiners in partials:
            for key, combiner in combiners.items():
                if key in merged:
                    merged[key] = merge_combiners(merged[key], combiner)
                else:
                    merged[key] = combiner
        items = sorted(merged.items(), key=lambda kv: repr(kv[0]))
        return self._partition_pairs(items, num_partitions)

    def update_state_by_key(
        self,
        update_fn: Callable[[List[Any], Any], Any],
        state: Dict[Any, Any],
    ) -> Tuple["RDD", Dict[Any, Any]]:
        """Apply ``update_fn(new_values, old_state) -> new_state`` per
        key; keys whose new state is None are dropped.  Returns the
        state RDD and the new state dict."""
        grouped: Dict[Any, List[Any]] = defaultdict(list)
        for key, value in self.collect():
            grouped[key].append(value)
        new_state: Dict[Any, Any] = {}
        for key in set(grouped) | set(state):
            updated = update_fn(grouped.get(key, []), state.get(key))
            if updated is not None:
                new_state[key] = updated
        items = sorted(new_state.items(), key=lambda kv: repr(kv[0]))
        return self._partition_pairs(items, None), new_state

    # -- joins -----------------------------------------------------------------

    def _join_impl(
        self,
        other: "RDD",
        keep_left_only: bool,
        keep_right_only: bool,
        num_partitions: Optional[int] = None,
    ) -> "RDD":
        left: Dict[Any, List[Any]] = defaultdict(list)
        right: Dict[Any, List[Any]] = defaultdict(list)
        for key, value in self.collect():
            left[key].append(value)
        for key, value in other.collect():
            right[key].append(value)
        keys = set(left) | set(right)
        out: List[Tuple[Any, Tuple[Any, Any]]] = []
        for key in sorted(keys, key=repr):
            in_left, in_right = key in left, key in right
            if in_left and in_right:
                for lv in left[key]:
                    for rv in right[key]:
                        out.append((key, (lv, rv)))
            elif in_left and keep_left_only:
                for lv in left[key]:
                    out.append((key, (lv, None)))
            elif in_right and keep_right_only:
                for rv in right[key]:
                    out.append((key, (None, rv)))
        return self._partition_pairs(out, num_partitions)

    def join(self, other: "RDD", num_partitions: Optional[int] = None) -> "RDD":
        return self._join_impl(other, False, False, num_partitions)

    def left_outer_join(
        self, other: "RDD", num_partitions: Optional[int] = None
    ) -> "RDD":
        return self._join_impl(other, True, False, num_partitions)

    def right_outer_join(
        self, other: "RDD", num_partitions: Optional[int] = None
    ) -> "RDD":
        return self._join_impl(other, False, True, num_partitions)

    def full_outer_join(
        self, other: "RDD", num_partitions: Optional[int] = None
    ) -> "RDD":
        return self._join_impl(other, True, True, num_partitions)

    def cogroup(
        self, other: "RDD", num_partitions: Optional[int] = None
    ) -> "RDD":
        left: Dict[Any, List[Any]] = defaultdict(list)
        right: Dict[Any, List[Any]] = defaultdict(list)
        for key, value in self.collect():
            left[key].append(value)
        for key, value in other.collect():
            right[key].append(value)
        out = [
            (key, (left.get(key, []), right.get(key, [])))
            for key in sorted(set(left) | set(right), key=repr)
        ]
        return self._partition_pairs(out, num_partitions)

    def union(self, other: "RDD") -> "RDD":
        return RDD(self._partitions + other._partitions)

    # -- partitioning ------------------------------------------------------------

    def partition_by(
        self,
        num_partitions: int,
        partition_fn: Callable[[Any], int] = None,
    ) -> "RDD":
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        fn = partition_fn or (lambda k: _default_partitioner(k, num_partitions))
        parts: List[List[Any]] = [[] for _ in range(num_partitions)]
        for key, value in self.collect():
            parts[fn(key) % num_partitions].append((key, value))
        return RDD(parts)

    def repartition(self, num_partitions: int) -> "RDD":
        return RDD.of(self.collect(), num_partitions)

    def _partition_pairs(
        self,
        items: List[Tuple[Any, Any]],
        num_partitions: Optional[int],
    ) -> "RDD":
        n = num_partitions or self.num_partitions
        parts: List[List[Any]] = [[] for _ in range(max(1, n))]
        for key, value in items:
            parts[_default_partitioner(key, len(parts))].append((key, value))
        return RDD(parts)

    # -- actions -------------------------------------------------------------------

    def count(self) -> int:
        return sum(len(p) for p in self._partitions)

    def count_by_value(self) -> Dict[Any, int]:
        counts: Dict[Any, int] = defaultdict(int)
        for record in self.collect():
            counts[record] += 1
        return dict(counts)

    def reduce(self, fn: Callable[[Any, Any], Any]) -> Any:
        records = self.collect()
        if not records:
            raise ValueError("reduce of empty RDD")
        acc = records[0]
        for record in records[1:]:
            acc = fn(acc, record)
        return acc

    def fold(self, zero: Any, fn: Callable[[Any, Any], Any]) -> Any:
        acc = zero
        for record in self.collect():
            acc = fn(acc, record)
        return acc

    def take(self, n: int) -> List[Any]:
        return self.collect()[:n]

    def foreach(self, fn: Callable[[Any], None]) -> None:
        for record in self.collect():
            fn(record)

    def __repr__(self) -> str:
        return "RDD(%d partitions, %d records)" % (
            self.num_partitions,
            self.count(),
        )
