"""Discretized streams (DStreams) — the full Table-1 method surface.

A DStream is a sequence of RDDs, one per batch interval.  The paper's
Appendix C classifies every PySpark ``DStream`` method by whether
Snatch's in-network streaming analytics can execute it; to make that
comparison executable, this module implements the *entire* method
surface on a single-process micro-batch engine, with Spark's
(Pythonic camelCase) method names preserved so Table 1 can be
reproduced mechanically.

Each DStream node computes its batch-``i`` RDD from its parents'
batch-``i`` (or windowed past) RDDs; results are cached per batch so
windowed re-reads are cheap and ``cache()``/``persist()`` are natural.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.streaming.rdd import RDD

__all__ = ["DStream"]


def _num_batches(duration_ms: float, interval_ms: float) -> int:
    batches = int(round(duration_ms / interval_ms))
    if abs(batches * interval_ms - duration_ms) > 1e-9:
        raise ValueError(
            "duration %.3f ms is not a multiple of the batch interval %.3f ms"
            % (duration_ms, interval_ms)
        )
    return max(1, batches)


class DStream:
    """Base DStream: caches per-batch RDDs computed from parents."""

    def __init__(self, ssc, parents: Optional[List["DStream"]] = None):
        self._ssc = ssc
        self._parents = parents or []
        self._cache: Dict[int, RDD] = {}
        self._explicitly_cached = False
        self._checkpoint_interval_ms: Optional[float] = None
        ssc._register_stream(self)

    # -- engine plumbing ---------------------------------------------------

    def _compute(self, batch_index: int) -> RDD:
        raise NotImplementedError

    def rdd_for_batch(self, batch_index: int) -> RDD:
        if batch_index < 0:
            return RDD.empty()
        if batch_index not in self._cache:
            self._cache[batch_index] = self._compute(batch_index)
        return self._cache[batch_index]

    def _evict_before(self, batch_index: int) -> None:
        for idx in [i for i in self._cache if i < batch_index]:
            del self._cache[idx]

    # -- DStream-specific methods (N/A rows of Table 1) ---------------------

    def cache(self) -> "DStream":
        """Mark the stream's RDDs for retention (idempotent here)."""
        self._explicitly_cached = True
        return self

    def persist(self, storage_level: str = "MEMORY_ONLY") -> "DStream":
        self._explicitly_cached = True
        return self

    def checkpoint(self, interval_ms: float) -> "DStream":
        if interval_ms <= 0:
            raise ValueError("checkpoint interval must be positive")
        self._checkpoint_interval_ms = interval_ms
        return self

    def context(self):
        return self._ssc

    def glom(self) -> "DStream":
        return TransformedDStream(self._ssc, self, lambda rdd, _i: rdd.glom())

    def pprint(self, num: int = 10) -> None:
        def show(rdd: RDD, batch_index: int) -> None:
            time_ms = self._ssc.batch_time_ms(batch_index)
            print("-------------------------------------------")
            print("Time: %.0f ms" % time_ms)
            print("-------------------------------------------")
            for record in rdd.take(num):
                print(record)

        self.foreachRDD(show)

    def saveAsTextFiles(self, prefix: str, suffix: str = "") -> None:
        def save(rdd: RDD, batch_index: int) -> None:
            time_ms = self._ssc.batch_time_ms(batch_index)
            name = "%s-%d%s" % (prefix, int(time_ms), suffix)
            os.makedirs(os.path.dirname(name) or ".", exist_ok=True)
            with open(name, "w", encoding="utf-8") as fh:
                for record in rdd.collect():
                    fh.write("%s\n" % (record,))

        self.foreachRDD(save)

    # -- foreach-category methods --------------------------------------------

    def map(self, fn: Callable[[Any], Any]) -> "DStream":
        return TransformedDStream(
            self._ssc, self, lambda rdd, _i: rdd.map(fn)
        )

    def filter(self, fn: Callable[[Any], bool]) -> "DStream":
        return TransformedDStream(
            self._ssc, self, lambda rdd, _i: rdd.filter(fn)
        )

    def flatMap(self, fn: Callable[[Any], Any]) -> "DStream":
        return TransformedDStream(
            self._ssc, self, lambda rdd, _i: rdd.flat_map(fn)
        )

    def mapValues(self, fn: Callable[[Any], Any]) -> "DStream":
        return TransformedDStream(
            self._ssc, self, lambda rdd, _i: rdd.map_values(fn)
        )

    def flatMapValues(self, fn: Callable[[Any], Any]) -> "DStream":
        return TransformedDStream(
            self._ssc, self, lambda rdd, _i: rdd.flat_map_values(fn)
        )

    def mapPartitions(self, fn: Callable[[List[Any]], Any]) -> "DStream":
        return TransformedDStream(
            self._ssc, self, lambda rdd, _i: rdd.map_partitions(fn)
        )

    def mapPartitionsWithIndex(
        self, fn: Callable[[int, List[Any]], Any]
    ) -> "DStream":
        return TransformedDStream(
            self._ssc, self, lambda rdd, _i: rdd.map_partitions_with_index(fn)
        )

    def transform(self, fn: Callable[..., RDD]) -> "DStream":
        """fn(rdd) or fn(time_ms, rdd) -> RDD."""

        def apply(rdd: RDD, batch_index: int) -> RDD:
            try:
                return fn(rdd)
            except TypeError:
                return fn(self._ssc.batch_time_ms(batch_index), rdd)

        return TransformedDStream(self._ssc, self, apply)

    def transformWith(
        self, fn: Callable[[RDD, RDD], RDD], other: "DStream"
    ) -> "DStream":
        return BinaryTransformedDStream(self._ssc, self, other, fn)

    def foreachRDD(self, fn: Callable[[RDD, int], None]) -> None:
        """Register an output operation; ``fn(rdd, batch_index)``."""
        self._ssc._register_output(self, fn)

    def updateStateByKey(
        self, update_fn: Callable[[List[Any], Any], Any]
    ) -> "DStream":
        return StatefulDStream(self._ssc, self, update_fn)

    def combineByKey(
        self,
        create_combiner: Callable[[Any], Any],
        merge_value: Callable[[Any, Any], Any],
        merge_combiners: Callable[[Any, Any], Any],
        numPartitions: Optional[int] = None,
    ) -> "DStream":
        return TransformedDStream(
            self._ssc,
            self,
            lambda rdd, _i: rdd.combine_by_key(
                create_combiner, merge_value, merge_combiners, numPartitions
            ),
        )

    # -- reduce-category methods ------------------------------------------------

    def count(self) -> "DStream":
        return TransformedDStream(
            self._ssc, self, lambda rdd, _i: RDD.of([rdd.count()])
        )

    def countByValue(self) -> "DStream":
        return TransformedDStream(
            self._ssc,
            self,
            lambda rdd, _i: RDD.of(sorted(
                rdd.count_by_value().items(), key=lambda kv: repr(kv[0])
            )),
        )

    def reduce(self, fn: Callable[[Any, Any], Any]) -> "DStream":
        def apply(rdd: RDD, _i: int) -> RDD:
            if rdd.is_empty():
                return RDD.empty()
            return RDD.of([rdd.reduce(fn)])

        return TransformedDStream(self._ssc, self, apply)

    def reduceByKey(
        self,
        fn: Callable[[Any, Any], Any],
        numPartitions: Optional[int] = None,
    ) -> "DStream":
        return TransformedDStream(
            self._ssc,
            self,
            lambda rdd, _i: rdd.reduce_by_key(fn, numPartitions),
        )

    def groupByKey(self, numPartitions: Optional[int] = None) -> "DStream":
        return TransformedDStream(
            self._ssc,
            self,
            lambda rdd, _i: rdd.group_by_key(numPartitions),
        )

    # -- window-category methods -------------------------------------------------

    def window(
        self, windowDuration_ms: float, slideDuration_ms: Optional[float] = None
    ) -> "DStream":
        return WindowedDStream(
            self._ssc, self, windowDuration_ms, slideDuration_ms
        )

    def countByWindow(
        self, windowDuration_ms: float, slideDuration_ms: Optional[float] = None
    ) -> "DStream":
        return self.window(windowDuration_ms, slideDuration_ms).count()

    def countByValueAndWindow(
        self, windowDuration_ms: float, slideDuration_ms: Optional[float] = None
    ) -> "DStream":
        return self.window(windowDuration_ms, slideDuration_ms).countByValue()

    def reduceByWindow(
        self,
        reduce_fn: Callable[[Any, Any], Any],
        inv_reduce_fn: Optional[Callable[[Any, Any], Any]],
        windowDuration_ms: float,
        slideDuration_ms: Optional[float] = None,
    ) -> "DStream":
        # inv_reduce_fn enables Spark's incremental optimization; the
        # result is identical, so we recompute over the window.
        return self.window(windowDuration_ms, slideDuration_ms).reduce(
            reduce_fn
        )

    def reduceByKeyAndWindow(
        self,
        reduce_fn: Callable[[Any, Any], Any],
        inv_reduce_fn: Optional[Callable[[Any, Any], Any]] = None,
        windowDuration_ms: float = 0.0,
        slideDuration_ms: Optional[float] = None,
        numPartitions: Optional[int] = None,
    ) -> "DStream":
        if windowDuration_ms <= 0:
            raise ValueError("windowDuration_ms must be positive")
        return self.window(windowDuration_ms, slideDuration_ms).reduceByKey(
            reduce_fn, numPartitions
        )

    def groupByKeyAndWindow(
        self,
        windowDuration_ms: float,
        slideDuration_ms: Optional[float] = None,
        numPartitions: Optional[int] = None,
    ) -> "DStream":
        return self.window(windowDuration_ms, slideDuration_ms).groupByKey(
            numPartitions
        )

    def slice(self, begin_ms: float, end_ms: float) -> List[RDD]:
        """RDDs of batches whose end time falls in [begin_ms, end_ms]."""
        interval = self._ssc.batch_interval_ms
        out = []
        for batch_index in range(self._ssc.batches_run):
            time_ms = (batch_index + 1) * interval
            if begin_ms <= time_ms <= end_ms:
                out.append(self.rdd_for_batch(batch_index))
        return out

    # -- join / union-category methods -----------------------------------------------

    def join(self, other: "DStream", numPartitions: Optional[int] = None):
        return BinaryTransformedDStream(
            self._ssc, self, other,
            lambda a, b: a.join(b, numPartitions),
        )

    def leftOuterJoin(self, other: "DStream", numPartitions=None):
        return BinaryTransformedDStream(
            self._ssc, self, other,
            lambda a, b: a.left_outer_join(b, numPartitions),
        )

    def rightOuterJoin(self, other: "DStream", numPartitions=None):
        return BinaryTransformedDStream(
            self._ssc, self, other,
            lambda a, b: a.right_outer_join(b, numPartitions),
        )

    def fullOuterJoin(self, other: "DStream", numPartitions=None):
        return BinaryTransformedDStream(
            self._ssc, self, other,
            lambda a, b: a.full_outer_join(b, numPartitions),
        )

    def cogroup(self, other: "DStream", numPartitions=None):
        return BinaryTransformedDStream(
            self._ssc, self, other,
            lambda a, b: a.cogroup(b, numPartitions),
        )

    def union(self, other: "DStream") -> "DStream":
        return BinaryTransformedDStream(
            self._ssc, self, other, lambda a, b: a.union(b)
        )

    # -- partition-category methods ------------------------------------------------

    def partitionBy(
        self, numPartitions: int, partitionFunc=None
    ) -> "DStream":
        return TransformedDStream(
            self._ssc,
            self,
            lambda rdd, _i: rdd.partition_by(numPartitions, partitionFunc),
        )

    def repartition(self, numPartitions: int) -> "DStream":
        return TransformedDStream(
            self._ssc,
            self,
            lambda rdd, _i: rdd.repartition(numPartitions),
        )


class InputDStream(DStream):
    """The ingestion point: records pushed with timestamps are binned
    into batches by arrival time."""

    def __init__(self, ssc, num_partitions: int = 1):
        super().__init__(ssc, parents=[])
        self._num_partitions = num_partitions
        self._pending: Dict[int, List[Any]] = {}

    def push(self, record: Any, time_ms: float) -> int:
        """Add a record arriving at ``time_ms``; returns the batch index
        that will contain it."""
        if time_ms < 0:
            raise ValueError("time must be non-negative")
        batch_index = int(time_ms // self._ssc.batch_interval_ms)
        self._pending.setdefault(batch_index, []).append(record)
        return batch_index

    def push_all(self, records, time_ms: float) -> None:
        for record in records:
            self.push(record, time_ms)

    def _compute(self, batch_index: int) -> RDD:
        records = self._pending.pop(batch_index, [])
        return RDD.of(records, self._num_partitions)


class TransformedDStream(DStream):
    """Unary transformation of a parent's per-batch RDD."""

    def __init__(self, ssc, parent: DStream, fn: Callable[[RDD, int], RDD]):
        super().__init__(ssc, parents=[parent])
        self._fn = fn

    def _compute(self, batch_index: int) -> RDD:
        return self._fn(self._parents[0].rdd_for_batch(batch_index), batch_index)


class BinaryTransformedDStream(DStream):
    """Transformation combining two parents' same-batch RDDs."""

    def __init__(self, ssc, left: DStream, right: DStream,
                 fn: Callable[[RDD, RDD], RDD]):
        super().__init__(ssc, parents=[left, right])
        self._fn = fn

    def _compute(self, batch_index: int) -> RDD:
        return self._fn(
            self._parents[0].rdd_for_batch(batch_index),
            self._parents[1].rdd_for_batch(batch_index),
        )


class WindowedDStream(DStream):
    """Union of the parent's RDDs over the trailing window.

    Emits only on slide boundaries; other batches yield empty RDDs,
    matching Spark's slide semantics.
    """

    def __init__(
        self,
        ssc,
        parent: DStream,
        window_ms: float,
        slide_ms: Optional[float] = None,
    ):
        super().__init__(ssc, parents=[parent])
        interval = ssc.batch_interval_ms
        self.window_batches = _num_batches(window_ms, interval)
        self.slide_batches = (
            _num_batches(slide_ms, interval) if slide_ms is not None else 1
        )

    def _compute(self, batch_index: int) -> RDD:
        if (batch_index + 1) % self.slide_batches != 0:
            return RDD.empty()
        parent = self._parents[0]
        rdd = RDD.empty()
        start = batch_index - self.window_batches + 1
        for idx in range(start, batch_index + 1):
            if idx >= 0:
                rdd = rdd.union(parent.rdd_for_batch(idx))
        return rdd


class StatefulDStream(DStream):
    """``updateStateByKey``: per-key running state across batches.

    Batches must be computed in order; the StreamingContext guarantees
    that by materializing every registered stream each batch.
    """

    def __init__(self, ssc, parent: DStream, update_fn):
        super().__init__(ssc, parents=[parent])
        self._update_fn = update_fn
        self._state: Dict[Any, Any] = {}
        self._last_computed = -1

    def _compute(self, batch_index: int) -> RDD:
        if batch_index != self._last_computed + 1:
            raise RuntimeError(
                "stateful stream computed out of order: batch %d after %d"
                % (batch_index, self._last_computed)
            )
        rdd, self._state = self._parents[0].rdd_for_batch(
            batch_index
        ).update_state_by_key(self._update_fn, self._state)
        self._last_computed = batch_index
        return rdd
