"""Streaming-analytics substrate: a Spark-Streaming-like micro-batch
engine (RDDs + the full Table-1 DStream surface) plus a Kafka-like
message queue for ingestion.
"""

from repro.streaming.context import (
    BatchInfo,
    DEFAULT_BATCH_INTERVAL_MS,
    StreamingContext,
)
from repro.streaming.dstream import DStream
from repro.streaming.queue import Consumer, Message, MessageBroker, Topic
from repro.streaming.rdd import RDD

__all__ = [
    "BatchInfo",
    "Consumer",
    "DEFAULT_BATCH_INTERVAL_MS",
    "DStream",
    "Message",
    "MessageBroker",
    "RDD",
    "StreamingContext",
    "Topic",
]
