"""Ad-campaign analytics: the paper's headline experiment.

Compares the five pathways of the testbed (section 5.2) at the median
measured delays: the no-Snatch baseline, application-layer semantic
cookies, and transport-layer semantic cookies, each with and without
in-network streaming analytics (INSA).  Also verifies that the
in-network aggregate equals the ground-truth demographic counts.

Run:  python examples/ad_campaign.py
"""

from repro.testbed import Scheme, TestbedConfig, TestbedExperiment


def run(scheme: Scheme, insa: bool) -> "TestbedResult":
    config = TestbedConfig(
        scheme=scheme,
        insa=insa,
        requests_per_second=20,
        duration_ms=5000,
        delay_percentile=50,
    )
    return TestbedExperiment(config).run()


def main() -> None:
    baseline = run(Scheme.BASELINE, False)
    rows = [("no-Snatch (baseline)", baseline)]
    for scheme, label in (
        (Scheme.APP_HTTPS, "App-HTTPS"),
        (Scheme.TRANS_1RTT, "Trans-1RTT"),
    ):
        rows.append((label, run(scheme, False)))
        rows.append((label + " + INSA", run(scheme, True)))

    print("pathway                 median latency    speedup")
    print("-" * 52)
    for label, result in rows:
        speedup = baseline.median_latency_ms / result.median_latency_ms
        print(
            "%-22s  %9.1f ms      %5.2fx"
            % (label, result.median_latency_ms, speedup)
        )

    snatch = rows[-1][1]  # Trans-1RTT + INSA
    assert snatch.counts_match_reference(), "aggregate != ground truth"
    print("\nin-network aggregate matches ground truth over %d events"
          % len(snatch.records))
    demo = snatch.aggregated_report["gender_by_campaign"]
    campaign = snatch.workload_campaign if hasattr(snatch, "workload_campaign") else "camp-0"
    print("example: demographic composition of %s:" % campaign)
    for (camp, gender), count in sorted(demo.items()):
        if camp == campaign and count:
            print("  %-8s %d" % (gender, count))


if __name__ == "__main__":
    main()
