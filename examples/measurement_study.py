"""Regenerate the measurement study's headline numbers as text.

Walks the synthetic dVPN census through the Appendix-D methodology —
traceroute to the ISP hop, pings to edges and clouds, GET/POST timing
— and prints the Figure 4 / 5(a) / 9(a) / 9(b) summaries next to the
paper's reported values.

Run:  python examples/measurement_study.py
"""

from repro.measurement import (
    MeasurementStudy,
    US_REGIONS,
    generate_sites,
    matrix_stats,
    provider_curves,
)


def main() -> None:
    census = generate_sites()
    print("Figure 4 — site census: %d sites, %d countries (paper: 2,253 / 87)"
          % (len(census.sites), census.countries()))
    print("  top countries:",
          ", ".join("%s=%d" % kv for kv in census.top_countries(5)))

    study = MeasurementStudy(census)
    result = study.run(max_sites=800)
    print("\nFigure 5(a) — per-component delays over %d measured sites "
          "(%d discarded as non-residential):"
          % (len(result.measurements), result.discarded_sites))
    paper = {"d_ci": 1.4, "d_ce": 6.7, "d_cc": 13.1, "d_cw": 60.1,
             "d_ew": 43.6, "t_edge": 136.6, "t_web": 241.6}
    print("  metric     median    paper")
    for metric, expected in paper.items():
        print("  %-8s %8.1f %8.1f" % (metric, result.median(metric), expected))

    world = matrix_stats()
    us = matrix_stats(US_REGIONS)
    print("\nFigure 9(a) — inter-DC delays: %.1f-%.1f ms, median %.1f "
          "(paper 4.7-206, median 75.5); US median %.1f (paper 26.3)"
          % (world["min"], world["max"], world["median"], us["median"]))

    print("\nFigure 9(b) — edge providers (median client->edge):")
    for name, curve in provider_curves().items():
        print("  %-12s %6.1f ms" % (name, curve.median))
    print("  off-net coverage ~57.9%; best-of-providers drives d_CE")


if __name__ == "__main__":
    main()
