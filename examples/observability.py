"""Observability, end to end: one chaos workload, fully metered.

The ``repro.obs`` layer gives every subsystem the same measurement
substrate: a :class:`MetricsRegistry` of counters/gauges/fixed-bucket
histograms and a :class:`Tracer` producing spans stamped with
``Simulator.now``.  This example runs the standard-outage chaos
scenario (LarkSwitch crash, 5 % report loss, one dropped controller
RPC) and shows where every simulated millisecond and packet went:

* **pipeline.***  — per-switch packets, per-stage table hits/misses,
  drops, and a latency histogram (integer microsecond buckets, the way
  a switch-resident histogram would be built);
* **rpc.***       — control-plane sends, retries, timeouts, backoff
  wait, handler errors, dead devices;
* **faults.***    — per-link drops/duplicates/reorders *actually
  injected* (not just configured probabilities);
* **chaos.* / lifecycle.* / repair.*** — workload events and the
  inject -> detect -> repair cycle, with matching sim-time spans
  (``chaos.inject``, ``chaos.outage``, ``chaos.drift``,
  ``chaos.repair``) nested under the root ``chaos.run`` span.

Because every instrument is deterministic, two runs with the same seed
produce byte-identical JSON-lines dumps — the CI job relies on that.

Run:  python examples/observability.py [dump.jsonl]
"""

import sys

from repro.chaos import ChaosHarness, standard_outage
from repro.obs import dump_jsonl

SEED = 9


def main() -> None:
    harness = ChaosHarness(seed=SEED)
    harness.apply(standard_outage())
    result = harness.run()

    print("== workload: standard outage, seed %d ==" % SEED)
    print("events=%d fallback=%d reports=%d lost=%d consistent=%s"
          % (result.events_total, result.fallback_events,
             result.reports_sent, result.reports_lost,
             "yes" if result.consistent else "no"))

    print("\n== metrics ==")
    print(harness.metrics_table())

    print("\n== sim-time spans (inject -> detect -> repair) ==")
    print(harness.spans_table())

    if len(sys.argv) > 1:
        written = dump_jsonl(sys.argv[1], harness.registry, harness.tracer)
        print("\nwrote %d JSON-lines records to %s" % (written, sys.argv[1]))


if __name__ == "__main__":
    main()
