"""Real-time crowd analytics with periodical forwarding and local
differential privacy.

The crowd workload (paper section 2.3, example 2) aggregates interests
per region.  Cookies are constant per user, so transport-layer
placement fits naturally; the ISP switch accumulates counts and flushes
them every period, trading a bounded delay for ~100x less aggregation
bandwidth.  Each member additionally perturbs their interest with
k-ary randomized response — the aggregate stays accurate via the
unbiased estimator while no single report can be trusted.

Run:  python examples/crowd_analytics.py
"""

import random

from repro.core import AggSwitch, ForwardingMode, LarkSwitch, RandomizedResponse
from repro.core.transport_cookie import TransportCookieCodec
from repro.workloads import CrowdWorkload

APP_ID = 0x33
PERIOD_MS = 100.0


def main() -> None:
    rng = random.Random(99)
    workload = CrowdWorkload(num_members=800, seed=5)
    schema = workload.schema()
    specs = workload.specs()
    key = bytes(rng.getrandbits(8) for _ in range(16))

    lark = LarkSwitch("isp", random.Random(1))
    lark.register_application(
        APP_ID, schema, key, specs,
        mode=ForwardingMode.PERIODICAL, period_ms=PERIOD_MS,
    )
    agg = AggSwitch("agg", random.Random(2))
    agg.register_application(APP_ID, schema, key, specs)
    codec = TransportCookieCodec(APP_ID, schema, key, random.Random(3))
    dp = RandomizedResponse(schema.feature("interest"), p_truth=0.75,
                            rng=random.Random(4))

    arrivals = workload.arrivals(rate_per_second=400, duration_ms=2000)
    periods = 0
    next_flush = PERIOD_MS
    for time_ms, member in arrivals:
        while time_ms >= next_flush:
            payload = lark.end_period(APP_ID)
            if payload is not None:
                agg.process_packet(payload)
                periods += 1
            next_flush += PERIOD_MS
        values = member.semantic_values()
        values["interest"] = dp.perturb(values["interest"])  # local DP
        lark.process_quic_packet(codec.encode(values))
    payload = lark.end_period(APP_ID)
    if payload is not None:
        agg.process_packet(payload)
        periods += 1

    print("processed %d check-ins over %d periods of %.0f ms"
          % (len(arrivals), periods, PERIOD_MS))

    # De-noise the DP counts per region and compare with ground truth.
    report = agg.report(APP_ID)["interest_by_region"]
    truth = workload.reference_interest_counts(arrivals)
    region = max(set(m.region for _, m in arrivals),
                 key=lambda r: sum(c for (rr, _), c in truth.items() if rr == r))
    observed = {
        interest: report.get((region, interest), 0)
        for interest in schema.feature("interest").classes
    }
    estimated = dp.estimate_counts(observed)
    print("\nbusiest region: %s" % region)
    print("interest     observed(DP)  estimated   true")
    for interest in schema.feature("interest").classes:
        print("%-10s   %8d     %8.1f   %6d" % (
            interest,
            observed[interest],
            estimated[interest],
            truth.get((region, interest), 0),
        ))
    print("\n(epsilon = %.2f per report)" % dp.epsilon)


if __name__ == "__main__":
    main()
