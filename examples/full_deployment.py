"""Grand tour: a multi-region Snatch deployment, end to end.

Builds the whole paper in one script:

1. regional deployment — US and EU LarkSwitches with distinct derived
   AES keys, one global AggSwitch (section 3.6);
2. a CDN edge + origin pair handling the application-layer path with
   page rules (section 3.3);
3. a compiled query (section 6 future work) installed on the switches;
4. traffic from the ad-campaign workload through real QUIC connection
   IDs, parsed from raw packet bytes by the P4-style parser;
5. the merged global report, checked against ground truth;
6. a key rotation for one region, invalidating its old cookies only.

Run:  python examples/full_deployment.py
"""

import random

from repro.core import (
    AggSwitch,
    LarkSwitch,
    Query,
    QueryCompiler,
    RegionalDeployment,
)
from repro.core.larkswitch import lark_process_raw
from repro.core.transport_cookie import TransportCookieCodec
from repro.switch.parser import build_snatch_packet
from repro.workloads import AdCampaignWorkload


def main() -> None:
    workload = AdCampaignWorkload(num_users=300, num_campaigns=4, seed=11)
    schema = workload.schema()

    # 3. Compile the analytics task.
    query = (
        Query(schema)
        .where("event", "eq", "view")
        .count_by("gender", group_by="campaign")
        .count_by("geo")
    )
    compiled = QueryCompiler().compile(query)
    print("compiled query: %d switch statistics, fully in-network: %s"
          % (len(compiled.specs), compiled.fully_in_network))

    # 1. Regional deployment.
    deployment = RegionalDeployment(seed=4)
    agg = AggSwitch("global-agg", random.Random(1))
    deployment.attach_agg_switch(agg)
    larks = {}
    for region in ("us", "eu"):
        lark = LarkSwitch("lark-%s" % region, random.Random(len(region)))
        deployment.attach_lark_switch(lark, region)
        larks[region] = lark
    handle = deployment.deploy("ads", list(schema.features), compiled.specs)
    print("regions deployed: %s (distinct app-IDs %s)"
          % (handle.region_names(),
             [handle.app_id_for(r) for r in handle.region_names()]))

    # 4. Traffic: users in each region carry semantic QUIC CIDs; the
    #    regional switch parses raw packet bytes and pre-aggregates.
    rng = random.Random(9)
    accept = compiled.edge_filter()
    events = workload.generate_events(100, 3000)
    counted = 0
    for event in events:
        region = "us" if event.user.geo == "NA" else "eu"
        values = event.user.semantic_values(event.campaign, event.event_type)
        if not accept({"event": event.event_type}):
            continue
        codec = TransportCookieCodec(
            handle.app_id_for(region), handle.transport_schema,
            handle.key_for(region), rng,
        )
        packet_bytes = build_snatch_packet(bytes(codec.encode(values)))
        result = lark_process_raw(larks[region], packet_bytes)
        assert result.forwarded_original
        agg.process_packet(result.aggregation_payload)
        counted += 1

    # 5. The merged global report.
    combined = deployment.combined_report("ads")
    views = [e for e in events if e.event_type == "view"]
    spec_name = compiled.specs[0].name  # gender x campaign
    total = sum(combined[spec_name].values())
    print("\n%d view events in, %d counted globally" % (len(views), total))
    truth = {}
    for event in views:
        key = (event.campaign, event.user.gender)
        truth[key] = truth.get(key, 0) + 1
    mismatches = sum(
        1 for key, count in truth.items()
        if combined[spec_name].get(key, 0) != count
    )
    print("cells matching ground truth: %d/%d"
          % (len(truth) - mismatches, len(truth)))

    # 6. Rotate the EU key: old EU cookies stop decoding, US unaffected.
    old_eu_codec = TransportCookieCodec(
        handle.app_id_for("eu"), handle.transport_schema,
        handle.key_for("eu"), rng,
    )
    deployment.rotate_region("ads", "eu")
    stale = larks["eu"].process_quic_packet(
        old_eu_codec.encode({"event": "view", "campaign": "camp-0",
                             "gender": "female", "age": "18-24",
                             "geo": "EU"})
    )
    print("\nafter EU key rotation: old EU cookie matched=%s "
          "(traffic still forwarded=%s)"
          % (stale.matched, stale.forwarded_original))


if __name__ == "__main__":
    main()
