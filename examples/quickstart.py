"""Quickstart: plant a semantic cookie, catch it at the ISP switch,
aggregate in-network, and read the analytics result.

Run:  python examples/quickstart.py
"""

import random

from repro.core import (
    AggSwitch,
    Feature,
    LarkSwitch,
    SnatchController,
    SnatchEdgeServer,
    StatKind,
    StatSpec,
)
from repro.core.transport_cookie import TransportCookieCodec


def main() -> None:
    # 1. A trusted controller coordinates all Snatch devices.
    controller = SnatchController(seed=7)
    lark = LarkSwitch("isp-switch")
    agg = AggSwitch("agg-switch")
    edge = SnatchEdgeServer("cdn-edge")
    controller.attach_lark_switch(lark)
    controller.attach_agg_switch(agg)
    controller.attach_edge_server(edge)

    # 2. The application developer registers an analytics task:
    #    "composition of users who viewed each ad, by gender".
    handle = controller.add_application(
        name="ad-analytics",
        features=[
            Feature.categorical("campaign", ["sale", "launch", "brand"]),
            Feature.categorical("gender", ["female", "male", "other"]),
        ],
        specs=[
            StatSpec(
                "gender_by_campaign",
                StatKind.COUNT_BY_CLASS,
                "gender",
                group_by="campaign",
            )
        ],
    )
    print("registered app-ID 0x%02x (version %d)" % (handle.app_id, handle.version))

    # 3. The web server plants semantic cookies in QUIC connection IDs
    #    (here we encode them directly with the developer's codec).
    codec = TransportCookieCodec(
        handle.app_id, handle.transport_schema, handle.key, random.Random(1)
    )
    clicks = [
        ("sale", "female"), ("sale", "female"), ("sale", "male"),
        ("launch", "other"), ("launch", "female"), ("brand", "male"),
    ]

    # 4. User requests pass the ISP switch, which decodes the encrypted
    #    cookie at line rate and emits aggregation packets...
    for campaign, gender in clicks:
        cid = codec.encode({"campaign": campaign, "gender": gender})
        result = lark.process_quic_packet(cid)
        assert result.forwarded_original, "original traffic is never disturbed"
        # 5. ...which the AggSwitch merges on the last hop.
        agg.process_packet(result.aggregation_payload)

    # 6. The analytics result is ready without any request ever
    #    reaching a data center — and without any user ID existing.
    report = agg.report(handle.app_id)
    print("\nusers per (campaign, gender):")
    for (campaign, gender), count in sorted(report["gender_by_campaign"].items()):
        if count:
            print("  %-8s %-8s %d" % (campaign, gender, count))


if __name__ == "__main__":
    main()
