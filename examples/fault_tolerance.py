"""Fault tolerance, end to end: inject -> degrade -> detect -> repair.

One scripted chaos scenario runs against a self-healing Snatch
deployment on the discrete-event simulator (paper section 6 plus the
section 3.3 incremental-deployment fallback):

* **inject** — ``standard_outage()``: 5 % loss on the periodical UDP
  report link, a LarkSwitch crash at t=450 ms (all register state
  lost), and one deliberately dropped controller RPC during recovery;
* **degrade** — while the switch is down, traffic falls back to
  application-layer cookie processing at the edge server, and the
  un-flushed partial period dies with the switch;
* **detect** — a self-scheduled verification loop periodically diffs
  the in-network aggregate against the complete web-server-side ground
  truth (zero manual ``check()`` calls);
* **repair** — the controller resyncs lost parameters over the
  retrying RPC bus (the dropped push is retried until acked), the
  restarted switch re-enrolls, and the drifted aggregate is reconciled
  from the web-server data.

The whole run derives from one seed: same seed, same fingerprint.

Run:  python examples/fault_tolerance.py
"""

from repro.chaos import ChaosHarness, standard_outage

# Seed chosen so the 5 % report loss actually claims a report in this
# short run (the crash and RPC drop fire at any seed).
SEED = 9


def run(seed: int):
    harness = ChaosHarness(seed=seed)
    harness.apply(standard_outage())
    return harness.run()


def main() -> None:
    print("== inject: standard outage (crash + report loss + lost RPC) ==")
    result = run(SEED)

    print("traffic: %d events, %d served by the app-layer fallback "
          "while the LarkSwitch was down"
          % (result.events_total, result.fallback_events))
    print("reports: %d sent over UDP, %d lost, %d duplicated"
          % (result.reports_sent, result.reports_lost,
             result.reports_duplicated))

    print("\n== degrade / recover: device lifecycle ==")
    for at_ms, device, kind, detail in result.lifecycle:
        extra = " (%d application(s) re-pushed)" % detail \
            if kind == "reenroll" else ""
        print("  t=%6.1f ms  %-5s %s%s" % (at_ms, device, kind, extra))
    print("control plane: %d retried attempt(s), %d terminal failure(s)"
          % (result.rpc_retries, result.rpc_failures))

    print("\n== detect + repair: self-scheduled verification ==")
    print("%d checks ran; %d found drift:" %
          (result.checks_run, len(result.repairs)))
    for at_ms, discrepancies, resynced, reconciled in result.repairs:
        print("  t=%6.1f ms  %d discrepant cell(s), %d device(s) "
              "resynced, reconciled=%s"
              % (at_ms, discrepancies, resynced, reconciled))

    print("\n== outcome ==")
    print("final in-network counts:", result.final_report["by_region"])
    print("web-server ground truth:", result.ground_truth["by_region"])
    print("consistent:", result.consistent)

    again = run(SEED)
    print("\ndeterministic: rerun fingerprint matches =",
          again.fingerprint() == result.fingerprint())


if __name__ == "__main__":
    main()
