"""Fault tolerance: detect a drifting aggregate and repair it.

A LarkSwitch misses a controller update (its rules vanish — the paper's
failed-AES-key-update scenario).  Traffic keeps flowing but the
in-network aggregate silently stops counting.  The application
developer later re-runs the analytics on the complete web-server-side
data, the verifier spots the drift, and the controller resyncs the
switch over RPC (paper section 6).

Run:  python examples/fault_tolerance.py
"""

import random

from repro.core import (
    AggSwitch,
    FaultRepairLoop,
    Feature,
    LarkSwitch,
    SnatchController,
    SnatchEdgeServer,
    StatKind,
    StatSpec,
)
from repro.core.transport_cookie import TransportCookieCodec


def main() -> None:
    controller = SnatchController(seed=5)
    lark = LarkSwitch("isp-switch")
    agg = AggSwitch("agg-switch")
    controller.attach_lark_switch(lark)
    controller.attach_agg_switch(agg)
    controller.attach_edge_server(SnatchEdgeServer("edge"))

    handle = controller.add_application(
        "crowd",
        [Feature.categorical("region", ["north", "south", "east", "west"])],
        [StatSpec("by_region", StatKind.COUNT_BY_CLASS, "region")],
    )
    codec = TransportCookieCodec(
        handle.app_id, handle.transport_schema, handle.key, random.Random(1)
    )
    rng = random.Random(2)
    ground_truth = {"by_region": {r: 0 for r in
                                  ("north", "south", "east", "west")}}

    def send(n: int) -> None:
        for _ in range(n):
            region = rng.choice(["north", "south", "east", "west"])
            ground_truth["by_region"][region] += 1
            result = lark.process_quic_packet(codec.encode({"region": region}))
            if result.aggregation_payload is not None:
                agg.process_packet(result.aggregation_payload)

    # Phase 1: healthy operation.
    send(50)
    print("healthy: in-network counts =", agg.report(handle.app_id)["by_region"])

    # Phase 2: fault injection — the switch loses its rules.
    lark.revoke_application(handle.app_id)
    print("\n!! LarkSwitch silently lost the application's rules")
    send(30)  # 30 events go uncounted
    report = agg.report(handle.app_id)
    print("during fault: in-network total = %d, true total = %d" % (
        sum(report["by_region"].values()),
        sum(ground_truth["by_region"].values()),
    ))

    # Phase 3: the developer's delayed check triggers the repair.
    loop = FaultRepairLoop(controller)
    discrepancies = loop.check("crowd", report, ground_truth)
    print("\nverifier found %d discrepant cells; worst: %s=%g vs truth %g"
          % (len(discrepancies), discrepancies[0].key,
             discrepancies[0].in_network, discrepancies[0].ground_truth))
    print("controller resynced %d device(s); consistent again: %s"
          % (loop.history[0].devices_resynced,
             controller.is_consistent("crowd")))

    # Phase 4: counting resumes.
    send(20)
    after = sum(agg.report(handle.app_id)["by_region"].values())
    print("\nafter repair: in-network total = %d (the 30 faulted events "
          "are recovered from the web-server data, not the switch)" % after)


if __name__ == "__main__":
    main()
