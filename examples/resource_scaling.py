"""Faster autoscaling from in-network demand aggregation.

Paper section 2.3, example 3: cloud services must deploy containers
before demand arrives, so an aggregate-demand signal that is available
~500 ms earlier (the Snatch speedup) means replicas are ready sooner.
This example aggregates per-tier demand sums in-network and feeds an
autoscaler, comparing the reaction time against the conventional
pipeline's analytics latency.

Run:  python examples/resource_scaling.py
"""

import random

from repro.core import AggSwitch, LarkSwitch
from repro.core.transport_cookie import TransportCookieCodec
from repro.model import Protocol, median_scenario, baseline_latency_ms, snatch_latency_ms
from repro.workloads import Autoscaler, ResourceDemandWorkload

APP_ID = 0x71


def main() -> None:
    rng = random.Random(3)
    workload = ResourceDemandWorkload(num_tenants=400, seed=21)
    schema = workload.schema()
    specs = workload.specs()
    key = bytes(rng.getrandbits(8) for _ in range(16))

    lark = LarkSwitch("isp", random.Random(1))
    lark.register_application(APP_ID, schema, key, specs)
    agg = AggSwitch("agg", random.Random(2))
    agg.register_application(APP_ID, schema, key, specs)
    codec = TransportCookieCodec(APP_ID, schema, key, random.Random(4))

    autoscaler = Autoscaler(units_per_replica=5000, max_replicas=32)
    sessions = workload.sessions(rate_per_second=300, duration_ms=4000)

    total_demand = 0.0
    for time_ms, tenant in sessions:
        result = lark.process_quic_packet(codec.encode(tenant.semantic_values()))
        agg.process_packet(result.aggregation_payload)
        report = agg.report(APP_ID)
        total_demand = sum(
            v for v in report["demand_sum"].values() if v is not None
        )
        autoscaler.observe(time_ms, total_demand)

    truth = workload.reference_demand_sum(sessions)
    report = agg.report(APP_ID)
    print("per-tier demand sums (in-network vs ground truth):")
    for tier, expected in sorted(truth.items()):
        got = report["demand_sum"].get(tier, 0)
        marker = "OK" if got == expected else "MISMATCH"
        print("  %-9s %9d  %9d  %s" % (tier, got, expected, marker))

    print("\nautoscaler: %d scaling decisions, final replicas %d"
          % (len(autoscaler.scaling_events), autoscaler.current_replicas))

    # How much earlier is each demand sample available with Snatch?
    params = median_scenario()
    conventional = baseline_latency_ms(params, Protocol.TRANS_1RTT)
    snatch = snatch_latency_ms(params, Protocol.TRANS_1RTT, insa=True)
    print("\ndemand signal latency: %.0f ms conventional vs %.0f ms with "
          "Snatch (%.0fx earlier scaling trigger)"
          % (conventional, snatch, conventional / snatch))


if __name__ == "__main__":
    main()
