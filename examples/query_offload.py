"""Query offload: compile an analytics task onto the network.

The developer writes a query against the cookie schema; the compiler
(paper section 6's "generate on-demand codes" future work, built here)
splits it at the in-network boundary using the Table-1 capability
model, lowers the offloadable prefix into a switch statistics program,
and leaves the rest (here a 99th-percentile estimate, which switches
cannot compute) for the analytics server.

Run:  python examples/query_offload.py
"""

import random

from repro.core import (
    Feature,
    CookieSchema,
    LarkSwitch,
    Query,
    QueryCompiler,
)
from repro.core.transport_cookie import TransportCookieCodec

KEY = bytes(range(16))
APP = 0x61


def main() -> None:
    schema = CookieSchema(
        "shop",
        (
            Feature.categorical("event", ["view", "click", "purchase"]),
            Feature.categorical("segment", ["new", "casual", "power"]),
            Feature.number("basket", 0, 1000),
        ),
    )

    query = (
        Query(schema)
        .where("event", "eq", "purchase")     # L1 filter
        .distinct_users()                      # Bloom dedup (App. B.4)
        .count_by("segment")                   # composition counts
        .sum("basket", group_by="segment")     # revenue per segment
        .quantile("basket", 0.99)              # switches can't do this
    )
    compiled = QueryCompiler().compile(query)

    print("compilation plan:")
    for note in compiled.notes:
        print("  -", note)
    print("switch program: %d statistics, %d filters, dedup=%s, "
          "%d stages; server-side ops: %d"
          % (len(compiled.specs), len(compiled.event_filters),
             compiled.dedup, compiled.stages_used,
             len(compiled.server_ops)))

    # Install the compiled program on an ISP switch and stream traffic.
    lark = LarkSwitch("isp", random.Random(1))
    lark.register_application(
        APP, schema, KEY, compiled.specs, dedup=compiled.dedup
    )
    accept = compiled.edge_filter()
    codec = TransportCookieCodec(APP, schema, KEY, random.Random(2))
    rng = random.Random(3)
    purchases = 0
    for _ in range(300):
        event = rng.choice(["view", "view", "click", "purchase"])
        values = {
            "event": event,
            "segment": rng.choice(["new", "casual", "power"]),
            "basket": rng.randint(5, 400),
        }
        if not accept(values):
            continue  # the WHERE clause, applied at the first tier
        purchases += 1
        lark.process_quic_packet(codec.encode(values))

    report = lark.stats_report(APP)
    count_name = next(s.name for s in compiled.specs if "count_by" in s.name)
    sum_name = next(s.name for s in compiled.specs if "sum" in s.name)
    print("\npurchases seen in-network: %d" % purchases)
    print("composition:", report[count_name])
    print("revenue per segment:", report[sum_name])
    print("\n(the %d server-side op(s) — the p99 basket — run on the "
          "analytics tier from the early-forwarded records)"
          % len(compiled.server_ops))


if __name__ == "__main__":
    main()
