"""Privacy walkthrough: the three attackers of the threat model.

1. A third-party eavesdropper sees only AES-128 ciphertext in the
   connection ID — flipping any plaintext feature flips ~half the
   cookie bits (no structure leaks).
2. An honest-but-curious edge is given transformed values and decoy
   cookie pairs it cannot interpret.
3. A malicious developer trying to smuggle a user ID into the schema
   is rejected by the controller-side audit.

Run:  python examples/privacy_audit.py
"""

import random

from repro.core import (
    CookieSchema,
    CorrelatedCookies,
    Feature,
    IdentifiabilityError,
    ValueTransform,
    audit_schema,
)
from repro.core.transport_cookie import TransportCookieCodec


def hamming(a: bytes, b: bytes) -> int:
    return sum(bin(x ^ y).count("1") for x, y in zip(a, b))


def main() -> None:
    schema = CookieSchema(
        "demo",
        (
            Feature.categorical("segment", ["a", "b", "c", "d"]),
            Feature.number("score", 0, 100),
        ),
    )
    key = bytes(range(16))
    rng = random.Random(0)

    # 1. Eavesdropper: ciphertext diffusion.
    codec = TransportCookieCodec(0x10, schema, key, rng)
    base = bytes(codec.encode({"segment": "a", "score": 50}))[2:18]
    flipped = bytes(codec.encode({"segment": "b", "score": 50}))[2:18]
    print("cipher-bit distance for a one-feature change: %d / 128"
          % hamming(base, flipped))

    # 2. Honest-but-curious edge: affine transform + decoy shares.
    transform = ValueTransform(a=37, b=11, modulus=101)
    true_score = 73
    on_wire = transform.forward(true_score)
    print("edge sees score %d; developer recovers %d"
          % (on_wire, transform.inverse(on_wire)))
    pair = CorrelatedCookies(random.Random(1))
    shares = pair.split(40)
    for delta in (3, -1, 5):
        shares = pair.update(shares, delta)
    print("decoy shares %s combine to %d" % (shares, pair.combine(shares)))

    # 3. Malicious developer: identifier smuggling is rejected.
    bad = CookieSchema(
        "tracking",
        (Feature.number("user_id", 0, 2**31 - 1),),
    )
    try:
        audit_schema(bad, expected_population=10_000_000)
    except IdentifiabilityError as exc:
        print("schema audit rejected the 'user_id' feature:\n  %s" % exc)

    findings = audit_schema(schema, expected_population=10_000_000)
    print("legitimate schema audit findings: %s"
          % (findings or "none — approved"))


if __name__ == "__main__":
    main()
