"""The Yahoo Streaming Benchmark baseline (section 5.2).

The paper's workload extends YSB; this bench runs the *original*
benchmark query (filter -> project -> join to campaign -> windowed
count) on our engine, verifies exactness, and contrasts its
server-side latency with Snatch's in-network pathway for the same
aggregation semantics.
"""

from conftest import attach, emit_table

from repro.model.params import median_scenario
from repro.model.speedup import Protocol, snatch_latency_ms
from repro.testbed.spark_model import SparkLatencyModel
from repro.workloads.ysb import YsbPipeline, YsbWorkload


def _compute():
    workload = YsbWorkload(num_campaigns=10, ads_per_campaign=10, seed=3)
    events = workload.generate_events(rate_per_second=500, duration_ms=5000)
    pipeline = YsbPipeline(workload, window_ms=1000, batch_interval_ms=500)
    pipeline.feed(events)
    pipeline.run(6000)
    return workload, events, pipeline.results()


def test_ysb_baseline(benchmark):
    workload, events, results = benchmark.pedantic(
        _compute, rounds=1, iterations=1
    )
    reference = workload.reference_window_counts(events, 1000)
    assert results == reference

    views = sum(count for count in reference.values())
    emit_table(
        "YSB on the micro-batch engine (%d events, %d views)"
        % (len(events), views),
        ["window", "campaign", "views"],
        [
            [window, campaign, count]
            for (window, campaign), count in sorted(reference.items())[:8]
        ],
    )

    # Latency contrast: the YSB answer needs the Spark path (batch
    # boundary + processing) *after* the WAN detour; Snatch's
    # in-network counting needs only the ISP hop.
    spark = SparkLatencyModel(interval_ms=1000, batch_processing_ms=115)
    params = median_scenario()
    server_side_ms = (
        3 * params.d_ce + 3 * params.d_ew + params.d_wa
        + params.t_edge + params.t_web + spark.mean_latency_ms
    )
    snatch_ms = snatch_latency_ms(params, Protocol.TRANS_1RTT, insa=True)
    emit_table(
        "Same aggregation, two placements",
        ["placement", "latency ms"],
        [
            ["YSB at the analytics server", round(server_side_ms, 1)],
            ["Snatch in-network", round(snatch_ms, 1)],
        ],
    )
    attach(
        benchmark,
        events=len(events),
        server_side_ms=round(server_side_ms, 1),
        snatch_ms=round(snatch_ms, 1),
    )
    assert server_side_ms / snatch_ms > 10
