"""Crash-recovery overhead of the supervised shard runtime.

Drives :func:`repro.testbed.chaos_bench.run_chaos_bench`: for each of
three seeds and all three execution backends, one hash-partitioned
stream runs through the :class:`ShardSupervisor` fault-free and again
with a scripted single-shard crash plus a mid-run backend degradation.
The acceptance invariants are hard assertions, and the measured
recovery overhead lands in ``BENCH_chaos.json`` at the repo root:

* recovered == fault-free, byte for byte, across backends;
* a crash replays at most one checkpoint epoch
  (``checkpoint_batches x chunk_size`` packets), never the run.

Run directly:
``PYTHONPATH=src python -m pytest benchmarks/test_chaos_recovery.py -s``
"""

import json
import os

from conftest import attach, emit_table
from repro.testbed.chaos_bench import DEFAULT_SEEDS, run_chaos_bench

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_JSON_PATH = os.path.join(_REPO_ROOT, "BENCH_chaos.json")

PACKETS = 4000
USERS = 500
SHARDS = 3


def test_chaos_recovery(benchmark):
    """Headline: tail-only recovery, bit-identical reports."""
    result = benchmark.pedantic(
        run_chaos_bench,
        kwargs=dict(
            packets=PACKETS,
            num_users=USERS,
            shards=SHARDS,
            seeds=DEFAULT_SEEDS,
        ),
        rounds=1,
        iterations=1,
    )

    rows = []
    for seed, per_backend in sorted(result["seeds"].items()):
        for backend, cell in per_backend.items():
            rows.append([
                seed, backend,
                cell["crashes"],
                cell["recovered_packets"],
                "%.1f%%" % cell["recovered_pct"],
                "%.1f%%" % cell["time_overhead_pct"],
                cell["degraded_to"] or "-",
                "yes" if cell["identical"] else "NO",
            ])
    emit_table(
        "Supervised shard crash recovery (epoch = %d packets)"
        % result["epoch_size"],
        ["seed", "backend", "crashes", "replayed", "replayed %",
         "time overhead", "degraded to", "identical"],
        rows,
    )

    with open(_JSON_PATH, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    attach(
        benchmark,
        epoch_size=result["epoch_size"],
        all_identical=result["all_identical"],
        all_tail_only=result["all_tail_only"],
        json_path=_JSON_PATH,
    )

    # Differential proof: injected crashes and mid-run degradations
    # change nothing observable, for every backend and seed.
    assert result["all_identical"]
    # Tail-only recovery: the replay is bounded by the events since
    # the last checkpoint, not the stream length.
    assert result["all_tail_only"]
    for per_backend in result["seeds"].values():
        for cell in per_backend.values():
            assert cell["crashes"] >= 1
            assert (
                cell["recovered_packets"]
                <= cell["crashes"] * result["epoch_size"]
            )
            assert cell["recovered_packets"] < result["packets"]
