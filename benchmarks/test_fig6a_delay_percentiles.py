"""Figure 6(a): testbed total time cost vs delay percentile.

Six curves: {no-Snatch, App-HTTPS, Trans-1RTT} x {-, +INSA}, at
10 req/s per-packet forwarding.  Paper anchors: median speedups
1.9x/2.0x (no INSA) and 6.3x/8.3x (+INSA); the baseline reaches
~2807 ms at the 100th percentile where Trans-1RTT+INSA still wins
>= 3.8x.
"""

from conftest import attach, emit_table

from repro.testbed.config import Scheme, TestbedConfig
from repro.testbed.experiment import TestbedExperiment

PERCENTILES = [1, 25, 50, 75, 95, 100]
DURATION_MS = 3000.0


def _run(scheme, insa, percentile):
    config = TestbedConfig(
        scheme=scheme,
        insa=insa,
        delay_percentile=percentile,
        requests_per_second=10,
        duration_ms=DURATION_MS,
    )
    return TestbedExperiment(config).run().median_latency_ms


def _sweep():
    rows = []
    for percentile in PERCENTILES:
        rows.append(
            {
                "pct": percentile,
                "baseline": _run(Scheme.BASELINE, False, percentile),
                "app": _run(Scheme.APP_HTTPS, False, percentile),
                "app_insa": _run(Scheme.APP_HTTPS, True, percentile),
                "trans": _run(Scheme.TRANS_1RTT, False, percentile),
                "trans_insa": _run(Scheme.TRANS_1RTT, True, percentile),
            }
        )
    return rows


def test_fig6a_delay_percentiles(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    emit_table(
        "Figure 6(a): total time cost (ms) vs delay percentile",
        ["pct", "no-Snatch", "App", "App+INSA", "Trans", "Trans+INSA"],
        [
            [
                row["pct"],
                round(row["baseline"]),
                round(row["app"]),
                round(row["app_insa"]),
                round(row["trans"]),
                round(row["trans_insa"]),
            ]
            for row in rows
        ],
    )
    median = next(r for r in rows if r["pct"] == 50)
    worst = next(r for r in rows if r["pct"] == 100)
    attach(
        benchmark,
        median_speedup_app=round(median["baseline"] / median["app"], 2),
        median_speedup_app_insa=round(
            median["baseline"] / median["app_insa"], 2
        ),
        median_speedup_trans=round(median["baseline"] / median["trans"], 2),
        median_speedup_trans_insa=round(
            median["baseline"] / median["trans_insa"], 2
        ),
        p100_baseline_ms=round(worst["baseline"]),
    )
    # Paper anchors at the median.
    assert abs(median["baseline"] / median["app"] - 1.9) < 0.4
    assert abs(median["baseline"] / median["app_insa"] - 6.3) < 1.0
    assert abs(median["baseline"] / median["trans"] - 2.0) < 0.4
    assert abs(median["baseline"] / median["trans_insa"] - 8.3) < 1.2
    # Worst case: ~2807 ms baseline, Snatch still >= 3.8x.
    assert abs(worst["baseline"] - 2807) / 2807 < 0.15
    assert worst["baseline"] / worst["trans_insa"] >= 3.8
    # Shape: every curve grows with the percentile; Snatch always wins.
    for key in ("baseline", "app", "app_insa", "trans", "trans_insa"):
        series = [row[key] for row in rows]
        assert series == sorted(series), key
    for row in rows:
        assert row["trans_insa"] < row["baseline"]
        assert row["app_insa"] < row["app"]
