"""Figure 5(a): delay CDFs between Snatch components, regenerated from
the synthetic measurement campaign.

Paper medians: client-ISP 1.4 ms, client-edge 6.7 ms, client-closest-
cloud 13.1 ms, client-web 60.1 ms, edge-cloud 43.6 ms.
"""

from conftest import attach, emit_table

from repro.measurement.study import MeasurementStudy

PAPER_MEDIANS = {
    "d_ci": 1.4,
    "d_ce": 6.7,
    "d_cc": 13.1,
    "d_cw": 60.1,
    "d_ew": 43.6,
}


def _run_campaign():
    return MeasurementStudy(seed=7).run(max_sites=800)


def test_fig5a_delay_cdfs(benchmark):
    result = benchmark.pedantic(_run_campaign, rounds=1, iterations=1)

    rows = []
    for metric, paper in PAPER_MEDIANS.items():
        rows.append(
            [
                metric,
                round(result.percentile(metric, 25), 1),
                round(result.median(metric), 1),
                round(result.percentile(metric, 75), 1),
                paper,
            ]
        )
    emit_table(
        "Figure 5(a): component delay distributions (ms)",
        ["metric", "p25", "median", "p75", "paper median"],
        rows,
    )
    attach(benchmark, **{
        metric: round(result.median(metric), 1) for metric in PAPER_MEDIANS
    })
    # Shape: medians within 35 % of the paper, and the layering holds.
    for metric, paper in PAPER_MEDIANS.items():
        assert abs(result.median(metric) - paper) / paper < 0.35, metric
    assert result.median("d_ci") < result.median("d_ce")
    assert result.median("d_ce") < result.median("d_cc")
    assert result.median("d_cc") < result.median("d_cw")
