"""Sensitivity analysis: which delay/cost dominates the speedup?

A tornado-style sweep over the median scenario: each parameter is
halved and doubled in isolation and the Trans-1RTT + INSA speedup
recorded.  The paper's qualitative claims fall out: the Snatch-side
path (``d_IA``, ``d_CI``) and the baseline's analytics/processing
costs dominate; the web->analytics hop matters only for the baseline.
"""

from dataclasses import replace

from conftest import attach, emit_table

from repro.model.params import median_scenario
from repro.model.speedup import Protocol, speedup

PARAMETERS = (
    "d_ci", "d_ce", "d_ew", "d_wa", "d_ia",
    "t_edge", "t_web", "t_analytics",
)


def _sweep():
    base = median_scenario()
    nominal = speedup(base, Protocol.TRANS_1RTT, True)
    rows = []
    for name in PARAMETERS:
        value = getattr(base, name)
        low = speedup(
            replace(base, **{name: value * 0.5}),
            Protocol.TRANS_1RTT, True,
        )
        high = speedup(
            replace(base, **{name: value * 2.0}),
            Protocol.TRANS_1RTT, True,
        )
        rows.append(
            {
                "param": name,
                "nominal_value": value,
                "speedup_half": low,
                "speedup_double": high,
                "swing": abs(high - low),
            }
        )
    rows.sort(key=lambda r: -r["swing"])
    return nominal, rows


def test_sensitivity_tornado(benchmark):
    nominal, rows = benchmark(_sweep)

    emit_table(
        "Sensitivity of Trans-1RTT+INSA speedup (nominal %.1fx)" % nominal,
        ["parameter", "nominal", "speedup @ x0.5", "@ x2", "swing"],
        [
            [
                row["param"],
                row["nominal_value"],
                "%.1f" % row["speedup_half"],
                "%.1f" % row["speedup_double"],
                "%.1f" % row["swing"],
            ]
            for row in rows
        ],
    )
    attach(
        benchmark,
        nominal=round(nominal, 1),
        most_sensitive=rows[0]["param"],
    )
    by_param = {row["param"]: row for row in rows}
    # The Snatch-path delay d_IA dominates everything else.
    assert rows[0]["param"] == "d_ia"
    # Baseline-side costs move the speedup *up* when doubled...
    for name in ("t_web", "t_analytics", "d_wa", "d_ew"):
        assert (
            by_param[name]["speedup_double"]
            > by_param[name]["speedup_half"]
        ), name
    # ...while Snatch-path delays move it *down*.
    for name in ("d_ia", "d_ci"):
        assert (
            by_param[name]["speedup_double"]
            < by_param[name]["speedup_half"]
        ), name
    # d_CE cancels out of the transport path entirely... almost: it
    # only appears in the baseline numerator.
    assert by_param["d_ce"]["speedup_double"] > nominal
