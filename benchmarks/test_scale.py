"""Scale benchmark smoke: exact vs sketch per-user state, per-cell RSS.

The full ladder (10k / 100k / 1M users) is a local/CI-artifact run via
``python -m repro.cli bench --scale``; this smoke drives the same
harness at small populations so the grid, the subprocess isolation,
and the exact-vs-sketch agreement stay exercised by the bench suite,
and records the result into ``BENCH_scale.json``.

Run directly: ``PYTHONPATH=src python -m pytest benchmarks/test_scale.py -s``
"""

import json
import os

from conftest import attach, emit_table
from repro.switch.columns import numpy_enabled
from repro.testbed.scale_bench import run_scale_bench

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_JSON_PATH = os.path.join(_REPO_ROOT, "BENCH_scale.json")

USER_COUNTS = (2_000, 10_000)
EVENTS_PER_USER = 1.0


def test_scale_grid(benchmark):
    """Exact and sketch cells agree; sketch RSS stays sublinear."""
    result = benchmark.pedantic(
        run_scale_bench,
        kwargs=dict(
            user_counts=USER_COUNTS,
            events_per_user=EVENTS_PER_USER,
        ),
        rounds=1,
        iterations=1,
    )

    emit_table(
        "Scale: per-user engagement state, exact vs sketch",
        ["users", "mode", "events", "pkts/s", "peak RSS KB", "distinct"],
        [
            [c["users"], c["mode"], c["events"],
             "%.0f" % c["packets_per_second"],
             c["peak_rss_kb"] or "-", c["distinct_users"]]
            for c in result["cells"]
        ],
    )

    payload = dict(result)
    payload["numpy"] = numpy_enabled()
    with open(_JSON_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    attach(
        benchmark,
        cells=len(result["cells"]),
        sublinear=result["sketch_rss_sublinear"],
        json_path=_JSON_PATH,
    )

    assert result["all_verified"], "a cell disagrees with ground truth"
    assert result["sketch_rss_sublinear"], "sketch RSS grew superlinearly"
    for entry in result["agreement"]:
        # Same seed, same stream: both modes must have consumed the
        # identical event sequence, and the KMV distinct estimate must
        # land near the exact population.
        assert entry["events_match"]
        assert entry["distinct_rel_error"] < 0.15
