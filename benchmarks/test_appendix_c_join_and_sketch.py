"""Appendix C extensions: in-switch table joins and sketched counters.

* The join bench executes the appendix's fullOuterJoin example on
  register tables and prices its SRAM cost (the appendix warns joins
  are storage-hungry).
* The sketch bench quantifies the exact-counter vs count-min trade-off
  for a high-cardinality class feature: SRAM shrinks by an order of
  magnitude while per-key error stays within the CM bound.
"""

import random

from conftest import attach, emit_table

from repro.core.schema import CookieSchema, Feature
from repro.core.switch_join import JoinKind, SwitchJoinTable
from repro.switch.registers import RegisterFile
from repro.switch.sketch import CountMinSketch

REGION = Feature.categorical("region", ["r%d" % i for i in range(16)])


def _join_example():
    left = CookieSchema("views", (REGION, Feature.number("views", 0, 999)))
    right = CookieSchema("clicks", (REGION, Feature.number("clicks", 0, 999)))
    registers = RegisterFile()
    table = SwitchJoinTable("region", left, right, registers=registers)
    rng = random.Random(5)
    for i in range(12):
        table.insert_left({"region": "r%d" % i, "views": rng.randrange(1000)})
    for i in range(6, 16):
        table.insert_right(
            {"region": "r%d" % i, "clicks": rng.randrange(1000)}
        )
    return table


def test_appendix_c_full_outer_join(benchmark):
    table = benchmark(_join_example)
    rows = table.result(JoinKind.FULL)
    emit_table(
        "Appendix C: fullOuterJoin at the AggSwitch (first 6 rows)",
        ["region", "views", "clicks"],
        [
            [
                row.key,
                row.left.get("views") if row.left else "-",
                row.right.get("clicks") if row.right else "-",
            ]
            for row in rows[:6]
        ],
    )
    attach(benchmark, rows=len(rows), sram_bits=table.sram_bits)
    assert len(rows) == 16                       # union of both sides
    assert len(table.result(JoinKind.INNER)) == 6  # overlap r6..r11
    assert table.sram_bits > 1000                # joins are pricey


def test_appendix_c_sketch_vs_exact(benchmark):
    """Counting a 10k-category feature: exact counters vs count-min."""
    categories = 10_000
    stream_len = 50_000

    def compute():
        rng = random.Random(7)
        cms = CountMinSketch(width=2048, depth=4)
        truth = {}
        for _ in range(stream_len):
            key = b"cat-%d" % (int(rng.paretovariate(1.2)) % categories)
            truth[key] = truth.get(key, 0) + 1
            cms.add(key)
        worst = max(
            cms.estimate(key) - count for key, count in truth.items()
        )
        return cms, truth, worst

    cms, truth, worst = benchmark.pedantic(compute, rounds=1, iterations=1)
    exact_bits = categories * 48
    sketch_bits = cms.width * cms.depth * 32
    emit_table(
        "Appendix C: exact counters vs count-min sketch",
        ["approach", "SRAM bits", "worst overestimate"],
        [
            ["exact (10k x 48b)", exact_bits, 0],
            ["count-min 2048x4", sketch_bits, worst],
        ],
    )
    attach(benchmark, exact_bits=exact_bits, sketch_bits=sketch_bits,
           worst_error=worst)
    assert sketch_bits < exact_bits
    assert worst <= cms.error_bound()
    # No underestimates, ever.
    assert all(cms.estimate(k) >= c for k, c in truth.items())
