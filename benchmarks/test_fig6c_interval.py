"""Figure 6(c): periodical forwarding — total time cost and bandwidth
vs the forwarding interval, at 200 req/s.

Paper: latency rises with the interval but Snatch still wins at a
500 ms interval (1.8x/1.7x with INSA); the aggregation bandwidth falls
from ~112 Kbps (per-packet-like) to ~1 Kbps at 500 ms.
"""

from conftest import attach, emit_table

from repro.core.aggregation import ForwardingMode
from repro.model.periodical import aggregation_bandwidth_kbps
from repro.testbed.config import Scheme, TestbedConfig
from repro.testbed.experiment import TestbedExperiment

INTERVALS_MS = [5, 50, 150, 300, 500]
RPS = 200
DURATION_MS = 2500.0


def _run(scheme, insa, interval):
    config = TestbedConfig(
        scheme=scheme,
        insa=insa,
        requests_per_second=RPS,
        duration_ms=DURATION_MS,
        forwarding=ForwardingMode.PERIODICAL,
        period_ms=interval,
    )
    return TestbedExperiment(config).run()


def _sweep():
    baseline = TestbedExperiment(
        TestbedConfig(
            scheme=Scheme.BASELINE,
            requests_per_second=RPS,
            duration_ms=DURATION_MS,
        )
    ).run()
    rows = []
    for interval in INTERVALS_MS:
        trans = _run(Scheme.TRANS_1RTT, True, interval)
        app = _run(Scheme.APP_HTTPS, True, interval)
        rows.append(
            {
                "interval": interval,
                "trans_insa": trans.median_latency_ms,
                "app_insa": app.median_latency_ms,
                "measured_kbps": trans.bandwidth_kbps,
                "model_kbps": aggregation_bandwidth_kbps(interval, RPS),
            }
        )
    return baseline.median_latency_ms, rows


def test_fig6c_periodical_interval(benchmark):
    baseline_ms, rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    emit_table(
        "Figure 6(c): total time (ms) and bandwidth vs interval "
        "(baseline %.0f ms)" % baseline_ms,
        ["interval ms", "Trans+INSA", "App+INSA", "bw kbps (DES)",
         "bw kbps (70B model)"],
        [
            [
                row["interval"],
                round(row["trans_insa"]),
                round(row["app_insa"]),
                round(row["measured_kbps"], 1),
                round(row["model_kbps"], 1),
            ]
            for row in rows
        ],
    )
    attach(
        benchmark,
        baseline_ms=round(baseline_ms),
        speedup_at_500ms=round(baseline_ms / rows[-1]["trans_insa"], 2),
        model_bw_at_5ms=round(rows[0]["model_kbps"], 1),
        model_bw_at_500ms=round(rows[-1]["model_kbps"], 2),
    )
    # Latency grows with the interval for both schemes.
    for key in ("trans_insa", "app_insa"):
        series = [row[key] for row in rows]
        assert series == sorted(series), key
    # Snatch still wins at 500 ms (paper: 1.8x with INSA).
    assert baseline_ms / rows[-1]["trans_insa"] > 1.3
    # The 70-byte packet model reproduces the paper's grey line.
    assert abs(rows[0]["model_kbps"] - 112) / 112 < 0.05
    assert abs(rows[-1]["model_kbps"] - 1.12) / 1.12 < 0.05
    # Measured DES bandwidth is monotone decreasing too.
    measured = [row["measured_kbps"] for row in rows]
    assert measured == sorted(measured, reverse=True)
