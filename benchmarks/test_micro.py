"""Microbenchmarks of the hot paths: AES, cookie codecs, switch
pipeline throughput, and the streaming engine.

These are classic pytest-benchmark timings (many rounds), useful for
tracking regressions in the substrate implementations.
"""

import random

from conftest import emit_metrics
from repro.obs import MetricsRegistry
from repro.core.schema import CookieSchema, Feature
from repro.core.stats import StatKind, StatSpec
from repro.core.larkswitch import LarkSwitch
from repro.core.transport_cookie import TransportCookieCodec
from repro.crypto.aes import AES
from repro.streaming.context import StreamingContext
from repro.streaming.rdd import RDD

KEY = bytes(range(16))
APP = 0x42


def _schema():
    return CookieSchema(
        "app",
        (
            Feature.categorical("gender", ["f", "m", "x"]),
            Feature.number("demand", 0, 1000),
        ),
    )


def test_micro_aes_block(benchmark):
    cipher = AES(KEY)
    block = bytes(range(16))
    out = benchmark(cipher.encrypt_block, block)
    assert cipher.decrypt_block(out) == block


def test_micro_transport_cookie_encode(benchmark):
    codec = TransportCookieCodec(APP, _schema(), KEY, random.Random(1))
    values = {"gender": "f", "demand": 512}
    cid = benchmark(codec.encode, values)
    assert codec.decode(cid).values == values


def test_micro_transport_cookie_decode(benchmark):
    codec = TransportCookieCodec(APP, _schema(), KEY, random.Random(2))
    cid = codec.encode({"gender": "m", "demand": 7})
    decoded = benchmark(codec.decode, cid)
    assert decoded.values == {"gender": "m", "demand": 7}


def test_micro_larkswitch_packet(benchmark):
    registry = MetricsRegistry()
    lark = LarkSwitch("lark", random.Random(3), registry=registry)
    lark.register_application(
        APP, _schema(), KEY,
        [StatSpec("by_gender", StatKind.COUNT_BY_CLASS, "gender")],
    )
    codec = TransportCookieCodec(APP, _schema(), KEY, random.Random(4))
    cid = codec.encode({"gender": "x"})
    result = benchmark(lark.process_quic_packet, cid)
    assert result.matched
    emit_metrics(benchmark, registry, "larkswitch data-plane metrics")
    assert registry.value("pipeline.lark.packets") > 0


def test_micro_rdd_reduce_by_key(benchmark):
    rng = random.Random(5)
    pairs = [(rng.randrange(64), 1) for _ in range(5000)]
    rdd = RDD.of(pairs, num_partitions=4)
    result = benchmark(rdd.reduce_by_key, lambda a, b: a + b)
    assert sum(v for _k, v in result.collect()) == 5000


def test_micro_streaming_batch(benchmark):
    def run_batch():
        ssc = StreamingContext(batch_interval_ms=100)
        inp = ssc.input_stream(num_partitions=2)
        counts = inp.map(lambda e: (e % 16, 1)).reduceByKey(
            lambda a, b: a + b
        )
        out = []
        counts.foreachRDD(lambda rdd, i: out.append(rdd.count()))
        for i in range(1000):
            inp.push(i, 50)
        ssc.run_batch()
        return out[0]

    assert benchmark(run_batch) == 16
