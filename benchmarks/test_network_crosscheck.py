"""Cross-validation: two independent testbed implementations.

The chain-based experiment (`repro.testbed.experiment`) and the
packet-routed network testbed (`repro.testbed.network_testbed`) model
the same Trans-1RTT + INSA pathway with different machinery; their
medians must agree, and both must equal the analytic model's
prediction ``d_CI + d_IA + switch costs``.
"""

from conftest import attach, emit_metrics, emit_table

from repro.model.params import percentile_scenario
from repro.obs import scoped_registry
from repro.testbed.config import Scheme, TestbedConfig
from repro.testbed.experiment import TestbedExperiment
from repro.testbed.network_testbed import NetworkTestbed


def _compute():
    rows = []
    for percentile in (25, 50, 75):
        config = TestbedConfig(
            scheme=Scheme.TRANS_1RTT,
            insa=True,
            delay_percentile=percentile,
            requests_per_second=20,
            duration_ms=2500,
        )
        chain = TestbedExperiment(config).run().median_latency_ms
        network = NetworkTestbed(config).run().median_latency_ms
        params = percentile_scenario(percentile)
        analytic = params.d_ci + params.d_ia + 2 * 0.101  # two switch hops
        rows.append((percentile, chain, network, analytic))
    return rows


def test_testbed_crosscheck(benchmark):
    # Meter the whole cross-check in an isolated registry so the
    # benchmark JSON carries the pipeline/switch series of exactly
    # this run.
    with scoped_registry() as registry:
        rows = benchmark.pedantic(_compute, rounds=1, iterations=1)

    emit_table(
        "Cross-check: Trans-1RTT + INSA median latency (ms)",
        ["percentile", "chain DES", "packet DES", "analytic"],
        [
            [p, round(chain, 2), round(network, 2), round(analytic, 2)]
            for p, chain, network, analytic in rows
        ],
    )
    attach(benchmark, medians=[round(r[1], 2) for r in rows])
    emit_metrics(benchmark, registry, "testbed data-plane metrics")
    for _percentile, chain, network, analytic in rows:
        assert abs(chain - network) / chain < 0.02
        assert abs(chain - analytic) / analytic < 0.05
