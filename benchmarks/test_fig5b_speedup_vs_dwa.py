"""Figure 5(b): Snatch speedup vs the web->analytics delay d_WA.

Paper anchors: Trans-1RTT + INSA is 31x in the US (d_WA = 26.3 ms) and
12x worldwide (75.5 ms); App-HTTPS + INSA is 5.5x / 4.4x.  INSA buys
up to two orders of magnitude over redirection-only; the speedup falls
as d_WA grows; the protocol order is Trans-1RTT > Trans-0RTT >
App-HTTPS.
"""

from conftest import attach, emit_table

from repro.model.params import interpolated_scenario
from repro.model.speedup import Protocol, speedup

D_WA_SWEEP = [0.8, 10, 26.3, 50, 75.5, 100, 150, 206]
PROTOCOLS = [Protocol.TRANS_1RTT, Protocol.TRANS_0RTT, Protocol.APP_HTTPS_1RTT]


def _sweep():
    rows = []
    for d_wa in D_WA_SWEEP:
        params = interpolated_scenario(d_wa)
        row = {"d_wa": d_wa}
        for protocol in PROTOCOLS:
            row[(protocol, False)] = speedup(params, protocol, False)
            row[(protocol, True)] = speedup(params, protocol, True)
        rows.append(row)
    return rows


def test_fig5b_speedup_vs_dwa(benchmark):
    rows = benchmark(_sweep)

    emit_table(
        "Figure 5(b): speedup vs d_WA (solid = redirection only, "
        "dashed = +INSA)",
        ["d_WA", "T1RTT", "T1RTT+INSA", "T0RTT", "T0RTT+INSA",
         "App", "App+INSA"],
        [
            [
                row["d_wa"],
                round(row[(Protocol.TRANS_1RTT, False)], 2),
                round(row[(Protocol.TRANS_1RTT, True)], 1),
                round(row[(Protocol.TRANS_0RTT, False)], 2),
                round(row[(Protocol.TRANS_0RTT, True)], 1),
                round(row[(Protocol.APP_HTTPS_1RTT, False)], 2),
                round(row[(Protocol.APP_HTTPS_1RTT, True)], 1),
            ]
            for row in rows
        ],
    )
    us = next(r for r in rows if r["d_wa"] == 26.3)
    ww = next(r for r in rows if r["d_wa"] == 75.5)
    attach(
        benchmark,
        us_trans_insa=round(us[(Protocol.TRANS_1RTT, True)], 1),
        ww_trans_insa=round(ww[(Protocol.TRANS_1RTT, True)], 1),
        us_app_insa=round(us[(Protocol.APP_HTTPS_1RTT, True)], 1),
        ww_app_insa=round(ww[(Protocol.APP_HTTPS_1RTT, True)], 1),
    )
    # Paper anchors within 15 %.
    assert abs(us[(Protocol.TRANS_1RTT, True)] - 31) / 31 < 0.15
    assert abs(ww[(Protocol.TRANS_1RTT, True)] - 12) / 12 < 0.15
    assert abs(us[(Protocol.APP_HTTPS_1RTT, True)] - 5.5) / 5.5 < 0.15
    assert abs(ww[(Protocol.APP_HTTPS_1RTT, True)] - 4.4) / 4.4 < 0.15
    # Shape: INSA >> redirection-only; speedups fall with d_WA;
    # Trans-1RTT >= Trans-0RTT >= App-HTTPS under INSA.
    for row in rows:
        assert row[(Protocol.TRANS_1RTT, True)] > row[
            (Protocol.TRANS_1RTT, False)
        ]
        assert (
            row[(Protocol.TRANS_1RTT, True)]
            >= row[(Protocol.TRANS_0RTT, True)]
            >= row[(Protocol.APP_HTTPS_1RTT, True)]
        )
    insa_series = [r[(Protocol.TRANS_1RTT, True)] for r in rows]
    assert insa_series == sorted(insa_series, reverse=True)
    assert insa_series[0] / rows[0][(Protocol.TRANS_1RTT, False)] > 50
