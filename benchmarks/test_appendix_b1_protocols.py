"""Appendix B.1/B.2: speedups across all six protocol variants.

Equations (1)-(6): QUIC 1-RTT and 0-RTT at both layers, plus TCP
(1-RTT handshake) and TCP+TLS 1.2 (3 RTTs, i.e. 7 one-way delays).
TCP+TLS suffers the largest baseline handshake cost, so Snatch's
*relative* gain there is the largest among application-layer options.
"""

from conftest import attach, emit_table

from repro.model.params import median_scenario
from repro.model.speedup import (
    Protocol,
    baseline_latency_ms,
    snatch_latency_ms,
    speedup,
)

ORDERED = [
    Protocol.APP_HTTP_TCP,
    Protocol.APP_HTTPS_TCP,
    Protocol.APP_HTTPS_0RTT,
    Protocol.APP_HTTPS_1RTT,
    Protocol.TRANS_0RTT,
    Protocol.TRANS_1RTT,
]


def _compute():
    params = median_scenario()
    rows = []
    for protocol in ORDERED:
        rows.append(
            {
                "protocol": protocol,
                "baseline": baseline_latency_ms(params, protocol),
                "snatch": snatch_latency_ms(params, protocol, False),
                "snatch_insa": snatch_latency_ms(params, protocol, True),
                "speedup": speedup(params, protocol, False),
                "speedup_insa": speedup(params, protocol, True),
            }
        )
    return rows


def test_appendix_b1_protocol_matrix(benchmark):
    rows = benchmark(_compute)

    emit_table(
        "Appendix B: speedup by protocol (median delays)",
        ["protocol", "baseline ms", "snatch ms", "+INSA ms",
         "speedup", "speedup+INSA"],
        [
            [
                row["protocol"].value,
                round(row["baseline"], 1),
                round(row["snatch"], 1),
                round(row["snatch_insa"], 1),
                "%.2fx" % row["speedup"],
                "%.1fx" % row["speedup_insa"],
            ]
            for row in rows
        ],
    )
    by_protocol = {row["protocol"]: row for row in rows}
    attach(
        benchmark,
        tcp_tls_insa=round(
            by_protocol[Protocol.APP_HTTPS_TCP]["speedup_insa"], 1
        ),
        trans_1rtt_insa=round(
            by_protocol[Protocol.TRANS_1RTT]["speedup_insa"], 1
        ),
    )
    # TCP+TLS has the heaviest baseline (7 one-way delays per leg).
    baselines = [row["baseline"] for row in rows]
    assert by_protocol[Protocol.APP_HTTPS_TCP]["baseline"] == max(baselines)
    # Transport cookies beat application cookies at equal handshakes.
    assert (
        by_protocol[Protocol.TRANS_1RTT]["speedup_insa"]
        > by_protocol[Protocol.APP_HTTPS_1RTT]["speedup_insa"]
    )
    assert (
        by_protocol[Protocol.TRANS_0RTT]["speedup_insa"]
        > by_protocol[Protocol.APP_HTTPS_0RTT]["speedup_insa"]
    )
    # Every variant gains from Snatch, more with INSA.
    for row in rows:
        assert row["speedup"] >= 1.0
        assert row["speedup_insa"] >= row["speedup"]
