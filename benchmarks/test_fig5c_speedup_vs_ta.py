"""Figure 5(c): speedup vs the analytics time cost T_A (1 ms - 10 s).

Paper: with INSA the speedup *grows* with T_A (at 10 s: 183x for
Trans-1RTT, 181x for Trans-0RTT, 53x for App-HTTPS); without INSA it
*shrinks*; Snatch always wins.
"""

from conftest import attach, emit_table

from repro.model.params import median_scenario
from repro.model.speedup import Protocol, speedup

TA_SWEEP_MS = [1, 10, 100, 500, 1000, 5000, 10_000]


def _sweep():
    rows = []
    for t_a in TA_SWEEP_MS:
        params = median_scenario(t_analytics=float(t_a))
        rows.append(
            {
                "t_a": t_a,
                "trans1_insa": speedup(params, Protocol.TRANS_1RTT, True),
                "trans0_insa": speedup(params, Protocol.TRANS_0RTT, True),
                "app_insa": speedup(params, Protocol.APP_HTTPS_1RTT, True),
                "trans1": speedup(params, Protocol.TRANS_1RTT, False),
                "app": speedup(params, Protocol.APP_HTTPS_1RTT, False),
            }
        )
    return rows


def test_fig5c_speedup_vs_ta(benchmark):
    rows = benchmark(_sweep)

    emit_table(
        "Figure 5(c): speedup vs analytics time cost T_A",
        ["T_A ms", "T1RTT+INSA", "T0RTT+INSA", "App+INSA", "T1RTT", "App"],
        [
            [
                row["t_a"],
                round(row["trans1_insa"], 1),
                round(row["trans0_insa"], 1),
                round(row["app_insa"], 1),
                round(row["trans1"], 2),
                round(row["app"], 2),
            ]
            for row in rows
        ],
    )
    at_10s = rows[-1]
    attach(
        benchmark,
        trans1_insa_at_10s=round(at_10s["trans1_insa"], 1),
        trans0_insa_at_10s=round(at_10s["trans0_insa"], 1),
        app_insa_at_10s=round(at_10s["app_insa"], 1),
    )
    # Paper anchors at T_A = 10 s (within 15 %).
    assert abs(at_10s["trans1_insa"] - 183) / 183 < 0.15
    assert abs(at_10s["trans0_insa"] - 181) / 181 < 0.15
    assert abs(at_10s["app_insa"] - 53) / 53 < 0.15
    # Shape: INSA series increase with T_A, non-INSA decrease,
    # and every speedup stays >= 1 ("Snatch always boosts").
    insa = [r["trans1_insa"] for r in rows]
    plain = [r["trans1"] for r in rows]
    assert insa == sorted(insa)
    assert plain == sorted(plain, reverse=True)
    for row in rows:
        for key in ("trans1_insa", "app_insa", "trans1", "app"):
            assert row[key] >= 1.0
