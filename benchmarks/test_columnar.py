"""Columnar backend throughput on a 100k-packet run.

Drives one seeded connection-ID stream through all three execution
backends — the scalar per-packet data plane, the PR-3 compiled batch
path, and the vectorized columnar kernels — with interleaved
best-of-N timing, then records the comparison into
``BENCH_columnar.json`` at the repo root.  ``tests/differential``
proves the backends bit-identical; this benchmark proves the columnar
path is worth having:

* lark periodical: columnar >= 3x the batch path;
* agg merge: batch and columnar both >= 1.0x scalar (the batch path
  regressed below scalar once — this pins the fix).

Run directly: ``PYTHONPATH=src python -m pytest benchmarks/test_columnar.py -s``
"""

import json
import os

from conftest import attach, emit_table
from repro.core.aggregation import ForwardingMode
from repro.switch.columns import numpy_enabled
from repro.testbed.fastpath import BACKENDS, run_backend_bench

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_JSON_PATH = os.path.join(_REPO_ROOT, "BENCH_columnar.json")

PACKETS = 100_000
USERS = 2000
BATCH_SIZE = 1024
REPEATS = 3


def test_columnar_backends(benchmark):
    """Headline: periodical lark columnar >= 3x batch, agg >= 1x scalar."""
    result = benchmark.pedantic(
        run_backend_bench,
        kwargs=dict(
            packets=PACKETS,
            num_users=USERS,
            mode=ForwardingMode.PERIODICAL,
            batch_size=BATCH_SIZE,
            repeats=REPEATS,
        ),
        rounds=1,
        iterations=1,
    )

    rows = []
    for section in ("lark", "agg"):
        data = result[section]
        rows.append(
            [section]
            + ["%.0f" % data[b]["packets_per_second"] for b in BACKENDS]
            + ["%.2fx" % data["speedup_vs_scalar"]["columnar"],
               "%.2fx" % data["columnar_vs_batch"],
               "yes" if data["reports_match"] else "NO"]
        )
    emit_table(
        "Execution backends: scalar vs batch vs columnar",
        ["path", "scalar pkts/s", "batch pkts/s", "columnar pkts/s",
         "col/scalar", "col/batch", "match"],
        rows,
    )

    payload = {
        "packets": PACKETS,
        "users": USERS,
        "batch_size": BATCH_SIZE,
        "repeats": REPEATS,
        "numpy": numpy_enabled(),
        "periodical": result,
    }
    with open(_JSON_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    attach(
        benchmark,
        lark_columnar_vs_batch=result["lark"]["columnar_vs_batch"],
        lark_columnar_vs_scalar=result["lark"]["speedup_vs_scalar"]["columnar"],
        agg_batch_vs_scalar=result["agg"]["speedup_vs_scalar"]["batch"],
        agg_columnar_vs_scalar=result["agg"]["speedup_vs_scalar"]["columnar"],
        json_path=_JSON_PATH,
    )

    assert result["lark"]["reports_match"]
    assert result["agg"]["reports_match"]
    if not numpy_enabled():
        # Without numpy the columnar entry points fall back to the
        # batch path; identity still holds but there is no speedup
        # to assert.
        return
    # Acceptance bars (see ISSUE 4): the columnar lark path must beat
    # the PR-3 batch path 3x on the periodical workload, and neither
    # agg fast path may regress below scalar.
    assert result["lark"]["columnar_vs_batch"] >= 3.0, (
        "expected columnar >= 3x batch, measured %.2fx"
        % result["lark"]["columnar_vs_batch"]
    )
    assert result["agg"]["speedup_vs_scalar"]["batch"] >= 1.0, (
        "agg batch path slower than scalar: %.2fx"
        % result["agg"]["speedup_vs_scalar"]["batch"]
    )
    assert result["agg"]["speedup_vs_scalar"]["columnar"] >= 1.0, (
        "agg columnar path slower than scalar: %.2fx"
        % result["agg"]["speedup_vs_scalar"]["columnar"]
    )
