"""Figure 5(d): speedup under periodical forwarding vs the interval.

Paper: at a 5 ms interval the speedup approaches per-packet (18x for
Trans-1RTT); at 200 ms it falls to 4.3x.
"""

from conftest import attach, emit_table

from repro.model.params import median_scenario
from repro.model.periodical import periodical_speedup
from repro.model.speedup import Protocol, speedup

INTERVALS_MS = [5, 10, 25, 50, 100, 150, 200]
PROTOCOLS = [Protocol.TRANS_1RTT, Protocol.TRANS_0RTT, Protocol.APP_HTTPS_1RTT]


def _sweep():
    params = median_scenario()
    rows = []
    for interval in INTERVALS_MS:
        rows.append(
            {
                "interval": interval,
                **{
                    protocol: periodical_speedup(params, protocol, interval)
                    for protocol in PROTOCOLS
                },
            }
        )
    return params, rows


def test_fig5d_periodical_speedup(benchmark):
    params, rows = benchmark(_sweep)

    emit_table(
        "Figure 5(d): speedup vs periodical-forwarding interval (+INSA)",
        ["interval ms", "Trans-1RTT", "Trans-0RTT", "App-HTTPS"],
        [
            [
                row["interval"],
                round(row[Protocol.TRANS_1RTT], 1),
                round(row[Protocol.TRANS_0RTT], 1),
                round(row[Protocol.APP_HTTPS_1RTT], 1),
            ]
            for row in rows
        ],
    )
    attach(
        benchmark,
        speedup_at_5ms=round(rows[0][Protocol.TRANS_1RTT], 1),
        speedup_at_200ms=round(rows[-1][Protocol.TRANS_1RTT], 1),
    )
    # Paper anchors (within 15 %).
    assert abs(rows[0][Protocol.TRANS_1RTT] - 18) / 18 < 0.15
    assert abs(rows[-1][Protocol.TRANS_1RTT] - 4.3) / 4.3 < 0.15
    # Shape: monotone decrease; 5 ms close to per-packet.
    series = [row[Protocol.TRANS_1RTT] for row in rows]
    assert series == sorted(series, reverse=True)
    per_packet = speedup(params, Protocol.TRANS_1RTT, True)
    assert rows[0][Protocol.TRANS_1RTT] > 0.85 * per_packet
