"""Figure 6(b): total time cost vs workload (requests per second).

Paper: stable below ~100 req/s; no-Snatch and App-HTTPS rise sharply
from ~300 req/s (edge/web congestion); Trans-1RTT + INSA stays flat at
~61 ms regardless of workload ("no parallelism inflation").
"""

from conftest import attach, emit_table

from repro.testbed.config import Scheme, TestbedConfig
from repro.testbed.experiment import TestbedExperiment

WORKLOADS_RPS = [10, 50, 100, 200, 300, 500]
DURATION_MS = 2000.0


def _run(scheme, insa, rps):
    config = TestbedConfig(
        scheme=scheme,
        insa=insa,
        requests_per_second=rps,
        duration_ms=DURATION_MS,
    )
    return TestbedExperiment(config).run().median_latency_ms


def _sweep():
    rows = []
    for rps in WORKLOADS_RPS:
        rows.append(
            {
                "rps": rps,
                "baseline": _run(Scheme.BASELINE, False, rps),
                "app_insa": _run(Scheme.APP_HTTPS, True, rps),
                "trans": _run(Scheme.TRANS_1RTT, False, rps),
                "trans_insa": _run(Scheme.TRANS_1RTT, True, rps),
            }
        )
    return rows


def test_fig6b_workload(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    emit_table(
        "Figure 6(b): total time cost (ms) vs workload",
        ["req/s", "no-Snatch", "App+INSA", "Trans", "Trans+INSA"],
        [
            [
                row["rps"],
                round(row["baseline"]),
                round(row["app_insa"]),
                round(row["trans"]),
                round(row["trans_insa"]),
            ]
            for row in rows
        ],
    )
    flat = [row["trans_insa"] for row in rows]
    attach(
        benchmark,
        trans_insa_latencies=flat,
        baseline_at_500rps=round(rows[-1]["baseline"]),
    )
    # Trans-1RTT + INSA is workload-invariant at ~61 ms.
    assert max(flat) - min(flat) < 2.0
    assert abs(flat[0] - 61) < 4
    # Congestion: baseline at 300+ req/s far above its low-load value.
    low = rows[0]["baseline"]
    at_300 = next(r for r in rows if r["rps"] == 300)["baseline"]
    assert at_300 > 3 * low
    # App-HTTPS with INSA eventually loses to Trans without INSA
    # under heavy load (paper: congestion at the edge server).
    heavy = rows[-1]
    assert heavy["app_insa"] > heavy["trans"]
    # And at low load the opposite holds.
    assert rows[0]["app_insa"] < rows[0]["trans"]
