"""Figure 9(b): client->edge delay per provider.

Paper: off-net servers are much closer than regular CDNs but cover
only 57.9 % of clients; Amazon CloudFront outperforms Cloudflare; the
analysis takes the per-site minimum over available providers.
"""

import statistics

from conftest import attach, emit_table

from repro.measurement.providers import (
    OFFNET_COVERAGE,
    best_edge_delay,
    site_edge_delays,
)
from repro.measurement.sites import generate_sites


def _measure(n_sites=800):
    sites = generate_sites().sites[:n_sites]
    per_provider = {"offnet": [], "cloudfront": [], "cloudflare": []}
    best = []
    for site in sites:
        delays = site_edge_delays(site)
        for name, value in delays.items():
            per_provider[name].append(value)
        best.append(min(delays.values()))
    return sites, per_provider, best


def test_fig9b_edge_providers(benchmark):
    sites, per_provider, best = benchmark.pedantic(
        _measure, rounds=1, iterations=1
    )

    rows = []
    for name in ("offnet", "cloudfront", "cloudflare"):
        values = sorted(per_provider[name])
        rows.append(
            [
                name,
                round(values[len(values) // 4], 1),
                round(statistics.median(values), 1),
                round(values[3 * len(values) // 4], 1),
                "%.1f%%" % (100.0 * len(values) / len(sites)),
            ]
        )
    rows.append(
        ["best-of-providers", "", round(statistics.median(best), 1), "", ""]
    )
    emit_table(
        "Figure 9(b): client->edge delay per provider (ms)",
        ["provider", "p25", "median", "p75", "coverage"],
        rows,
    )
    coverage = len(per_provider["offnet"]) / len(sites)
    attach(
        benchmark,
        offnet_coverage=round(coverage, 3),
        offnet_median=round(statistics.median(per_provider["offnet"]), 1),
        best_median=round(statistics.median(best), 1),
    )
    # Off-net closest, CloudFront beats Cloudflare.
    assert statistics.median(per_provider["offnet"]) < statistics.median(
        per_provider["cloudfront"]
    )
    assert statistics.median(per_provider["cloudfront"]) < statistics.median(
        per_provider["cloudflare"]
    )
    # Coverage near the paper's 57.9 %.
    assert abs(coverage - OFFNET_COVERAGE) < 0.06
    # Best-of-providers median near the paper's 6.7 ms client-edge.
    assert 3.0 < statistics.median(best) < 10.0
