"""Figure 7: QUIC connection establishment — 1-RTT vs 0-RTT.

The handshake traces and one-way-delay counts feed the coefficients of
the speedup equations: 3 one-way delays before the server holds data
under 1-RTT, 1 under 0-RTT.
"""

import random

from conftest import attach, emit_table

from repro.quic.connection import HandshakeMode, QuicClient, QuicServer


def _handshakes():
    rng = random.Random(1)
    server = QuicServer("web", rng=rng)
    client = QuicClient("user", rng=rng)
    first = client.connect(server)
    second = client.connect(server)
    return first, second


def test_fig7_quic_handshakes(benchmark):
    first, second = benchmark(_handshakes)

    emit_table(
        "Figure 7 (left): QUIC 1-RTT handshake",
        ["direction", "packet"],
        [[e.direction, e.description] for e in first.trace],
    )
    emit_table(
        "Figure 7 (right): QUIC 0-RTT handshake",
        ["direction", "packet"],
        [[e.direction, e.description] for e in second.trace],
    )
    attach(
        benchmark,
        one_rtt_ow_delays=first.one_way_delays_to_server_data,
        zero_rtt_ow_delays=second.one_way_delays_to_server_data,
    )
    assert first.mode is HandshakeMode.ONE_RTT
    assert second.mode is HandshakeMode.ZERO_RTT
    assert first.one_way_delays_to_server_data == 3
    assert second.one_way_delays_to_server_data == 1
    # 0-RTT replays the previous DstConnID* (the cookie carrier).
    assert second.dst_conn_id == first.dst_conn_id
