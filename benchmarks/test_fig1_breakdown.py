"""Figure 1: time-cost breakdown of the ad-campaign example.

Paper: 1008.3 ms total without Snatch (508.3 ms before the data even
reaches the analytics server); 228.6 ms with application-layer
semantic cookies + INSA; ~48 ms with transport-layer cookies + INSA.
"""

from conftest import attach, emit_table

from repro.model.breakdown import (
    app_insa_breakdown,
    baseline_breakdown,
    trans_insa_breakdown,
)


def _compute():
    return (
        baseline_breakdown(),
        app_insa_breakdown(),
        trans_insa_breakdown(),
    )


def test_fig1_breakdown(benchmark):
    base, app, trans = benchmark(_compute)

    emit_table(
        "Figure 1(a): no semantic cookies",
        ["step", "ms"],
        base.rows(),
    )
    emit_table(
        "Figure 1(b): Snatch pathways",
        ["pathway", "total ms", "paper"],
        [
            ["no-Snatch", round(base.total_ms, 1), 1008.3],
            ["App semantic cookies + INSA", round(app.total_ms, 1), 228.6],
            ["Transport semantic cookies + INSA",
             round(trans.total_ms, 1), "~48"],
        ],
    )
    attach(
        benchmark,
        baseline_ms=round(base.total_ms, 1),
        app_insa_ms=round(app.total_ms, 1),
        trans_insa_ms=round(trans.total_ms, 1),
    )
    # Shape: ~80 % and ~95 % reductions.
    assert abs(base.total_ms - 1008.3) < 5
    assert abs(app.total_ms - 228.6) < 5
    assert abs(trans.total_ms - 48.0) < 3
    assert base.until("web -> analytics delivery") > 0.5 * base.total_ms
