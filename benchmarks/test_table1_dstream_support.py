"""Table 1: DStream methods and their in-network (INSA) support.

The table is regenerated from the capability model and cross-checked
against the actual engine: every listed method exists on our DStream,
and the planner's offload decisions agree with the classifications.
"""

from conftest import attach, emit_table

from repro.core.insa import (
    DSTREAM_SUPPORT,
    InsaPlanner,
    PlanOp,
    Support,
    table1_rows,
)
from repro.streaming.dstream import DStream


def test_table1_dstream_support(benchmark):
    rows = benchmark(table1_rows)

    emit_table(
        "Table 1: DStream methods vs INSA support",
        ["method", "INSA", "categories"],
        rows,
    )
    tally = {"Y": 0, "Y*": 0, "N": 0, "N/A": 0}
    for _method, support, _categories in rows:
        tally[support] += 1
    attach(benchmark, **{("count_" + k.replace("*", "_star").replace("/", "_")): v
                         for k, v in tally.items()})
    # Paper's Table 1 composition.
    assert len(rows) == 39
    assert tally["N"] == 2          # partitionBy, repartition
    assert tally["N/A"] == 7        # engine bookkeeping
    assert tally["Y"] == 8
    assert tally["Y*"] == 22

    # Every method is real on the engine we built.
    for method in DSTREAM_SUPPORT:
        assert hasattr(DStream, method), method

    # The planner honours the table: supported ops offload, the two
    # partition movers do not.
    planner = InsaPlanner()
    for method, info in DSTREAM_SUPPORT.items():
        plan = planner.plan([PlanOp(method, operands=("add",))])
        if info.support is Support.NO:
            assert plan.server_side, method
        else:
            assert plan.fully_offloaded, method
