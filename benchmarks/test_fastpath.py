"""Scalar-vs-batch fast-path throughput on a 100k-packet run.

Drives the same seeded connection-ID stream through the scalar
per-packet data plane and the compiled batch path
(:meth:`LarkSwitch.process_quic_batch` over
:meth:`SwitchPipeline.process_batch`), then records both throughputs —
and the speedup ratio — into ``BENCH_fastpath.json`` at the repo root.
The differential suite (``tests/differential/``) proves the two paths
bit-identical; this benchmark proves the batch path is worth having.

Run directly: ``PYTHONPATH=src python -m pytest benchmarks/test_fastpath.py -s``
"""

import json
import os

from conftest import attach, emit_table
from repro.core.aggregation import ForwardingMode
from repro.testbed.fastpath import run_fastpath_bench

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_JSON_PATH = os.path.join(_REPO_ROOT, "BENCH_fastpath.json")

PACKETS = 100_000
USERS = 2000
BATCH_SIZE = 1024
SHARDS = 4


def test_fastpath_scalar_vs_batch(benchmark):
    """Headline: periodical-mode LarkSwitch, 100k packets, >= 5x."""
    result = benchmark.pedantic(
        run_fastpath_bench,
        kwargs=dict(
            packets=PACKETS,
            num_users=USERS,
            mode=ForwardingMode.PERIODICAL,
            batch_size=BATCH_SIZE,
            shards=SHARDS,
        ),
        rounds=1,
        iterations=1,
    )
    # A second, secondary datapoint: per-packet forwarding mode, where
    # each matched packet also encodes an aggregation payload (fresh
    # IV from the app RNG), so less of the work can be amortized.
    per_packet = run_fastpath_bench(
        packets=PACKETS // 10,
        num_users=USERS,
        mode=ForwardingMode.PER_PACKET,
        batch_size=BATCH_SIZE,
        shards=SHARDS,
    )

    rows = []
    for label, data in (("periodical", result), ("per-packet", per_packet)):
        for section in ("lark", "agg"):
            s = data[section]
            rows.append([
                "%s/%s" % (label, section),
                data["packets"] if section == "lark" else s["packets"],
                "%.0f" % s["scalar"]["packets_per_second"],
                "%.0f" % s["batch"]["packets_per_second"],
                "%.2fx" % s["speedup"],
                "yes" if s["reports_match"] else "NO",
            ])
    emit_table(
        "Fast path: scalar vs batch throughput",
        ["path", "packets", "scalar pkts/s", "batch pkts/s", "speedup",
         "match"],
        rows,
    )

    payload = {
        "packets": PACKETS,
        "users": USERS,
        "batch_size": BATCH_SIZE,
        "shards": SHARDS,
        "periodical": result,
        "per_packet": per_packet,
    }
    with open(_JSON_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    attach(
        benchmark,
        lark_speedup=result["lark"]["speedup"],
        agg_speedup=result["agg"]["speedup"],
        per_packet_lark_speedup=per_packet["lark"]["speedup"],
        json_path=_JSON_PATH,
    )

    assert result["lark"]["reports_match"]
    assert result["agg"]["reports_match"]
    assert per_packet["lark"]["reports_match"]
    # The acceptance bar: batched throughput at least 5x scalar on the
    # 100k-packet periodical run.
    assert result["lark"]["speedup"] >= 5.0, (
        "expected >= 5x, measured %.2fx" % result["lark"]["speedup"]
    )
