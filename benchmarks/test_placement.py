"""Skew-aware placement: rebalanced shard load and elastic identity.

Drives :func:`repro.testbed.placement_bench.run_placement_bench`:
synthetic uniform/zipfian populations at 100k users measure how far
epoch-boundary rebalancing pulls the ``max/mean`` shard load below the
static ``crc32 % shards`` baseline, a supervised zipfian run proves
the elastic runtime (with and without a scripted crash) stays
byte-identical to the static one, and the scalar vs vectorized
partition paths race on one CID stream.  The artifact lands in
``BENCH_placement.json`` at the repo root.

Acceptance (hard assertions):

* zipfian rebalanced imbalance ``<= 1.15`` and strictly below static;
* rebalanced and crashed elastic runs match the static reports;
* the vectorized partition output is identical to the scalar loop.

Run directly:
``PYTHONPATH=src python -m pytest benchmarks/test_placement.py -s``
"""

import json
import os

from conftest import attach, emit_table
from repro.testbed.placement_bench import run_placement_bench

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_JSON_PATH = os.path.join(_REPO_ROOT, "BENCH_placement.json")


def test_placement(benchmark):
    """Headline: zipfian skew relief with byte-identical reports."""
    result = benchmark.pedantic(
        run_placement_bench,
        rounds=1,
        iterations=1,
    )

    rows = []
    for distribution in ("uniform", "zipfian"):
        cell = result["skew"][distribution]
        rows.append([
            distribution,
            "%.3f" % cell["static_imbalance"],
            "%.3f" % cell["rebalanced_imbalance"],
            cell["rebalances"],
            cell["moved_buckets"],
            "%.1f us" % (cell["epoch_barrier_s"]["mean"] * 1e6),
        ])
    emit_table(
        "Shard-load imbalance, static vs rebalanced (%d users, "
        "%d shards x %d buckets)"
        % (result["users"], result["shards"], result["buckets"]),
        ["distribution", "static max/mean", "rebalanced", "rebalances",
         "moved buckets", "barrier"],
        rows,
    )
    partition = result["partition"]
    emit_table(
        "Partition path (%d packets)" % partition["packets"],
        ["path", "pkts/s"],
        [
            ["scalar", "%.0f" % partition["scalar_packets_per_s"]],
            ["columnar", "%.0f" % partition["columnar_packets_per_s"]],
            ["speedup", "%.2fx" % partition["speedup"]],
        ],
    )

    with open(_JSON_PATH, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    attach(
        benchmark,
        zipfian_static=result["skew"]["zipfian"]["static_imbalance"],
        zipfian_rebalanced=(
            result["skew"]["zipfian"]["rebalanced_imbalance"]
        ),
        partition_speedup=partition["speedup"],
        all_match=result["all_match"],
        json_path=_JSON_PATH,
    )

    # Acceptance bar: rebalancing pulls the zipfian skew under 1.15.
    assert result["zipfian_balanced"]
    assert (
        result["skew"]["zipfian"]["rebalanced_imbalance"]
        < result["skew"]["zipfian"]["static_imbalance"]
    )
    # Differential proof: moving buckets between epochs (and crashing
    # mid-rebalance) changes nothing observable.
    assert result["verify"]["reports_match"]
    assert result["verify"]["crashes"] >= 1
    # The vectorized partition is a pure speedup, not a fork.
    assert result["partition"]["identical"]
