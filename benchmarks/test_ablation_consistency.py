"""Ablation: the section-4.3 versioning scheme vs naive rekeying.

Sweeps the controller->AggSwitch RPC skew and measures the fraction of
requests lost during a key rotation under (a) naive in-place rekeying
and (b) the paper's versioned update.  Versioning loses nothing at any
skew; naive rekeying loses everything inside the skew window.
"""

import random

from conftest import attach, emit_table

from repro.core.aggswitch import AggSwitch
from repro.core.larkswitch import LarkSwitch
from repro.core.rpc import RpcBus
from repro.core.schema import CookieSchema, Feature
from repro.core.stats import StatKind, StatSpec
from repro.core.transport_cookie import TransportCookieCodec

OLD_KEY = bytes(range(16))
NEW_KEY = bytes(range(16, 32))
APP, NEW_APP = 0x42, 0x43
REQUESTS = 40
HORIZON_MS = 400.0


def _schema():
    return CookieSchema(
        "ads", (Feature.categorical("gender", ["f", "m", "x"]),)
    )


def _specs():
    return [StatSpec("by_gender", StatKind.COUNT_BY_CLASS, "gender")]


def _run_rotation(agg_delay_ms: float, versioned: bool) -> float:
    """Returns the fraction of requests whose data was lost."""
    lark = LarkSwitch("lark", random.Random(1))
    lark.register_application(APP, _schema(), OLD_KEY, _specs())
    agg = AggSwitch("agg", random.Random(2))
    agg.register_application(APP, _schema(), OLD_KEY, _specs())
    bus = RpcBus(default_delay_ms=10)
    bus.register_device("lark", lark, delay_ms=10)
    bus.register_device("agg", agg, delay_ms=agg_delay_ms)

    if versioned:
        bus.call("agg", "register_application", NEW_APP, _schema(),
                 NEW_KEY, _specs())
        bus.sim.schedule_at(
            agg_delay_ms + 5,
            lambda: bus.call("lark", "register_application", NEW_APP,
                             _schema(), NEW_KEY, _specs()),
        )
    else:
        bus.call("lark", "rekey_application", APP, NEW_KEY)
        bus.call("agg", "rekey_application", APP, NEW_KEY)

    lost = [0]
    merged = [0]
    for i in range(REQUESTS):
        at_ms = (i + 1) * HORIZON_MS / (REQUESTS + 1)

        def fire(at_ms=at_ms):
            # Users hold whichever cookie version their last response
            # planted; under versioning the old version keeps working,
            # so model users still on OLD_KEY/APP.  Under naive rekey
            # the lark itself re-encodes with its *current* key.
            if versioned:
                codec = TransportCookieCodec(
                    APP, _schema(), OLD_KEY, random.Random(5)
                )
            else:
                current_key = (
                    NEW_KEY if bus.sim.now >= bus.delay_to("lark")
                    else OLD_KEY
                )
                codec = TransportCookieCodec(
                    APP, _schema(), current_key, random.Random(5)
                )
            result = lark.process_quic_packet(codec.encode({"gender": "f"}))
            if result.aggregation_payload is None:
                lost[0] += 1
                return
            if agg.process_packet(result.aggregation_payload).merged:
                merged[0] += 1
            else:
                lost[0] += 1

        bus.sim.schedule_at(at_ms, fire)
    bus.quiesce()
    return lost[0] / REQUESTS


def test_ablation_versioned_vs_naive_rotation(benchmark):
    def compute():
        rows = []
        for skew in (50, 120, 250):
            rows.append(
                (
                    skew,
                    _run_rotation(skew, versioned=False),
                    _run_rotation(skew, versioned=True),
                )
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit_table(
        "Ablation: data lost during key rotation (fraction of %d requests)"
        % REQUESTS,
        ["agg RPC skew ms", "naive rekey", "versioned update"],
        [
            [skew, "%.0f%%" % (100 * naive), "%.0f%%" % (100 * versioned)]
            for skew, naive, versioned in rows
        ],
    )
    attach(benchmark, rows=[list(map(float, r)) for r in rows])
    for skew, naive, versioned in rows:
        assert versioned == 0.0
        assert naive > 0.0
    # Larger skew windows lose more under the naive scheme.
    naive_series = [naive for _s, naive, _v in rows]
    assert naive_series == sorted(naive_series)
