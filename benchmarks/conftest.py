"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper and
prints the rows/series the paper reports (run with ``-s`` to see them;
they are also attached as ``extra_info`` on the benchmark record).
Expensive discrete-event runs use ``benchmark.pedantic`` with a single
round so wall-clock stays reasonable.
"""

from typing import Any, Dict, Iterable, List, Sequence

from repro.obs import MetricsRegistry, render_table


def emit_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
) -> List[List[str]]:
    """Print a paper-style table; returns the stringified rows."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered
        else len(headers[i])
        for i in range(len(headers))
    ]
    print("\n== %s ==" % title)
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rendered:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return rendered


def attach(benchmark, **info: Any) -> None:
    """Record reproduction numbers on the benchmark for the JSON output."""
    for key, value in info.items():
        benchmark.extra_info[key] = value


def emit_metrics(
    benchmark, registry: MetricsRegistry, title: str = "metrics"
) -> List[Dict[str, Any]]:
    """Print a registry's metrics table next to the timing output and
    attach the full snapshot to the benchmark record, so every
    benchmark JSON carries the observability series of the run it
    timed."""
    print("\n== %s ==" % title)
    print(render_table(registry))
    snapshot = registry.snapshot()
    benchmark.extra_info["metrics"] = snapshot
    return snapshot
