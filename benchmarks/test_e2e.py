"""End-to-end ingest throughput: whole-run events/sec per backend.

Unlike ``benchmarks/test_columnar.py`` (switch kernels on a pre-built
CID stream), this drives the *entire* ingest pipeline per backend —
event generation, cookie encode (cached for batch/columnar), lark,
agg, verification — via ``repro.testbed.pipeline.StreamingPipeline``,
and records the comparison into ``BENCH_e2e.json`` at the repo root.
The scalar backend is the pre-optimization baseline (uncached
per-event encode, per-packet switches), so ``speedup_vs_scalar`` is
the honest whole-run win.

Run directly: ``PYTHONPATH=src python -m pytest benchmarks/test_e2e.py -s``
"""

import json
import os

from conftest import attach, emit_table
from repro.switch.columns import numpy_enabled
from repro.testbed.e2e_bench import E2E_BACKENDS, run_e2e_bench

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_JSON_PATH = os.path.join(_REPO_ROOT, "BENCH_e2e.json")

RPS = 20_000.0
DURATION_MS = 1000.0
USERS = 2000
BATCH_SIZE = 1024
REPEATS = 3

# The ISSUE-5 acceptance bar is >= 5x locally; CI runners are noisy
# and heterogeneous, so the blocking assertion uses a safety margin.
CI_SPEEDUP_FLOOR = 3.0


def test_e2e_ingest(benchmark):
    """Headline: whole-run fast path >= 5x scalar (3x asserted)."""
    result = benchmark.pedantic(
        run_e2e_bench,
        kwargs=dict(
            requests_per_second=RPS,
            duration_ms=DURATION_MS,
            num_users=USERS,
            batch_size=BATCH_SIZE,
            repeats=REPEATS,
        ),
        rounds=1,
        iterations=1,
    )

    ran = result.get("backends", E2E_BACKENDS)
    emit_table(
        "End-to-end ingest: whole-run events/sec",
        ["backend", "events/s", "vs scalar"],
        [
            [b, "%.0f" % result[b]["events_per_second"],
             "%.2fx" % result["speedup_vs_scalar"][b]]
            for b in ran
        ],
    )

    payload = dict(result)
    payload["numpy"] = numpy_enabled()
    with open(_JSON_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    attach(
        benchmark,
        batch_vs_scalar=result["speedup_vs_scalar"]["batch"],
        columnar_vs_scalar=result["speedup_vs_scalar"]["columnar"],
        persistent_vs_scalar=result["speedup_vs_scalar"].get("persistent"),
        events=result["events"],
        json_path=_JSON_PATH,
    )

    assert result["reports_match"], "backends produced different reports"
    assert result["verified"], "report disagrees with workload ground truth"
    if not numpy_enabled():
        # Without numpy the cookie cache and the batch dispatch still
        # help, but the vectorized kernels fall back to scalar loops;
        # identity holds but the speedup bar is numpy-path-only.
        return
    best = max(
        result["speedup_vs_scalar"][b] for b in ran if b != "scalar"
    )
    assert best >= CI_SPEEDUP_FLOOR, (
        "expected a fast-path backend >= %.1fx scalar e2e, measured %.2fx"
        % (CI_SPEEDUP_FLOOR, best)
    )
