"""Appendix B.2: transport-layer cookie carriers compared.

IPv6 LSBs (64 bits, root privileges), TCP timestamps (32 bits, dies
with the connection), QUIC connection IDs (160 bits, userspace): only
QUIC satisfies Snatch's requirements.  This bench makes the capacity
dimension concrete: how many sub-cookies of the ad-campaign schema fit
each carrier.
"""

import random

from conftest import attach, emit_table

from repro.core.alt_carriers import (
    Ipv6Carrier,
    TcpTimestampCarrier,
    carrier_comparison,
)
from repro.core.schema import CookieSchema, Feature

KEY = bytes(range(16))


def _demo_schema():
    """A realistic multi-application feature set: rich enough that the
    32- and 64-bit carriers cannot hold it all."""
    return CookieSchema(
        "demo",
        (
            Feature.categorical("event", ["view", "click"]),
            Feature.categorical("campaign", ["c%d" % i for i in range(64)]),
            Feature.number("visits", 0, 4095),
            Feature.number("dwell", 0, 240),
            Feature.categorical("region", ["r%d" % i for i in range(16)]),
            Feature.categorical("gender", ["f", "m", "x"]),
            Feature.number("history", 0, 2**26 - 1),
        ),
    )


def _fit(features, budget_bits):
    """How many leading features (bitmap + stack) fit the budget."""
    used = 0
    count = 0
    for feature in features:
        cost = 1 + feature.bits
        if used + cost > budget_bits:
            break
        used += cost
        count += 1
    return count, used


def _compute():
    schema = _demo_schema()
    rows = []
    for profile in carrier_comparison():
        count, used = _fit(schema.features, profile.cookie_bits
                           if profile.name != "quic-connection-id" else 128)
        rows.append((profile, count, used))
    return schema, rows


def test_appendix_b2_carrier_capacity(benchmark):
    schema, rows = benchmark(_compute)

    emit_table(
        "Appendix B.2: carriers vs a rich feature set (%d features, "
        "%d bits)" % (len(schema.features), schema.total_bits),
        ["carrier", "budget bits", "features fitting", "bits used",
         "reconnect", "suitable"],
        [
            [
                profile.name,
                profile.cookie_bits,
                count,
                used,
                "yes" if profile.survives_reconnect else "no",
                "yes" if profile.suitable_for_snatch else "no",
            ]
            for profile, count, used in rows
        ],
    )
    fits = {profile.name: count for profile, count, _used in rows}
    attach(benchmark, **{k.replace("-", "_"): v for k, v in fits.items()})
    # Only the QUIC carrier fits the full schema.
    assert fits["quic-connection-id"] == len(schema.features)
    assert fits["ipv6-lsb"] < len(schema.features)
    assert fits["tcp-timestamp"] < fits["ipv6-lsb"]

    # And the two rejected carriers actually round-trip what little
    # they can carry (the implementations are real).
    small = CookieSchema("s", schema.features[:2])
    v6 = Ipv6Carrier(small, KEY, rng=random.Random(1))
    values = {"event": "click", "campaign": "c3"}
    assert v6.decode(v6.encode(values)) == values
    tcp = TcpTimestampCarrier(small, KEY, rng=random.Random(2))
    tcp.open_connection()
    assert tcp.decode(tcp.encode(values)) == values
