"""Figure 9(a): AWS intra-/inter-data-center delay matrix.

Paper: delays range 0.8 ms (intra) to 206 ms (ap-southeast-2 to
af-south-1); inter-DC median 75.5 ms worldwide, 26.3 ms in the US.
"""

from conftest import attach, emit_table

from repro.measurement.interdc import (
    AWS_REGIONS,
    US_REGIONS,
    matrix_stats,
    region_delay_ms,
)

SHOW_REGIONS = (
    "us-east-1", "us-west-2", "eu-west-1", "sa-east-1",
    "af-south-1", "ap-south-1", "ap-southeast-2",
)


def _compute():
    world = matrix_stats()
    us = matrix_stats(US_REGIONS)
    sample = [
        [a] + [region_delay_ms(a, b) for b in SHOW_REGIONS]
        for a in SHOW_REGIONS
    ]
    return world, us, sample


def test_fig9a_interdc_matrix(benchmark):
    world, us, sample = benchmark(_compute)

    emit_table(
        "Figure 9(a): inter-DC delays (ms), sample of %d regions"
        % len(AWS_REGIONS),
        ["region"] + [r.split("-")[0] + "-" + r.split("-")[-1]
                      for r in SHOW_REGIONS],
        sample,
    )
    emit_table(
        "Summary",
        ["scope", "min", "median", "max", "paper"],
        [
            ["worldwide", world["min"], world["median"], world["max"],
             "4.7 / 75.5 / 206"],
            ["US", us["min"], us["median"], us["max"], "median 26.3"],
        ],
    )
    attach(benchmark, **{("world_" + k): v for k, v in world.items()})
    assert world["min"] == 4.7
    assert world["max"] == 206.0
    assert abs(world["median"] - 75.5) < 2.0
    assert abs(us["median"] - 26.3) < 9.0
    assert region_delay_ms("us-east-1", "us-east-1") == 0.8
