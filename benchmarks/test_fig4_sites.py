"""Figure 4: measurement-site census (2,253 dVPN nodes, 87 countries;
US most sites, then UK and Germany)."""

from conftest import attach, emit_table

from repro.measurement.sites import generate_sites


def test_fig4_site_census(benchmark):
    census = benchmark(generate_sites)

    top = census.top_countries(10)
    emit_table(
        "Figure 4: per-country measurement sites (top 10)",
        ["country", "sites"],
        top,
    )
    attach(
        benchmark,
        total_sites=len(census.sites),
        countries=census.countries(),
        top3=[c for c, _n in top[:3]],
    )
    assert len(census.sites) == 2253
    assert census.countries() == 87
    assert [c for c, _n in top[:3]] == ["US", "GB", "DE"]
