"""Ablation benches for the design choices the paper calls out.

* **AES on the switch** (section 4.1): the ~0.1 ms per-cookie decrypt
  is charged in the pipeline; how much of the Snatch path is it?
* **Bloom-filter dedup** (Appendix B.4): repeated requests within one
  period double-count without the filter and do not with it.
* **UDP aggregation packets** (Appendix B.3): the paper argues <0.01 %
  WAN loss costs almost nothing; quantify aggregate error vs loss.
* **Stage budget vs offload depth** (section 6): fewer stages per
  application means less of the query runs in-network.
"""

import random

from conftest import attach, emit_table

from repro.core.aggregation import ForwardingMode
from repro.core.insa import InsaPlanner, PlanOp
from repro.core.larkswitch import LarkSwitch
from repro.core.schema import CookieSchema, Feature
from repro.core.stats import StatKind, StatSpec
from repro.core.transport_cookie import TransportCookieCodec
from repro.switch.pipeline import AES_PASS_LATENCY_MS, LINE_RATE_LATENCY_MS

KEY = bytes(range(16))
APP = 0x42


def _schema():
    return CookieSchema(
        "app",
        (
            Feature.categorical("gender", ["f", "m", "x"]),
            Feature.number("demand", 0, 100),
        ),
    )


def _specs():
    return [
        StatSpec("by_gender", StatKind.COUNT_BY_CLASS, "gender"),
        StatSpec("demand_sum", StatKind.SUM, "demand"),
    ]


def test_ablation_aes_cost_share(benchmark):
    """AES decode dominates switch latency but is negligible against
    any propagation delay on the Snatch path (~60 ms at the median)."""

    def compute():
        lark = LarkSwitch("lark", random.Random(1))
        lark.register_application(APP, _schema(), KEY, _specs())
        codec = TransportCookieCodec(APP, _schema(), KEY, random.Random(2))
        result = lark.process_quic_packet(codec.encode({"gender": "f"}))
        return result.latency_ms

    latency = benchmark(compute)
    snatch_path_ms = 60.3  # median Trans-1RTT + INSA total
    emit_table(
        "Ablation: AES share of switch latency",
        ["component", "ms", "share of Snatch path"],
        [
            ["line-rate forward", LINE_RATE_LATENCY_MS,
             "%.4f%%" % (100 * LINE_RATE_LATENCY_MS / snatch_path_ms)],
            ["AES-128 pass", AES_PASS_LATENCY_MS,
             "%.3f%%" % (100 * AES_PASS_LATENCY_MS / snatch_path_ms)],
            ["total switch", latency,
             "%.3f%%" % (100 * latency / snatch_path_ms)],
        ],
    )
    attach(benchmark, switch_latency_ms=latency)
    assert latency == LINE_RATE_LATENCY_MS + AES_PASS_LATENCY_MS
    assert latency / snatch_path_ms < 0.005


def test_ablation_bloom_dedup(benchmark):
    """Appendix B.4: within a period, a chatty user inflates counts
    2.5x without the Bloom filter and not at all with it."""

    def compute():
        users = 200
        repeats = 5
        outcomes = {}
        for dedup in (False, True):
            lark = LarkSwitch("lark", random.Random(3))
            lark.register_application(
                APP, _schema(), KEY, _specs(),
                mode=ForwardingMode.PERIODICAL, period_ms=100, dedup=dedup,
            )
            codec = TransportCookieCodec(
                APP, _schema(), KEY, random.Random(4)
            )
            rng = random.Random(5)
            for _user in range(users):
                cid = codec.encode(
                    {"gender": rng.choice(["f", "m", "x"]), "demand": 1}
                )
                for _ in range(repeats):
                    lark.process_quic_packet(cid)
            report = lark.stats_report(APP)
            outcomes[dedup] = sum(report["by_gender"].values())
        return users, repeats, outcomes

    users, repeats, outcomes = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    emit_table(
        "Ablation: Bloom-filter deduplication (%d users x %d requests)"
        % (users, repeats),
        ["dedup", "distinct-user count", "error"],
        [
            ["off", outcomes[False],
             "%.0f%%" % (100 * (outcomes[False] - users) / users)],
            ["on", outcomes[True],
             "%.0f%%" % (100 * (outcomes[True] - users) / users)],
        ],
    )
    attach(benchmark, without_dedup=outcomes[False], with_dedup=outcomes[True])
    assert outcomes[False] == users * repeats
    assert outcomes[True] == users


def test_ablation_udp_loss_tolerance(benchmark):
    """Appendix B.3: at WAN loss rates (<0.01 %) the aggregate error is
    negligible; even 1 % loss only shifts counts by ~1 %."""

    def compute():
        total_packets = 5000
        rows = []
        for loss_rate in (0.0001, 0.001, 0.01):
            rng = random.Random(int(loss_rate * 1e6))
            delivered = sum(
                1 for _ in range(total_packets) if rng.random() >= loss_rate
            )
            error = (total_packets - delivered) / total_packets
            rows.append((loss_rate, delivered, error))
        return total_packets, rows

    total, rows = benchmark(compute)
    emit_table(
        "Ablation: aggregate error from UDP loss (%d packets)" % total,
        ["loss rate", "delivered", "count error"],
        [
            ["%.2f%%" % (100 * rate), delivered, "%.3f%%" % (100 * error)]
            for rate, delivered, error in rows
        ],
    )
    for rate, _delivered, error in rows:
        assert error < 3 * rate + 0.002


def test_ablation_stage_budget_vs_offload(benchmark):
    """Section 6: supporting more applications shrinks each one's stage
    budget, which truncates the offloadable prefix of the query."""
    query = [
        PlanOp("filter", ("eq",)),
        PlanOp("map", ("and", "shr")),
        PlanOp("reduceByKey", ("add",)),
        PlanOp("countByValue"),
        PlanOp("reduceByKeyAndWindow", ("add",), stages_needed=2),
        PlanOp("window"),
    ]

    def compute():
        rows = []
        for budget in (1, 2, 4, 7, 12):
            plan = InsaPlanner(stage_budget=budget).plan(query)
            rows.append((budget, len(plan.offloaded), plan.offload_fraction))
        return rows

    rows = benchmark(compute)
    emit_table(
        "Ablation: stage budget vs in-network offload depth",
        ["stages/app", "ops offloaded", "offload fraction"],
        [[b, n, "%.0f%%" % (100 * f)] for b, n, f in rows],
    )
    fractions = [f for _b, _n, f in rows]
    assert fractions == sorted(fractions)
    assert fractions[0] < 0.5
    assert fractions[-1] == 1.0
