"""Property-based tests of the streaming engine's core invariants."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streaming.context import StreamingContext
from repro.streaming.rdd import RDD

events = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=499.999),  # arrival time
        st.integers(min_value=0, max_value=4),       # key
    ),
    max_size=60,
)


class TestBatchPartitioning:
    @given(events)
    @settings(max_examples=30)
    def test_every_record_lands_in_exactly_one_batch(self, records):
        ssc = StreamingContext(100)
        inp = ssc.input_stream()
        seen = []
        inp.foreachRDD(lambda rdd, i: seen.extend(rdd.collect()))
        for t, key in records:
            inp.push(key, t)
        ssc.run_batches(5)
        assert Counter(seen) == Counter(key for _t, key in records)

    @given(events)
    @settings(max_examples=30)
    def test_batch_membership_by_arrival_time(self, records):
        ssc = StreamingContext(100)
        inp = ssc.input_stream()
        per_batch = []
        inp.foreachRDD(lambda rdd, i: per_batch.append(rdd.collect()))
        for t, key in records:
            inp.push((t, key), t)
        ssc.run_batches(5)
        for index, batch in enumerate(per_batch):
            for t, _key in batch:
                assert index * 100 <= t < (index + 1) * 100


class TestWindowInvariants:
    @given(events)
    @settings(max_examples=30)
    def test_window_count_equals_sum_of_member_batches(self, records):
        ssc = StreamingContext(100)
        inp = ssc.input_stream()
        batch_counts = []
        window_counts = []
        inp.count().foreachRDD(
            lambda rdd, i: batch_counts.append(rdd.collect()[0])
        )
        inp.countByWindow(300).foreachRDD(
            lambda rdd, i: window_counts.append(rdd.collect()[0])
        )
        for t, key in records:
            inp.push(key, t)
        ssc.run_batches(5)
        for index in range(5):
            member = batch_counts[max(0, index - 2):index + 1]
            assert window_counts[index] == sum(member)

    @given(events)
    @settings(max_examples=30)
    def test_full_horizon_window_sees_everything(self, records):
        ssc = StreamingContext(100)
        inp = ssc.input_stream()
        counts = []
        inp.countByWindow(500).foreachRDD(
            lambda rdd, i: counts.append(rdd.collect()[0])
        )
        for t, key in records:
            inp.push(key, t)
        ssc.run_batches(5)
        assert counts[-1] == len(records)


class TestStatefulInvariants:
    @given(events)
    @settings(max_examples=30)
    def test_running_state_equals_batch_prefix_sums(self, records):
        ssc = StreamingContext(100)
        inp = ssc.input_stream()
        states = []
        (
            inp.map(lambda key: (key, 1))
            .updateStateByKey(lambda vals, old: (old or 0) + sum(vals))
            .foreachRDD(lambda rdd, i: states.append(dict(rdd.collect())))
        )
        for t, key in records:
            inp.push(key, t)
        ssc.run_batches(5)
        final = states[-1] if states else {}
        expected = Counter(key for _t, key in records)
        assert final == dict(expected)

    @given(events)
    @settings(max_examples=20)
    def test_reduce_by_key_and_window_matches_naive(self, records):
        ssc = StreamingContext(100)
        inp = ssc.input_stream()
        windowed = []
        (
            inp.map(lambda key: (key, 1))
            .reduceByKeyAndWindow(lambda a, b: a + b, None, 200)
            .foreachRDD(lambda rdd, i: windowed.append(dict(rdd.collect())))
        )
        for t, key in records:
            inp.push(key, t)
        ssc.run_batches(5)
        for index in range(5):
            lo, hi = (index - 1) * 100, (index + 1) * 100
            expected = Counter(
                key for t, key in records if lo <= t < hi and t >= 0
            )
            assert windowed[index] == dict(expected)
