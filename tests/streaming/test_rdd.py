"""RDD operator semantics, checked against plain-Python references."""

from collections import Counter, defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streaming.rdd import RDD

kv_lists = st.lists(
    st.tuples(st.integers(0, 5), st.integers(-10, 10)), max_size=40
)


class TestConstruction:
    def test_of_round_robins(self):
        rdd = RDD.of(range(5), num_partitions=2)
        assert rdd.num_partitions == 2
        assert sorted(rdd.collect()) == [0, 1, 2, 3, 4]

    def test_empty(self):
        assert RDD.empty(3).count() == 0
        assert RDD.empty().is_empty()

    def test_invalid_partitions(self):
        with pytest.raises(ValueError):
            RDD.of([1], num_partitions=0)

    def test_glom_exposes_partitions(self):
        rdd = RDD([[1, 2], [3]])
        assert rdd.glom().collect() == [[1, 2], [3]]


class TestElementWise:
    def test_map_filter_flatmap(self):
        rdd = RDD.of(range(6), 2)
        assert sorted(rdd.map(lambda x: x * 2).collect()) == [0, 2, 4, 6, 8, 10]
        assert sorted(rdd.filter(lambda x: x % 2 == 0).collect()) == [0, 2, 4]
        assert sorted(rdd.flat_map(lambda x: [x, x]).collect()) == sorted(
            list(range(6)) * 2
        )

    def test_map_preserves_partitioning(self):
        rdd = RDD([[1], [2, 3]])
        assert rdd.map(lambda x: x).glom().collect() == [[1], [2, 3]]

    def test_map_partitions(self):
        rdd = RDD([[1, 2], [3, 4]])
        sums = rdd.map_partitions(lambda part: [sum(part)])
        assert sums.collect() == [3, 7]

    def test_map_partitions_with_index(self):
        rdd = RDD([[1], [2]])
        out = rdd.map_partitions_with_index(lambda i, part: [(i, part)])
        assert out.collect() == [(0, [1]), (1, [2])]

    def test_keys_values(self):
        rdd = RDD.of([("a", 1), ("b", 2)])
        assert sorted(rdd.keys().collect()) == ["a", "b"]
        assert sorted(rdd.values().collect()) == [1, 2]

    def test_map_values_flat_map_values(self):
        rdd = RDD.of([("a", 2)])
        assert rdd.map_values(lambda v: v + 1).collect() == [("a", 3)]
        assert rdd.flat_map_values(lambda v: range(v)).collect() == [
            ("a", 0), ("a", 1)
        ]


class TestAggregation:
    @given(kv_lists)
    @settings(max_examples=40)
    def test_reduce_by_key_matches_reference(self, pairs):
        rdd = RDD.of(pairs, 3)
        expected = defaultdict(int)
        for k, v in pairs:
            expected[k] += v
        assert dict(rdd.reduce_by_key(lambda a, b: a + b).collect()) == dict(
            expected
        )

    @given(kv_lists)
    @settings(max_examples=40)
    def test_group_by_key_matches_reference(self, pairs):
        rdd = RDD.of(pairs, 2)
        expected = defaultdict(list)
        for k, v in pairs:
            expected[k].append(v)
        got = {k: sorted(v) for k, v in rdd.group_by_key().collect()}
        assert got == {k: sorted(v) for k, v in expected.items()}

    def test_combine_by_key_two_phase(self):
        rdd = RDD.of([("a", 1), ("a", 2), ("b", 5)], 2)
        # Average via (sum, count) combiners.
        combined = rdd.combine_by_key(
            lambda v: (v, 1),
            lambda c, v: (c[0] + v, c[1] + 1),
            lambda c1, c2: (c1[0] + c2[0], c1[1] + c2[1]),
        )
        result = dict(combined.collect())
        assert result == {"a": (3, 2), "b": (5, 1)}

    @given(st.lists(st.integers(-5, 5), min_size=1, max_size=30))
    def test_reduce(self, values):
        assert RDD.of(values, 2).reduce(lambda a, b: a + b) == sum(values)

    def test_reduce_empty_raises(self):
        with pytest.raises(ValueError):
            RDD.empty().reduce(lambda a, b: a)

    def test_fold(self):
        assert RDD.of([1, 2, 3]).fold(10, lambda a, b: a + b) == 16

    @given(st.lists(st.integers(0, 3), max_size=30))
    def test_count_by_value(self, values):
        assert RDD.of(values, 2).count_by_value() == dict(Counter(values))

    def test_update_state_by_key(self):
        state = {}
        rdd = RDD.of([("a", 1), ("a", 2), ("b", 3)])
        out, state = rdd.update_state_by_key(
            lambda vals, old: (old or 0) + sum(vals), state
        )
        assert dict(out.collect()) == {"a": 3, "b": 3}
        rdd2 = RDD.of([("a", 10)])
        out2, state = rdd2.update_state_by_key(
            lambda vals, old: (old or 0) + sum(vals), state
        )
        assert dict(out2.collect()) == {"a": 13, "b": 3}

    def test_update_state_drops_none(self):
        state = {"a": 1, "b": 2}
        out, new_state = RDD.empty().update_state_by_key(
            lambda vals, old: None if old == 1 else old, state
        )
        assert new_state == {"b": 2}


class TestJoins:
    LEFT = [("k", 1), ("k", 2), ("l", 3)]
    RIGHT = [("k", 9), ("m", 8)]

    def test_inner_join(self):
        got = RDD.of(self.LEFT).join(RDD.of(self.RIGHT)).collect()
        assert sorted(got) == [("k", (1, 9)), ("k", (2, 9))]

    def test_left_outer(self):
        got = RDD.of(self.LEFT).left_outer_join(RDD.of(self.RIGHT)).collect()
        assert ("l", (3, None)) in got and ("k", (1, 9)) in got
        assert all(k != "m" for k, _ in got)

    def test_right_outer(self):
        got = RDD.of(self.LEFT).right_outer_join(RDD.of(self.RIGHT)).collect()
        assert ("m", (None, 8)) in got
        assert all(k != "l" for k, _ in got)

    def test_full_outer(self):
        got = RDD.of(self.LEFT).full_outer_join(RDD.of(self.RIGHT)).collect()
        assert ("l", (3, None)) in got and ("m", (None, 8)) in got

    def test_cogroup(self):
        got = dict(RDD.of(self.LEFT).cogroup(RDD.of(self.RIGHT)).collect())
        assert got["k"] == ([1, 2], [9])
        assert got["l"] == ([3], [])
        assert got["m"] == ([], [8])

    def test_union(self):
        union = RDD.of([1]).union(RDD.of([2]))
        assert sorted(union.collect()) == [1, 2]
        assert union.num_partitions == 2


class TestPartitioning:
    def test_partition_by(self):
        rdd = RDD.of([("a", 1), ("b", 2), ("c", 3)])
        out = rdd.partition_by(2, partition_fn=lambda k: ord(k))
        assert out.num_partitions == 2
        assert sorted(out.collect()) == [("a", 1), ("b", 2), ("c", 3)]

    def test_repartition(self):
        rdd = RDD.of(range(10), 1).repartition(4)
        assert rdd.num_partitions == 4
        assert sorted(rdd.collect()) == list(range(10))

    def test_invalid(self):
        with pytest.raises(ValueError):
            RDD.of([("a", 1)]).partition_by(0)


class TestActions:
    def test_take_and_foreach(self):
        rdd = RDD.of(range(10), 2)
        assert len(rdd.take(3)) == 3
        seen = []
        rdd.foreach(seen.append)
        assert sorted(seen) == list(range(10))

    def test_repr(self):
        assert "2 partitions" in repr(RDD.of(range(4), 2))
