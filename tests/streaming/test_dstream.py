"""DStream method surface (the engine behind Table 1)."""

import pytest

from repro.streaming.context import StreamingContext
from repro.streaming.rdd import RDD


def _ctx(interval=100.0):
    ssc = StreamingContext(batch_interval_ms=interval)
    return ssc, ssc.input_stream()


def _collecting(stream):
    out = []
    stream.foreachRDD(lambda rdd, i: out.append(sorted(
        rdd.collect(), key=repr
    )))
    return out


class TestForeachCategory:
    def test_map_filter_flatmap(self):
        ssc, inp = _ctx()
        out = _collecting(
            inp.map(lambda x: x + 1).filter(lambda x: x % 2 == 0)
        )
        inp.push_all([1, 2, 3, 4], 10)
        ssc.run_batch()
        assert out == [[2, 4]]

    def test_flatmap(self):
        ssc, inp = _ctx()
        out = _collecting(inp.flatMap(lambda x: [x] * x))
        inp.push(2, 0)
        ssc.run_batch()
        assert out == [[2, 2]]

    def test_map_values_and_flat_map_values(self):
        ssc, inp = _ctx()
        out = _collecting(inp.mapValues(lambda v: v * 10))
        out2 = _collecting(inp.flatMapValues(lambda v: [v, -v]))
        inp.push(("a", 1), 0)
        ssc.run_batch()
        assert out == [[("a", 10)]]
        assert out2 == [[("a", -1), ("a", 1)]]

    def test_map_partitions(self):
        ssc = StreamingContext(100)
        inp = ssc.input_stream(num_partitions=2)
        out = _collecting(inp.mapPartitions(lambda part: [len(part)]))
        inp.push_all(range(5), 0)
        ssc.run_batch()
        assert out == [[2, 3]]

    def test_map_partitions_with_index(self):
        ssc = StreamingContext(100)
        inp = ssc.input_stream(num_partitions=2)
        out = _collecting(
            inp.mapPartitionsWithIndex(lambda i, part: [i])
        )
        inp.push_all(range(2), 0)
        ssc.run_batch()
        assert out == [[0, 1]]

    def test_transform_with_and_without_time(self):
        ssc, inp = _ctx()
        out = _collecting(inp.transform(lambda rdd: rdd.map(lambda x: -x)))
        times = []

        def with_time(time_ms, rdd):
            times.append(time_ms)
            return rdd

        out2 = _collecting(inp.transform(with_time))
        inp.push(5, 0)
        ssc.run_batch()
        assert out == [[-5]]
        assert out2 == [[5]]
        assert times == [100.0]

    def test_transform_with_other_stream(self):
        ssc = StreamingContext(100)
        a = ssc.input_stream()
        b = ssc.input_stream()
        out = _collecting(a.transformWith(lambda x, y: x.union(y), b))
        a.push(1, 0)
        b.push(2, 0)
        ssc.run_batch()
        assert out == [[1, 2]]

    def test_combine_by_key(self):
        ssc, inp = _ctx()
        out = _collecting(
            inp.combineByKey(
                lambda v: v,
                lambda c, v: c + v,
                lambda c1, c2: c1 + c2,
            )
        )
        inp.push_all([("a", 1), ("a", 4)], 0)
        ssc.run_batch()
        assert out == [[("a", 5)]]

    def test_update_state_by_key_across_batches(self):
        ssc, inp = _ctx()
        out = _collecting(
            inp.map(lambda x: (x, 1)).updateStateByKey(
                lambda vals, old: (old or 0) + sum(vals)
            )
        )
        inp.push("u", 10)
        inp.push("u", 150)
        inp.push("v", 180)
        ssc.run_batches(2)
        assert out == [[("u", 1)], [("u", 2), ("v", 1)]]


class TestReduceCategory:
    def test_count(self):
        ssc, inp = _ctx()
        out = _collecting(inp.count())
        inp.push_all("abc", 0)
        ssc.run_batch()
        assert out == [[3]]

    def test_count_by_value(self):
        ssc, inp = _ctx()
        out = _collecting(inp.countByValue())
        inp.push_all(["x", "y", "x"], 0)
        ssc.run_batch()
        assert out == [[("x", 2), ("y", 1)]]

    def test_reduce_and_empty_batch(self):
        ssc, inp = _ctx()
        out = _collecting(inp.reduce(lambda a, b: a + b))
        inp.push_all([1, 2, 3], 0)
        ssc.run_batches(2)  # second batch is empty
        assert out == [[6], []]

    def test_reduce_by_key_and_group_by_key(self):
        ssc, inp = _ctx()
        out = _collecting(inp.reduceByKey(lambda a, b: a + b))
        out2 = _collecting(
            inp.groupByKey().mapValues(sorted)
        )
        inp.push_all([("a", 1), ("a", 2), ("b", 1)], 0)
        ssc.run_batch()
        assert out == [[("a", 3), ("b", 1)]]
        assert out2 == [[("a", [1, 2]), ("b", [1])]]


class TestWindowCategory:
    def test_window_unions_trailing_batches(self):
        ssc, inp = _ctx()
        out = _collecting(inp.window(300))
        for t in (10, 110, 210, 310):
            inp.push(t, t)
        ssc.run_batches(4)
        assert out == [[10], [10, 110], [10, 110, 210], [110, 210, 310]]

    def test_window_slide(self):
        ssc, inp = _ctx()
        out = _collecting(inp.window(200, 200))
        for t in (10, 110, 210, 310):
            inp.push(t, t)
        ssc.run_batches(4)
        # Emits only on even batch ends (200 ms slide).
        assert out == [[], [10, 110], [], [210, 310]]

    def test_count_by_window(self):
        ssc, inp = _ctx()
        out = _collecting(inp.countByWindow(200))
        for t in (10, 110, 210):
            inp.push("e", t)
        ssc.run_batches(3)
        assert out == [[1], [2], [2]]

    def test_count_by_value_and_window(self):
        ssc, inp = _ctx()
        out = _collecting(inp.countByValueAndWindow(200))
        inp.push("x", 10)
        inp.push("x", 110)
        ssc.run_batches(2)
        assert out == [[("x", 1)], [("x", 2)]]

    def test_reduce_by_window(self):
        ssc, inp = _ctx()
        out = _collecting(inp.reduceByWindow(lambda a, b: a + b, None, 200))
        inp.push(1, 10)
        inp.push(2, 110)
        ssc.run_batches(2)
        assert out == [[1], [3]]

    def test_reduce_by_key_and_window(self):
        ssc, inp = _ctx()
        out = _collecting(
            inp.reduceByKeyAndWindow(
                lambda a, b: a + b, None, windowDuration_ms=200
            )
        )
        inp.push(("k", 1), 10)
        inp.push(("k", 5), 110)
        ssc.run_batches(2)
        assert out == [[("k", 1)], [("k", 6)]]

    def test_group_by_key_and_window(self):
        ssc, inp = _ctx()
        out = _collecting(
            inp.groupByKeyAndWindow(200).mapValues(sorted)
        )
        inp.push(("k", 2), 10)
        inp.push(("k", 1), 110)
        ssc.run_batches(2)
        assert out[1] == [("k", [1, 2])]

    def test_window_requires_multiple_of_interval(self):
        ssc, inp = _ctx()
        with pytest.raises(ValueError, match="multiple"):
            inp.window(250)

    def test_slice(self):
        ssc, inp = _ctx()
        identity = inp.map(lambda x: x)
        inp.push(1, 10)
        inp.push(2, 110)
        ssc.run_batches(2)
        rdds = identity.slice(100, 200)
        assert [r.collect() for r in rdds] == [[1], [2]]


class TestJoinCategory:
    def _two(self):
        ssc = StreamingContext(100)
        return ssc, ssc.input_stream(), ssc.input_stream()

    def test_join(self):
        ssc, a, b = self._two()
        out = _collecting(a.join(b))
        a.push(("k", 1), 0)
        b.push(("k", 2), 0)
        ssc.run_batch()
        assert out == [[("k", (1, 2))]]

    def test_outer_joins(self):
        ssc, a, b = self._two()
        left = _collecting(a.leftOuterJoin(b))
        right = _collecting(a.rightOuterJoin(b))
        full = _collecting(a.fullOuterJoin(b))
        a.push(("l", 1), 0)
        b.push(("r", 2), 0)
        ssc.run_batch()
        assert left == [[("l", (1, None))]]
        assert right == [[("r", (None, 2))]]
        assert full == [[("l", (1, None)), ("r", (None, 2))]]

    def test_cogroup(self):
        ssc, a, b = self._two()
        out = _collecting(a.cogroup(b))
        a.push(("k", 1), 0)
        b.push(("k", 2), 0)
        ssc.run_batch()
        assert out == [[("k", ([1], [2]))]]

    def test_union(self):
        ssc, a, b = self._two()
        out = _collecting(a.union(b))
        a.push(1, 0)
        b.push(2, 0)
        ssc.run_batch()
        assert out == [[1, 2]]


class TestPartitionCategory:
    def test_repartition(self):
        ssc, inp = _ctx()
        counts = []
        inp.repartition(4).foreachRDD(
            lambda rdd, i: counts.append(rdd.num_partitions)
        )
        inp.push(1, 0)
        ssc.run_batch()
        assert counts == [4]

    def test_partition_by(self):
        ssc, inp = _ctx()
        out = _collecting(inp.partitionBy(2))
        inp.push(("a", 1), 0)
        ssc.run_batch()
        assert out == [[("a", 1)]]


class TestDStreamSpecific:
    def test_cache_persist_checkpoint_context(self):
        ssc, inp = _ctx()
        assert inp.cache() is inp
        assert inp.persist("MEMORY_ONLY") is inp
        assert inp.checkpoint(1000) is inp
        assert inp.context() is ssc
        with pytest.raises(ValueError):
            inp.checkpoint(0)

    def test_glom(self):
        ssc = StreamingContext(100)
        inp = ssc.input_stream(num_partitions=2)
        out = _collecting(inp.glom())
        inp.push_all([1, 2, 3], 0)
        ssc.run_batch()
        assert out == [[[1, 3], [2]]]

    def test_pprint(self, capsys):
        ssc, inp = _ctx()
        inp.pprint(num=2)
        inp.push_all(["r1", "r2", "r3"], 0)
        ssc.run_batch()
        printed = capsys.readouterr().out
        assert "Time: 100 ms" in printed
        assert "r1" in printed and "r3" not in printed

    def test_save_as_text_files(self, tmp_path):
        ssc, inp = _ctx()
        prefix = str(tmp_path / "out")
        inp.saveAsTextFiles(prefix, ".txt")
        inp.push_all(["a", "b"], 0)
        ssc.run_batch()
        saved = (tmp_path / "out-100.txt").read_text()
        assert saved == "a\nb\n"
