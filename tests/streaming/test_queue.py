"""Message broker: topics, partitions, consumer-group offsets."""

import pytest

from repro.streaming.queue import Consumer, MessageBroker, Topic


class TestTopic:
    def test_keyed_messages_stay_in_one_partition(self):
        topic = Topic("t", num_partitions=4)
        for i in range(8):
            topic.append("same-key", i, i)
        partitions = {topic._partition_for("same-key")}
        assert len(partitions) == 1
        assert topic.end_offset(partitions.pop()) == 8

    def test_unkeyed_round_robin(self):
        topic = Topic("t", num_partitions=3)
        for i in range(6):
            topic.append(None, i, i)
        assert [topic.end_offset(p) for p in range(3)] == [2, 2, 2]

    def test_offsets_are_per_partition(self):
        topic = Topic("t", num_partitions=2)
        message = topic.append(None, "v", 1.0)
        assert message.offset == 0

    def test_read_bounds(self):
        topic = Topic("t", 1)
        with pytest.raises(IndexError):
            topic.read(5, 0, 1)

    def test_invalid_partitions(self):
        with pytest.raises(ValueError):
            Topic("t", 0)


class TestBroker:
    def test_create_and_duplicate(self):
        broker = MessageBroker()
        broker.create_topic("clicks")
        with pytest.raises(ValueError):
            broker.create_topic("clicks")
        with pytest.raises(KeyError):
            broker.topic("ghost")

    def test_poll_advances_offsets(self):
        broker = MessageBroker()
        broker.create_topic("t", 2)
        for i in range(5):
            broker.publish("t", i, key=str(i), timestamp_ms=i)
        first = broker.poll("g", "t")
        assert len(first) == 5
        assert broker.poll("g", "t") == []

    def test_poll_sorted_by_timestamp(self):
        broker = MessageBroker()
        broker.create_topic("t", 3)
        for i, ts in enumerate([30, 10, 20]):
            broker.publish("t", i, key=str(i), timestamp_ms=ts)
        got = [m.timestamp_ms for m in broker.poll("g", "t")]
        assert got == [10, 20, 30]

    def test_independent_consumer_groups(self):
        broker = MessageBroker()
        broker.create_topic("t")
        broker.publish("t", "x")
        assert len(broker.poll("g1", "t")) == 1
        assert len(broker.poll("g2", "t")) == 1

    def test_lag(self):
        broker = MessageBroker()
        broker.create_topic("t", 2)
        for i in range(4):
            broker.publish("t", i, key=str(i))
        assert broker.lag("g", "t") == 4
        broker.poll("g", "t")
        assert broker.lag("g", "t") == 0

    def test_max_per_partition_limits_batch(self):
        broker = MessageBroker()
        broker.create_topic("t", 1)
        for i in range(10):
            broker.publish("t", i)
        assert len(broker.poll("g", "t", max_per_partition=4)) == 4
        assert broker.lag("g", "t") == 6


class TestConsumer:
    def test_wrapper(self):
        broker = MessageBroker()
        broker.create_topic("t")
        broker.publish("t", "v")
        consumer = Consumer(broker, "g", "t")
        assert consumer.lag() == 1
        assert [m.value for m in consumer.poll()] == ["v"]
        assert consumer.lag() == 0
