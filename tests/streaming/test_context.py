"""StreamingContext: batch timing, latency accounting, GC."""

import pytest

from repro.streaming.context import StreamingContext


class TestTiming:
    def test_batch_time(self):
        ssc = StreamingContext(150)
        assert ssc.batch_time_ms(0) == 150
        assert ssc.batch_time_ms(3) == 600

    def test_batch_index_for(self):
        ssc = StreamingContext(100)
        assert ssc.batch_index_for(0) == 0
        assert ssc.batch_index_for(99.9) == 0
        assert ssc.batch_index_for(100) == 1

    def test_result_time(self):
        ssc = StreamingContext(100, processing_time_ms=30)
        assert ssc.result_time_ms(10) == 130
        assert ssc.result_time_ms(199) == 230

    def test_expected_wait_is_half_interval(self):
        # Paper footnote 3: Spark's default 1 s interval -> 500 ms mean.
        assert StreamingContext(1000).expected_wait_ms() == 500.0

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            StreamingContext(0)


class TestExecution:
    def test_batch_info(self):
        ssc = StreamingContext(100, processing_time_ms=20)
        inp = ssc.input_stream()
        inp.push_all([1, 2, 3], 50)
        info = ssc.run_batch()
        assert info.index == 0
        assert info.num_records == 3
        assert info.result_available_ms == 120
        assert "3 records" in repr(info)

    def test_callable_processing_time(self):
        ssc = StreamingContext(100, processing_time_ms=lambda n: 5.0 * n)
        inp = ssc.input_stream()
        inp.push_all([1, 2], 0)
        info = ssc.run_batch()
        assert info.processing_ms == 10.0

    def test_run_until(self):
        ssc = StreamingContext(100)
        ssc.input_stream()
        infos = ssc.run_until(350)
        assert [i.index for i in infos] == [0, 1, 2]
        assert ssc.batches_run == 3

    def test_history_accumulates(self):
        ssc = StreamingContext(100)
        ssc.input_stream()
        ssc.run_batches(2)
        assert len(ssc.batch_history) == 2

    def test_multiple_outputs_all_fire(self):
        ssc = StreamingContext(100)
        inp = ssc.input_stream()
        a, b = [], []
        inp.foreachRDD(lambda rdd, i: a.append(rdd.count()))
        inp.map(lambda x: x).foreachRDD(lambda rdd, i: b.append(rdd.count()))
        inp.push(1, 0)
        ssc.run_batch()
        assert a == [1] and b == [1]


class TestGc:
    def test_evicts_old_batches(self):
        ssc = StreamingContext(100)
        inp = ssc.input_stream()
        stream = inp.map(lambda x: x)
        for t in range(0, 600, 100):
            inp.push(t, t)
        ssc.run_batches(6)
        ssc.gc(keep_batches=2)
        assert set(stream._cache) == {4, 5}


class TestBrokerStream:
    def test_drains_topic_per_batch(self):
        from repro.streaming.queue import MessageBroker

        broker = MessageBroker()
        broker.create_topic("clicks", num_partitions=2)
        ssc = StreamingContext(100)
        stream = ssc.broker_stream(broker, "clicks")
        out = []
        stream.foreachRDD(lambda rdd, i: out.append(sorted(rdd.collect())))
        broker.publish("clicks", "a", key="k1", timestamp_ms=10)
        broker.publish("clicks", "b", key="k2", timestamp_ms=160)
        ssc.run_batch()
        assert out == [["a"]]
        broker.publish("clicks", "c", key="k3", timestamp_ms=170)
        ssc.run_batch()
        assert out == [["a"], ["b", "c"]]

    def test_late_messages_dropped_from_past_batches(self):
        from repro.streaming.queue import MessageBroker

        broker = MessageBroker()
        broker.create_topic("t")
        ssc = StreamingContext(100)
        stream = ssc.broker_stream(broker, "t")
        counts = []
        stream.count().foreachRDD(lambda rdd, i: counts.append(rdd.collect()))
        ssc.run_batch()  # batch 0 done
        broker.publish("t", "late", timestamp_ms=10)  # belongs to batch 0
        ssc.run_batch()
        # The late record's batch already ran; it is never recounted.
        assert counts == [[0], [0]]
