"""Adversarial robustness (threat model, section 3.2).

Attackers may inject arbitrary packets, join as users to collect
cookies, or tamper with ciphertexts.  Every Snatch component must
fail *closed*: garbage is dropped or ignored, original traffic is
never disturbed, and targeted manipulation of encrypted cookies is
infeasible (bit flips scramble, they do not edit).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import AggregationCodec
from repro.core.aggswitch import AggSwitch
from repro.core.app_cookie import ApplicationCookieCodec
from repro.core.larkswitch import LarkSwitch
from repro.core.schema import CookieSchema, Feature
from repro.core.stats import StatKind, StatSpec
from repro.core.transport_cookie import TransportCookieCodec
from repro.quic.connection_id import ConnectionID
from repro.quic.packet import parse_packet

KEY = bytes(range(16))
APP = 0x42


def _schema():
    return CookieSchema(
        "app",
        (
            Feature.categorical("gender", ["f", "m", "x"]),
            Feature.number("demand", 0, 1000),
        ),
    )


def _lark():
    lark = LarkSwitch("lark", random.Random(1))
    lark.register_application(
        APP, _schema(), KEY,
        [StatSpec("by_gender", StatKind.COUNT_BY_CLASS, "gender")],
    )
    return lark


def _agg():
    agg = AggSwitch("agg", random.Random(2))
    agg.register_application(
        APP, _schema(), KEY,
        [StatSpec("by_gender", StatKind.COUNT_BY_CLASS, "gender")],
    )
    return agg


class TestPacketFuzzing:
    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=60)
    def test_quic_parser_never_crashes_unexpectedly(self, data):
        try:
            parse_packet(data)
        except ValueError:
            pass  # the only acceptable failure mode

    @given(st.binary(min_size=0, max_size=20))
    @settings(max_examples=60)
    def test_larkswitch_forwards_all_garbage_cids(self, raw):
        lark = _lark()
        result = lark.process_quic_packet(ConnectionID(raw))
        assert result.forwarded_original

    @given(st.binary(min_size=0, max_size=128))
    @settings(max_examples=60)
    def test_aggswitch_rejects_garbage_gracefully(self, data):
        agg = _agg()
        result = agg.process_packet(data)
        assert not result.merged or data[:2] == b"ZN"

    @given(st.binary(min_size=32, max_size=200))
    @settings(max_examples=40)
    def test_aggregation_codec_raises_only_valueerror(self, data):
        codec = AggregationCodec(APP, KEY, random.Random(3))
        try:
            codec.decode(data)
        except ValueError:
            pass

    @given(st.text(max_size=80))
    @settings(max_examples=40)
    def test_app_cookie_header_fuzz(self, header):
        codec = ApplicationCookieCodec(APP, _schema(), KEY, random.Random(4))
        try:
            codec.try_decode_header(header)
        except ValueError:
            pass  # malformed Cookie header syntax


class TestCiphertextTampering:
    def test_bit_flips_cannot_target_a_feature(self):
        """An attacker flipping ciphertext bits cannot steer a decoded
        value: AES diffusion scrambles the whole block, so tampered
        cookies either abort or decode to unrelated noise — across many
        attempts, no flip yields a controlled +1 on `demand`."""
        codec = TransportCookieCodec(APP, _schema(), KEY, random.Random(5))
        original = codec.encode({"gender": "f", "demand": 500})
        controlled = 0
        for bit in range(16 * 8):
            raw = bytearray(bytes(original))
            raw[2 + bit // 8] ^= 1 << (bit % 8)
            decoded = codec.try_decode(ConnectionID(bytes(raw)))
            if decoded is not None and decoded.values.get("demand") == 501:
                controlled += 1
        assert controlled == 0

    def test_replayed_cookie_is_the_only_forgery(self):
        """Without the key, the attacker's best move is replaying an
        observed cookie verbatim — which only repeats an existing,
        non-identifying data point."""
        lark = _lark()
        codec = TransportCookieCodec(APP, _schema(), KEY, random.Random(6))
        observed = codec.encode({"gender": "m", "demand": 1})
        for _ in range(5):
            result = lark.process_quic_packet(observed)
            assert result.decoded_values == {"gender": "m", "demand": 1}
        # Replays inflate one counter but cannot fabricate targeted
        # values; Bloom-filter dedup (Appendix B.4) bounds even that.
        assert lark.stats_report(APP)["by_gender"]["m"] == 5

    def test_attacker_without_key_cannot_mint_valid_cookies(self):
        """Cookies minted under a guessed key mostly abort or decode
        to uniform noise — the distribution over many attempts shows
        no control over the planted value."""
        lark = _lark()
        forger = TransportCookieCodec(
            APP, _schema(), bytes(16), random.Random(7)
        )
        target_hits = 0
        attempts = 60
        for _ in range(attempts):
            cid = forger.encode({"gender": "x", "demand": 999})
            result = lark.process_quic_packet(cid)
            if (
                result.decoded_values is not None
                and result.decoded_values.get("gender") == "x"
                and result.decoded_values.get("demand") == 999
            ):
                target_hits += 1
        assert target_hits == 0


class TestEavesdropping:
    def test_equal_profiles_are_unlinkable_on_the_wire(self):
        """Two users with identical demographics produce different
        connection IDs (random DCID + padding), so an eavesdropper
        cannot link them by cookie bytes."""
        codec = TransportCookieCodec(APP, _schema(), KEY, random.Random(8))
        values = {"gender": "f", "demand": 100}
        cids = {bytes(codec.encode(values)) for _ in range(20)}
        assert len(cids) == 20

    def test_application_cookie_hides_repetition(self):
        codec = ApplicationCookieCodec(APP, _schema(), KEY, random.Random(9))
        wires = {codec.encode({"gender": "f"})[1] for _ in range(20)}
        assert len(wires) == 20
