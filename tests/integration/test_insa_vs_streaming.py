"""The two analytics pathways must produce identical results.

INSA: LarkSwitch decodes -> AggSwitch merges -> report.
No INSA: LarkSwitch early-forwards raw semantic records -> message
queue -> micro-batch engine at the analytics server.

Same semantic cookies in, same grouped counts out — only the latency
differs.  This is the paper's core consistency claim made executable.
"""

import random

import pytest

from repro.core.aggswitch import AggSwitch
from repro.core.analytics_server import AnalyticsServer
from repro.core.larkswitch import LarkSwitch
from repro.core.stats import StatKind, StatSpec
from repro.core.transport_cookie import TransportCookieCodec
from repro.workloads.adcampaign import AdCampaignWorkload

KEY = bytes(range(16))
APP = 0x5C


@pytest.fixture()
def setup():
    workload = AdCampaignWorkload(num_users=60, num_campaigns=4, seed=17)
    schema = workload.schema()
    specs = [
        StatSpec("gender_by_campaign", StatKind.COUNT_BY_CLASS,
                 "gender", group_by="campaign"),
    ]
    lark = LarkSwitch("lark", random.Random(1))
    lark.register_application(APP, schema, KEY, specs)
    agg = AggSwitch("agg", random.Random(2))
    agg.register_application(APP, schema, KEY, specs)
    analytics = AnalyticsServer(schema, specs, batch_interval_ms=150)
    codec = TransportCookieCodec(APP, schema, KEY, random.Random(3))
    return workload, lark, agg, analytics, codec


class TestPathEquivalence:
    def test_reports_identical(self, setup):
        workload, lark, agg, analytics, codec = setup
        events = workload.generate_events(80, 2000)
        for event in events:
            values = event.user.semantic_values(
                event.campaign, event.event_type
            )
            # INSA path: through the switches.
            result = lark.process_quic_packet(codec.encode(values))
            agg.process_packet(result.aggregation_payload)
            # No-INSA path: decoded values early-forwarded to the
            # analytics server's queue.
            analytics.submit_record(result.decoded_values, event.time_ms)

        analytics.run_pending_batches(until_ms=2500)
        insa_report = agg.report(APP)["gender_by_campaign"]
        streaming_report = analytics.report()["gender_by_campaign"]
        # Identical non-zero cells.
        insa_nonzero = {k: v for k, v in insa_report.items() if v}
        assert insa_nonzero == streaming_report
        # And both equal ground truth.
        truth = workload.reference_counts(events)["gender_by_campaign"]
        assert insa_nonzero == truth

    def test_latency_gap_matches_model(self, setup):
        """The streaming path's result latency (batch boundary +
        processing) exceeds INSA's by orders of magnitude."""
        _w, _lark, _agg, analytics, _codec = setup
        arrival = 10.0
        streaming_latency = analytics.result_latency_ms(arrival) - arrival
        insa_latency = 1.0  # line-rate aggregation
        assert streaming_latency > 100 * insa_latency

    def test_streaming_path_survives_reordering(self, setup):
        """Queue partitions may deliver out of order within a batch;
        counts must not care."""
        workload, lark, _agg, analytics, codec = setup
        events = workload.generate_events(50, 140)  # all in one batch
        values_list = []
        for event in events:
            values = event.user.semantic_values(
                event.campaign, event.event_type
            )
            values_list.append((values, event.time_ms))
        for values, t in reversed(values_list):
            analytics.submit_record(values, t)
        analytics.run_pending_batches(until_ms=300)
        truth = workload.reference_counts(events)["gender_by_campaign"]
        assert analytics.report()["gender_by_campaign"] == truth
