"""Determinism: identical configurations must reproduce bit-identical
results — the property that makes a simulation study reviewable."""

from repro.core.aggregation import ForwardingMode
from repro.measurement.study import MeasurementStudy
from repro.testbed.config import Scheme, TestbedConfig
from repro.testbed.experiment import TestbedExperiment
from repro.testbed.network_testbed import NetworkTestbed
from repro.workloads.adcampaign import AdCampaignWorkload


class TestTestbedDeterminism:
    def test_chain_experiment_reproducible(self):
        config = TestbedConfig(
            scheme=Scheme.TRANS_1RTT, insa=True,
            requests_per_second=50, duration_ms=2000, seed=77,
        )
        a = TestbedExperiment(config).run()
        b = TestbedExperiment(config).run()
        assert a.latencies() == b.latencies()
        assert a.aggregated_report == b.aggregated_report
        assert a.aggregation_bytes == b.aggregation_bytes

    def test_network_testbed_reproducible(self):
        config = TestbedConfig(
            scheme=Scheme.TRANS_1RTT, insa=True,
            requests_per_second=30, duration_ms=1500, seed=78,
        )
        a = NetworkTestbed(config, agg_loss_rate=0.01).run()
        b = NetworkTestbed(config, agg_loss_rate=0.01).run()
        assert a.latencies_ms == b.latencies_ms
        assert a.lost_packets == b.lost_packets
        assert a.report == b.report

    def test_periodical_reproducible(self):
        config = TestbedConfig(
            scheme=Scheme.APP_HTTPS, insa=True,
            requests_per_second=100, duration_ms=1500,
            forwarding=ForwardingMode.PERIODICAL, period_ms=100, seed=79,
        )
        a = TestbedExperiment(config).run()
        b = TestbedExperiment(config).run()
        assert a.latencies() == b.latencies()

    def test_different_seeds_differ(self):
        base = dict(scheme=Scheme.TRANS_1RTT, insa=True,
                    requests_per_second=50, duration_ms=2000)
        a = TestbedExperiment(TestbedConfig(seed=1, **base)).run()
        b = TestbedExperiment(TestbedConfig(seed=2, **base)).run()
        assert a.records[0].event.time_ms != b.records[0].event.time_ms


class TestStudyDeterminism:
    def test_campaign_reproducible(self):
        a = MeasurementStudy(seed=11).run(max_sites=150)
        b = MeasurementStudy(seed=11).run(max_sites=150)
        assert a.summary() == b.summary()
        assert a.discarded_sites == b.discarded_sites

    def test_workload_reproducible(self):
        a = AdCampaignWorkload(seed=4).generate_events(100, 1000)
        b = AdCampaignWorkload(seed=4).generate_events(100, 1000)
        assert a == b
