"""Full-system integration: controller-provisioned deployment, QUIC
connections carrying semantic cookies, both switch tiers, and the
analytics result — plus consistency under versioned updates."""

import random

import pytest

from repro.core import (
    AggSwitch,
    Feature,
    ForwardingMode,
    LarkSwitch,
    SnatchController,
    SnatchEdgeServer,
    SnatchWebServer,
    StatKind,
    StatSpec,
)
from repro.core.app_cookie import format_cookie_header
from repro.core.transport_cookie import (
    COOKIE_BYTE_END,
    COOKIE_BYTE_START,
    TransportCookieCodec,
)
from repro.quic.connection import (
    HandshakeMode,
    QuicClient,
    QuicServer,
    SnatchConnectionIdPolicy,
)
from repro.workloads import AdCampaignWorkload


def _deployment(seed=11):
    controller = SnatchController(seed=seed)
    agg = AggSwitch("agg", random.Random(seed + 1))
    lark = LarkSwitch("lark", random.Random(seed + 2))
    edge = SnatchEdgeServer("edge", random.Random(seed + 3))
    controller.attach_agg_switch(agg)
    controller.attach_lark_switch(lark)
    controller.attach_edge_server(edge)
    return controller, agg, lark, edge


def _ad_features():
    workload = AdCampaignWorkload(num_users=20, num_campaigns=4, seed=5)
    return workload, list(workload.schema().features), workload.specs()


class TestTransportPathOverRealQuic:
    def test_cookie_flows_client_to_analytics(self):
        controller, agg, lark, _edge = _deployment()
        workload, features, specs = _ad_features()
        handle = controller.add_application("ads", features, specs)

        # The web server plants semantic DstConnID*s via QUIC.
        web = SnatchWebServer(
            handle.app_id, handle.schema, handle.key,
            lambda prev, req: req["values"], rng=random.Random(1),
        )
        quic_rng = random.Random(2)
        events = workload.generate_events(50, 1000)
        reference = workload.reference_counts(events)
        for event in events:
            values = event.user.semantic_values(
                event.campaign, event.event_type
            )
            server = QuicServer(
                "web", cid_factory=web.quic_cid_factory(values), rng=quic_rng
            )
            client = QuicClient(
                "user-%d" % event.user.user_index,
                cid_policy=SnatchConnectionIdPolicy(rng=quic_rng),
                rng=quic_rng,
            )
            connection = client.connect(server)
            # The ISP switch sees the QUIC packet's DstConnID*.
            result = lark.process_quic_packet(connection.dst_conn_id)
            assert result.forwarded_original
            out = agg.process_packet(result.aggregation_payload)
            assert out.merged

        report = agg.report(handle.app_id)
        for (campaign, gender), count in reference["gender_by_campaign"].items():
            assert report["gender_by_campaign"][(campaign, gender)] == count

    def test_1rtt_policy_preserves_cookie_across_connections(self):
        controller, _agg, lark, _edge = _deployment(seed=21)
        _workload, features, specs = _ad_features()
        handle = controller.add_application("ads", features, specs)
        codec = TransportCookieCodec(
            handle.app_id, handle.transport_schema, handle.key,
            random.Random(3),
        )
        values = {"event": "view", "campaign": "camp-1",
                  "gender": "female", "age": "25-34", "geo": "EU"}
        planted = codec.encode(values)
        policy = SnatchConnectionIdPolicy(
            cookie_start=COOKIE_BYTE_START,
            cookie_end=COOKIE_BYTE_END,
            rng=random.Random(4),
        )
        # Five fresh 1-RTT connections, each regenerating random bits.
        cid = planted
        for _ in range(5):
            cid = policy.next_initial_dcid(cid)
            result = lark.process_quic_packet(cid)
            assert result.decoded_values == values
        assert lark.stats_report(handle.app_id)["gender_by_campaign"][
            ("camp-1", "female")
        ] == 5

    def test_0rtt_replays_same_semantic_cid(self):
        controller, _agg, lark, _edge = _deployment(seed=31)
        _workload, features, specs = _ad_features()
        handle = controller.add_application("ads", features, specs)
        web = SnatchWebServer(
            handle.app_id, handle.schema, handle.key,
            lambda prev, req: {"event": "click", "campaign": "camp-0",
                               "gender": "male", "age": "35-44", "geo": "NA"},
            rng=random.Random(5),
        )
        response = web.handle_request({})
        server = QuicServer(
            "web", cid_factory=web.quic_cid_factory(response.new_values),
            rng=random.Random(6),
        )
        client = QuicClient("bob", rng=random.Random(7))
        first = client.connect(server)
        second = client.connect(server)
        assert second.mode is HandshakeMode.ZERO_RTT
        assert second.dst_conn_id == first.dst_conn_id
        result = lark.process_quic_packet(second.dst_conn_id)
        assert result.decoded_values["gender"] == "male"


class TestApplicationLayerPath:
    def test_edge_to_agg_flow(self):
        controller, agg, _lark, edge = _deployment(seed=41)
        workload, features, specs = _ad_features()
        handle = controller.add_application(
            "ads", features, specs,
            event_filter=AdCampaignWorkload.event_filter,
        )
        web = SnatchWebServer(
            handle.app_id, handle.schema, handle.key,
            lambda prev, req: req["values"], rng=random.Random(8),
        )
        events = workload.generate_events(40, 1000)
        for event in events:
            values = event.user.semantic_values(
                event.campaign, event.event_type
            )
            served = web.handle_request({"values": values})
            name, value = served.set_cookie
            result = edge.handle_request(
                {"event": event.event_type},
                format_cookie_header({name: value}),
            )
            assert result.semantic_matched and not result.filtered_out
            agg.process_packet(result.aggregation_payload)
        reference = workload.reference_counts(events)
        report = agg.report(handle.app_id)
        for key, count in reference["geo_by_campaign"].items():
            assert report["geo_by_campaign"][key] == count

    def test_event_filter_drops_non_ad_traffic(self):
        controller, _agg, _lark, edge = _deployment(seed=51)
        _workload, features, specs = _ad_features()
        handle = controller.add_application(
            "ads", features, specs,
            event_filter=AdCampaignWorkload.event_filter,
        )
        web = SnatchWebServer(
            handle.app_id, handle.schema, handle.key,
            lambda prev, req: {"event": "view", "campaign": "camp-0",
                               "gender": "other", "age": "18-24",
                               "geo": "OC"},
            rng=random.Random(9),
        )
        served = web.handle_request({})
        name, value = served.set_cookie
        result = edge.handle_request(
            {"event": "page-load"}, format_cookie_header({name: value})
        )
        assert result.filtered_out
        report = edge.stats_report(handle.app_id)
        assert all(v == 0 for v in report["gender_by_campaign"].values())


class TestVersionedConsistency:
    def test_both_versions_decodable_during_grace_period(self):
        controller, agg, lark, _edge = _deployment(seed=61)
        _workload, features, specs = _ad_features()
        old = controller.add_application("ads", features, specs)
        old_codec = TransportCookieCodec(
            old.app_id, old.transport_schema, old.key, random.Random(10)
        )
        new = controller.update_application("ads")
        new_codec = TransportCookieCodec(
            new.app_id, new.transport_schema, new.key, random.Random(11)
        )
        values = {"event": "view", "campaign": "camp-2",
                  "gender": "female", "age": "55+", "geo": "AS"}
        for codec in (old_codec, new_codec):
            result = lark.process_quic_packet(codec.encode(values))
            assert result.decoded_values == values
            assert agg.process_packet(result.aggregation_payload).merged
        # After retirement only the new version matches.
        controller.retire_old_versions()
        stale = lark.process_quic_packet(old_codec.encode(values))
        assert not stale.matched
        fresh = lark.process_quic_packet(new_codec.encode(values))
        assert fresh.decoded_values == values

    def test_forwarding_scheme_change_via_controller(self):
        controller, _agg, lark, _edge = _deployment(seed=71)
        _workload, features, specs = _ad_features()
        controller.add_application("ads", features, specs)
        handle = controller.change_forwarding(
            "ads", ForwardingMode.PERIODICAL, period_ms=150
        )
        codec = TransportCookieCodec(
            handle.app_id, handle.transport_schema, handle.key,
            random.Random(12),
        )
        result = lark.process_quic_packet(
            codec.encode({"event": "click", "campaign": "camp-0",
                          "gender": "male", "age": "18-24", "geo": "NA"})
        )
        assert result.matched
        assert result.aggregation_payload is None  # buffered for the period
        assert lark.end_period(handle.app_id) is not None


class TestPrivacyInvariants:
    def test_no_user_identifier_anywhere_on_the_wire(self):
        """The semantic CID and aggregation packets must not contain
        the user index in any byte — there is simply no identifier."""
        controller, _agg, lark, _edge = _deployment(seed=81)
        workload, features, specs = _ad_features()
        handle = controller.add_application("ads", features, specs)
        codec = TransportCookieCodec(
            handle.app_id, handle.transport_schema, handle.key,
            random.Random(13),
        )
        user = workload.users[7]
        values = user.semantic_values("camp-1", "view")
        cid = codec.encode(values)
        result = lark.process_quic_packet(cid)
        payload = result.aggregation_payload
        # Schema has no identifier feature at all.
        assert "user" not in " ".join(
            f.name for f in handle.schema.features
        )
        # And the decoded content is only demographics.
        assert set(result.decoded_values) == {
            "event", "campaign", "gender", "age", "geo"
        }
        assert payload is not None
