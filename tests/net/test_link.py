"""Links: propagation, serialization, FIFO, loss, throughput."""

import random

import pytest

from repro.net.link import Link


class TestPropagation:
    def test_pure_delay(self):
        link = Link("a", "b", delay_ms=10)
        assert link.transit_time_ms(0.0, 100) == 10

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Link("a", "b", delay_ms=-1)
        with pytest.raises(ValueError):
            Link("a", "b", 1, bandwidth_mbps=0)
        with pytest.raises(ValueError):
            Link("a", "b", 1, loss_rate=1.0)
        with pytest.raises(ValueError):
            Link("a", "b", 1, jitter_ms=-1)


class TestSerialization:
    def test_bandwidth_adds_delay(self):
        # 1 Mbps: 1250 bytes = 10 ms serialization.
        link = Link("a", "b", delay_ms=5, bandwidth_mbps=1.0)
        assert link.serialization_delay_ms(1250) == pytest.approx(10.0)
        assert link.transit_time_ms(0.0, 1250) == pytest.approx(15.0)

    def test_fifo_queueing(self):
        link = Link("a", "b", delay_ms=0, bandwidth_mbps=1.0)
        first = link.transit_time_ms(0.0, 1250)
        second = link.transit_time_ms(0.0, 1250)  # must wait for first
        assert first == pytest.approx(10.0)
        assert second == pytest.approx(20.0)

    def test_no_queue_after_idle(self):
        link = Link("a", "b", delay_ms=0, bandwidth_mbps=1.0)
        link.transit_time_ms(0.0, 1250)
        later = link.transit_time_ms(100.0, 1250)
        assert later == pytest.approx(10.0)

    def test_infinite_bandwidth_has_no_serialization(self):
        link = Link("a", "b", delay_ms=1)
        assert link.serialization_delay_ms(10**6) == 0.0


class TestLoss:
    def test_lossless_by_default(self):
        link = Link("a", "b", delay_ms=1)
        assert all(
            link.transit_time_ms(0, 100) is not None for _ in range(100)
        )

    def test_loss_rate_applies(self):
        link = Link("a", "b", 1, loss_rate=0.5, rng=random.Random(1))
        outcomes = [link.transit_time_ms(0, 100) for _ in range(400)]
        lost = sum(1 for o in outcomes if o is None)
        assert 120 < lost < 280
        assert link.packets_lost == lost
        assert link.packets_sent == 400 - lost


class TestJitter:
    def test_jitter_bounded(self):
        link = Link("a", "b", 10, jitter_ms=5, rng=random.Random(2))
        for _ in range(50):
            t = link.transit_time_ms(0, 100)
            assert 10 <= t <= 15


class TestAccounting:
    def test_bytes_and_throughput(self):
        link = Link("a", "b", 1)
        for _ in range(10):
            link.transit_time_ms(0, 125)
        assert link.bytes_sent == 1250
        # 1250 bytes over 100 ms = 100 kbps.
        assert link.throughput_kbps(100.0) == pytest.approx(100.0)

    def test_throughput_needs_positive_window(self):
        with pytest.raises(ValueError):
            Link("a", "b", 1).throughput_kbps(0)

    def test_reset_counters(self):
        link = Link("a", "b", 1)
        link.transit_time_ms(0, 100)
        link.reset_counters()
        assert link.bytes_sent == 0
        assert link.packets_sent == 0
