"""Property-based tests of the simulation substrate invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.link import Link
from repro.net.node import Node, SinkNode
from repro.net.packet import NetPacket
from repro.net.simulator import Simulator
from repro.net.topology import Network


class TestSimulatorProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1000), max_size=60))
    @settings(max_examples=40)
    def test_execution_respects_time_order(self, delays):
        sim = Simulator()
        executed = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: executed.append(d))
        sim.run()
        assert executed == sorted(executed)
        assert sim.events_executed == len(delays)

    @given(st.lists(st.floats(min_value=0.1, max_value=100), min_size=1,
                    max_size=30))
    @settings(max_examples=30)
    def test_clock_never_regresses_under_nesting(self, delays):
        sim = Simulator()
        timestamps = []

        def chain(remaining):
            timestamps.append(sim.now)
            if remaining:
                sim.schedule(remaining[0], lambda: chain(remaining[1:]))

        sim.schedule(0, lambda: chain(list(delays)))
        sim.run()
        assert timestamps == sorted(timestamps)
        assert sim.now == sum(delays)


class TestLinkProperties:
    @given(st.lists(st.integers(min_value=1, max_value=5000), min_size=1,
                    max_size=30))
    @settings(max_examples=30)
    def test_fifo_under_bandwidth_cap(self, sizes):
        """Packets handed to a capped link in order arrive in order."""
        link = Link("a", "b", delay_ms=3.0, bandwidth_mbps=0.5)
        arrivals = []
        now = 0.0
        for size in sizes:
            transit = link.transit_time_ms(now, size)
            arrivals.append(now + transit)
        assert arrivals == sorted(arrivals)

    @given(st.integers(min_value=1, max_value=10_000),
           st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=30)
    def test_serialization_formula(self, size, mbps):
        link = Link("a", "b", delay_ms=0.0, bandwidth_mbps=mbps)
        expected = size * 8 / (mbps * 1000.0)
        assert abs(link.serialization_delay_ms(size) - expected) < 1e-9


class TestNetworkProperties:
    @given(st.lists(st.floats(min_value=0, max_value=500), min_size=1,
                    max_size=25))
    @settings(max_examples=25)
    def test_every_sent_packet_arrives_exactly_once(self, send_times):
        net = Network()
        net.add_node(Node("src"))
        sink = SinkNode("dst")
        net.add_node(sink)
        net.add_link("src", "dst", delay_ms=7.0)
        for t in send_times:
            net.sim.schedule_at(
                t,
                lambda: net.nodes["src"].send(
                    NetPacket(src="src", dst="dst")
                ),
            )
        net.sim.run()
        assert len(sink.received) == len(send_times)
        ids = [p.packet_id for p in sink.received]
        assert len(set(ids)) == len(ids)

    @given(st.floats(min_value=0.1, max_value=50),
           st.floats(min_value=0.1, max_value=50),
           st.floats(min_value=0.1, max_value=50))
    @settings(max_examples=25)
    def test_path_delay_is_additive(self, d1, d2, d3):
        net = Network()
        for name in ("a", "b", "c", "d"):
            net.add_node(SinkNode(name))
        net.add_link("a", "b", d1)
        net.add_link("b", "c", d2)
        net.add_link("c", "d", d3)
        assert abs(net.path_delay_ms("a", "d") - (d1 + d2 + d3)) < 1e-9
        net.nodes["a"].send(NetPacket(src="a", dst="d"))
        net.sim.run()
        arrival = net.nodes["d"].arrival_times_ms[0]
        assert abs(arrival - (d1 + d2 + d3)) < 1e-9
