"""Network routing and tc-style delay control."""

import pytest

from repro.net.node import Node, SinkNode, SwitchNode
from repro.net.packet import NetPacket
from repro.net.topology import Network, NoRouteError


def _linear_net():
    """client - isp - edge - web, bidirectional."""
    net = Network()
    for name in ("client", "isp", "edge", "web"):
        net.add_node(SinkNode(name))
    net.add_link("client", "isp", delay_ms=1.4)
    net.add_link("isp", "edge", delay_ms=5.3)
    net.add_link("edge", "web", delay_ms=43.6)
    return net


class TestRouting:
    def test_shortest_path(self):
        net = _linear_net()
        assert net.path("client", "web") == ["client", "isp", "edge", "web"]

    def test_path_delay(self):
        net = _linear_net()
        assert net.path_delay_ms("client", "web") == pytest.approx(50.3)

    def test_no_route(self):
        net = _linear_net()
        net.add_node(SinkNode("island"))
        with pytest.raises(NoRouteError):
            net.path("client", "island")

    def test_unknown_node(self):
        with pytest.raises(KeyError):
            _linear_net().path("client", "mars")

    def test_multi_hop_delivery_through_plain_nodes(self):
        net = _linear_net()
        net.nodes["client"].send(NetPacket(src="client", dst="web"))
        net.sim.run()
        web = net.nodes["web"]
        assert web.arrival_times_ms == [pytest.approx(50.3)]
        # Intermediate plain nodes did not consume the packet.
        assert net.nodes["edge"].received == []

    def test_switch_nodes_see_transit_traffic(self):
        net = Network()
        net.add_node(SinkNode("a"))
        switch = SwitchNode("sw")
        net.add_node(switch)
        net.add_node(SinkNode("b"))
        net.add_link("a", "sw", 1)
        net.add_link("sw", "b", 1)
        net.nodes["a"].send(NetPacket(src="a", dst="b"))
        net.sim.run()
        assert switch.packets_received == 1
        assert net.nodes["b"].received

    def test_self_delivery(self):
        net = _linear_net()
        net.transmit("web", NetPacket(src="web", dst="web"))
        assert net.nodes["web"].received


class TestConstruction:
    def test_duplicate_node_rejected(self):
        net = Network()
        net.add_node(Node("a"))
        with pytest.raises(ValueError):
            net.add_node(Node("a"))

    def test_link_requires_nodes(self):
        net = Network()
        net.add_node(Node("a"))
        with pytest.raises(KeyError):
            net.add_link("a", "ghost", 1)

    def test_unidirectional_link(self):
        net = Network()
        net.add_node(SinkNode("a"))
        net.add_node(SinkNode("b"))
        net.add_link("a", "b", 1, bidirectional=False)
        assert net.path("a", "b") == ["a", "b"]
        with pytest.raises(NoRouteError):
            net.path("b", "a")

    def test_set_link_delay_like_tc(self):
        net = _linear_net()
        net.set_link_delay("edge", "web", 100.0)
        assert net.path_delay_ms("client", "web") == pytest.approx(106.7)
        assert net.link("web", "edge").delay_ms == 100.0

    def test_link_lookup(self):
        net = _linear_net()
        with pytest.raises(KeyError):
            net.link("client", "web")


class TestLossOnPath:
    def test_lost_packet_never_arrives(self):
        import random
        net = Network()
        net.add_node(SinkNode("a"))
        net.add_node(SinkNode("b"))
        link = net.add_link("a", "b", 1, bidirectional=False,
                            loss_rate=0.999, rng=random.Random(3))
        for _ in range(20):
            net.nodes["a"].send(NetPacket(src="a", dst="b"))
        net.sim.run()
        assert len(net.nodes["b"].received) == link.packets_sent
