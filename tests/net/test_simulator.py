"""Discrete-event simulator core: ordering, periodic timers, cancel."""

import pytest

from repro.net.simulator import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(30, lambda: order.append("c"))
        sim.schedule(10, lambda: order.append("a"))
        sim.schedule(20, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 30

    def test_ties_break_by_insertion(self):
        sim = Simulator()
        order = []
        sim.schedule(5, lambda: order.append(1))
        sim.schedule(5, lambda: order.append(2))
        sim.run()
        assert order == [1, 2]

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def outer():
            seen.append(sim.now)
            sim.schedule(5, lambda: seen.append(sim.now))

        sim.schedule(10, outer)
        sim.run()
        assert seen == [10, 15]

    def test_schedule_at_absolute(self):
        sim = Simulator()
        sim.schedule(5, lambda: None)
        sim.run()
        times = []
        sim.schedule_at(12, lambda: times.append(sim.now))
        sim.run()
        assert times == [12]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule(-1, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_at(5, lambda: None)

    def test_cancel(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(10, lambda: fired.append(1))
        event.cancel()
        sim.run()
        assert fired == []
        assert sim.pending() == 0

    def test_run_until_stops_and_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, lambda: fired.append(10))
        sim.schedule(50, lambda: fired.append(50))
        sim.run(until_ms=20)
        assert fired == [10]
        assert sim.now == 20
        sim.run()
        assert fired == [10, 50]

    def test_events_executed_counter(self):
        sim = Simulator()
        for _ in range(3):
            sim.schedule(1, lambda: None)
        sim.run()
        assert sim.events_executed == 3


class TestPeriodic:
    def test_fires_every_interval(self):
        sim = Simulator()
        ticks = []
        sim.schedule_periodic(10, lambda: ticks.append(sim.now), until_ms=45)
        sim.run()
        assert ticks == [10, 20, 30, 40]

    def test_custom_start(self):
        sim = Simulator()
        ticks = []
        sim.schedule_periodic(
            10, lambda: ticks.append(sim.now), start_ms=5, until_ms=30
        )
        sim.run()
        assert ticks == [5, 15, 25]

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            Simulator().schedule_periodic(0, lambda: None)

    def test_unbounded_periodic_with_run_until(self):
        sim = Simulator()
        ticks = []
        sim.schedule_periodic(7, lambda: ticks.append(sim.now))
        sim.run(until_ms=30)
        assert ticks == [7, 14, 21, 28]


class TestEdgeCases:
    def test_periodic_tick_exactly_on_until_ms_fires(self):
        """``until_ms`` is inclusive: a tick landing exactly on the
        boundary is the last one to fire."""
        sim = Simulator()
        ticks = []
        sim.schedule_periodic(10, lambda: ticks.append(sim.now), until_ms=40)
        sim.run()
        assert ticks == [10, 20, 30, 40]

    def test_periodic_starting_on_until_ms_fires_once(self):
        sim = Simulator()
        ticks = []
        sim.schedule_periodic(
            10, lambda: ticks.append(sim.now), start_ms=40, until_ms=40
        )
        sim.run()
        assert ticks == [40]

    def test_event_exactly_at_run_until_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule(20, lambda: fired.append(sim.now))
        sim.run(until_ms=20)
        assert fired == [20.0]
        assert sim.now == 20.0

    def test_cancelled_events_excluded_from_pending(self):
        sim = Simulator()
        kept = sim.schedule(10, lambda: None)
        doomed = sim.schedule(20, lambda: None)
        assert sim.pending() == 2
        doomed.cancel()
        assert sim.pending() == 1
        kept.cancel()
        assert sim.pending() == 0

    def test_run_until_fast_forwards_now_past_queued_events(self):
        """Stopping early still advances the clock to ``until_ms``;
        the queued future event survives for the next run."""
        sim = Simulator()
        fired = []
        sim.schedule(100, lambda: fired.append(sim.now))
        assert sim.run(until_ms=50) == 50.0
        assert sim.now == 50.0
        assert fired == []
        assert sim.pending() == 1
        sim.run()
        assert fired == [100.0]

    def test_run_until_on_empty_queue_advances_clock(self):
        sim = Simulator()
        assert sim.run(until_ms=75) == 75.0
        assert sim.now == 75.0
