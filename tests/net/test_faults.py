"""Seeded link fault injection (drop / duplicate / reorder / jitter)."""

import random

import pytest

from repro.net.faults import FaultModel, LinkFaultSpec, LinkFaults
from repro.net.link import Link
from repro.net.node import Node, SinkNode
from repro.net.packet import NetPacket
from repro.net.simulator import Simulator
from repro.net.topology import Network


def _packet(src="a", dst="b", size=100):
    return NetPacket(
        src=src, dst=dst, protocol="udp", size_bytes=size, payload=b"x",
        created_at_ms=0.0,
    )


class TestLinkFaultSpec:
    def test_probabilities_validated(self):
        for name in ("drop", "duplicate", "reorder"):
            with pytest.raises(ValueError):
                LinkFaultSpec(**{name: 1.5})
            with pytest.raises(ValueError):
                LinkFaultSpec(**{name: -0.1})

    def test_delays_validated(self):
        with pytest.raises(ValueError):
            LinkFaultSpec(extra_jitter_ms=-1)
        with pytest.raises(ValueError):
            LinkFaultSpec(reorder_delay_ms=-1)

    def test_default_spec_is_faultless(self):
        link = Link("a", "b", delay_ms=10)
        faults = LinkFaults(LinkFaultSpec(), random.Random(0))
        assert faults.apply(link, 10.0) == [10.0]
        assert link.packets_lost == 0


class TestLinkFaults:
    def _link(self):
        return Link("a", "b", delay_ms=10)

    def test_certain_drop(self):
        link = self._link()
        faults = LinkFaults(LinkFaultSpec(drop=1.0), random.Random(0))
        assert faults.apply(link, 10.0) == []
        assert link.packets_lost == 1

    def test_certain_duplicate(self):
        link = self._link()
        faults = LinkFaults(
            LinkFaultSpec(duplicate=1.0, duplicate_gap_ms=0.5),
            random.Random(0),
        )
        times = faults.apply(link, 10.0)
        assert times == [10.0, 10.5]
        assert link.packets_duplicated == 1

    def test_certain_reorder_inflates_transit(self):
        link = self._link()
        faults = LinkFaults(
            LinkFaultSpec(reorder=1.0, reorder_delay_ms=7.0),
            random.Random(0),
        )
        assert faults.apply(link, 10.0) == [17.0]
        assert link.packets_reordered == 1

    def test_jitter_bounded(self):
        link = self._link()
        faults = LinkFaults(
            LinkFaultSpec(extra_jitter_ms=3.0), random.Random(0)
        )
        for _ in range(50):
            (t,) = faults.apply(link, 10.0)
            assert 10.0 <= t <= 13.0

    def test_same_seed_same_sequence(self):
        spec = LinkFaultSpec(drop=0.3, duplicate=0.2, extra_jitter_ms=2.0)
        runs = []
        for _ in range(2):
            link = self._link()
            faults = LinkFaults(spec, random.Random("seed"))
            runs.append([tuple(faults.apply(link, 10.0)) for _ in range(40)])
        assert runs[0] == runs[1]


class TestFaultModel:
    def _network(self):
        sim = Simulator()
        network = Network(sim)
        network.add_node(Node("a"))
        sink = SinkNode("b")
        network.add_node(sink)
        network.add_link("a", "b", 10.0, bidirectional=False)
        return sim, network, sink

    def test_install_arms_only_existing_links(self):
        _sim, network, _sink = self._network()
        model = FaultModel(seed=1)
        model.set_link("a", "b", drop=0.5)
        model.set_link("ghost", "b", drop=0.5)
        assert model.install(network) == 1
        assert network.link("a", "b").faults is not None

    def test_certain_drop_means_nothing_arrives(self):
        sim, network, sink = self._network()
        model = FaultModel(seed=1)
        model.set_link("a", "b", drop=1.0)
        model.install(network)
        for _ in range(5):
            network.transmit("a", _packet())
        sim.run()
        assert sink.received == []
        assert network.link("a", "b").packets_lost == 5

    def test_certain_duplicate_doubles_arrivals(self):
        sim, network, sink = self._network()
        model = FaultModel(seed=1)
        model.set_link("a", "b", duplicate=1.0)
        model.install(network)
        network.transmit("a", _packet())
        sim.run()
        assert len(sink.received) == 2
        assert network.link("a", "b").packets_duplicated == 1

    def test_set_link_after_install_rearms_in_place(self):
        """Chaos scenarios flip faults on and off mid-run; the live
        LinkFaults bound to the link must see the new spec."""
        sim, network, sink = self._network()
        model = FaultModel(seed=1)
        model.set_link("a", "b", drop=1.0)
        model.install(network)
        network.transmit("a", _packet())
        sim.run()
        assert sink.received == []
        model.clear_link("a", "b")  # heal without reinstalling
        network.transmit("a", _packet())
        sim.run()
        assert len(sink.received) == 1

    def test_per_link_rngs_independent(self):
        """Arming a second link must not perturb the first link's
        fault sequence."""
        def drops(extra_link):
            model = FaultModel(seed=9)
            model.set_link("a", "b", drop=0.5)
            if extra_link:
                model.set_link("c", "d", drop=0.5)
            faults = model._rng_for("a", "b")
            link = Link("a", "b", delay_ms=1)
            process = LinkFaults(model.spec_for("a", "b"), faults)
            return [bool(process.apply(link, 1.0)) for _ in range(60)]

        assert drops(False) == drops(True)

    def test_spec_for(self):
        model = FaultModel()
        assert model.spec_for("a", "b") is None
        model.set_link("a", "b", drop=0.25)
        assert model.spec_for("a", "b").drop == 0.25
