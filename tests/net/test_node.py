"""Nodes: processing queues (the congestion model), sinks, switches."""

import pytest

from repro.net.node import Node, ProcessingNode, SinkNode, SwitchNode
from repro.net.packet import NetPacket
from repro.net.topology import Network


def _network_with(*nodes):
    net = Network()
    for node in nodes:
        net.add_node(node)
    return net


class TestSinkNode:
    def test_records_arrivals(self):
        sink = SinkNode("s")
        net = _network_with(Node("a"), sink)
        net.add_link("a", "s", delay_ms=5)
        net.nodes["a"].send(NetPacket(src="a", dst="s"))
        net.sim.run()
        assert len(sink.received) == 1
        assert sink.arrival_times_ms == [5.0]

    def test_on_receive_hook(self):
        sink = SinkNode("s")
        seen = []
        sink.on_receive = lambda pkt, t: seen.append((pkt.src, t))
        net = _network_with(Node("a"), sink)
        net.add_link("a", "s", delay_ms=1)
        net.nodes["a"].send(NetPacket(src="a", dst="s"))
        net.sim.run()
        assert seen == [("a", 1.0)]


class TestProcessingNode:
    def test_single_worker_serializes(self):
        done = []
        server = ProcessingNode(
            "srv", service_time_ms=10, workers=1,
            processor=lambda pkt, node: done.append(node.sim.now),
        )
        net = _network_with(Node("a"), server)
        net.add_link("a", "srv", delay_ms=0)
        for _ in range(3):
            net.nodes["a"].send(NetPacket(src="a", dst="srv"))
        net.sim.run()
        assert done == [10.0, 20.0, 30.0]
        assert server.completed == 3

    def test_parallel_workers(self):
        done = []
        server = ProcessingNode(
            "srv", service_time_ms=10, workers=2,
            processor=lambda pkt, node: done.append(node.sim.now),
        )
        net = _network_with(Node("a"), server)
        net.add_link("a", "srv", delay_ms=0)
        for _ in range(4):
            net.nodes["a"].send(NetPacket(src="a", dst="srv"))
        net.sim.run()
        assert done == [10.0, 10.0, 20.0, 20.0]

    def test_capacity_rps(self):
        server = ProcessingNode("srv", service_time_ms=10, workers=2)
        assert server.capacity_rps() == pytest.approx(200.0)

    def test_variable_service_time(self):
        done = []
        server = ProcessingNode(
            "srv",
            service_time_ms=lambda pkt: pkt.size_bytes / 10.0,
            processor=lambda pkt, node: done.append(node.sim.now),
        )
        net = _network_with(Node("a"), server)
        net.add_link("a", "srv", delay_ms=0)
        net.nodes["a"].send(NetPacket(src="a", dst="srv", size_bytes=50))
        net.sim.run()
        assert done == [5.0]
        with pytest.raises(ValueError):
            server.capacity_rps()

    def test_queue_waits_recorded(self):
        server = ProcessingNode("srv", service_time_ms=10, workers=1)
        net = _network_with(Node("a"), server)
        net.add_link("a", "srv", delay_ms=0)
        for _ in range(2):
            net.nodes["a"].send(NetPacket(src="a", dst="srv"))
        net.sim.run()
        assert server.queue_waits_ms == [0.0, 10.0]

    def test_queue_capacity_drops(self):
        server = ProcessingNode(
            "srv", service_time_ms=10, workers=1, queue_capacity=2
        )
        net = _network_with(Node("a"), server)
        net.add_link("a", "srv", delay_ms=0)
        for _ in range(10):
            net.nodes["a"].send(NetPacket(src="a", dst="srv"))
        net.sim.run()
        assert server.dropped > 0
        assert server.completed + server.dropped == 10

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            ProcessingNode("srv", workers=0)


class TestSwitchNode:
    def test_plain_switch_forwards(self):
        sink = SinkNode("dst")
        switch = SwitchNode("sw")
        net = _network_with(Node("src"), switch, sink)
        net.add_link("src", "sw", delay_ms=1)
        net.add_link("sw", "dst", delay_ms=2)
        net.nodes["src"].send(NetPacket(src="src", dst="dst"))
        net.sim.run()
        assert sink.arrival_times_ms == [3.0]
        assert switch.forwarded == 1

    def test_detached_node_cannot_send(self):
        node = Node("orphan")
        with pytest.raises(RuntimeError, match="not attached"):
            node.send(NetPacket(src="orphan", dst="x"))
        with pytest.raises(RuntimeError):
            node.sim


class TestNetPacket:
    def test_clone_gets_new_id(self):
        packet = NetPacket(src="a", dst="b", headers={"k": 1})
        clone = packet.clone(dst="c")
        assert clone.packet_id != packet.packet_id
        assert clone.dst == "c" and clone.src == "a"
        clone.headers["k"] = 2
        assert packet.headers["k"] == 1

    def test_size_positive(self):
        with pytest.raises(ValueError):
            NetPacket(src="a", dst="b", size_bytes=0)


class TestFailureInjection:
    def test_down_server_drops_requests(self):
        server = ProcessingNode("srv", service_time_ms=5, workers=1)
        net = _network_with(Node("a"), server)
        net.add_link("a", "srv", delay_ms=0)
        server.fail_until(recover_at_ms=50)
        for t in (10.0, 20.0, 60.0):
            net.sim.schedule_at(
                t, lambda: net.nodes["a"].send(NetPacket(src="a", dst="srv"))
            )
        net.sim.run()
        assert server.dropped == 2
        assert server.completed == 1

    def test_explicit_recover(self):
        server = ProcessingNode("srv", service_time_ms=5)
        net = _network_with(Node("a"), server)
        net.add_link("a", "srv", delay_ms=0)
        server.fail_until(recover_at_ms=1e9)
        server.recover()
        net.nodes["a"].send(NetPacket(src="a", dst="srv"))
        net.sim.run()
        assert server.completed == 1

    def test_is_down_window(self):
        server = ProcessingNode("srv")
        net = _network_with(server)
        server.fail_until(recover_at_ms=100)
        assert server.is_down(50)
        assert not server.is_down(100)
