"""Continuous degradation controller (:class:`AdaptiveBackend`).

The controller is driven here with a scripted clock and counting
backends, so every timing decision — calibration, latency-spike
degradation, cooldown re-promotion, round-robin recalibration — is
deterministic.  The three-way calibration test is the regression for
the bug where auto mode never timed the columnar path and silently
elected between scalar and batch only.
"""

import pytest

from repro.obs.registry import MetricsRegistry
from repro.testbed.executor import AdaptiveBackend


class ScriptedClock:
    """perf_counter stand-in: each _timed() call consumes one cost."""

    def __init__(self, costs):
        self.costs = list(costs)
        self.now = 0.0
        self._pending = None

    def __call__(self):
        if self._pending is None:
            # start of a timed section: advance by the next cost
            self._pending = self.costs.pop(0) if self.costs else 1.0
            return self.now
        self.now += self._pending
        self._pending = None
        return self.now


def _fns(calls):
    def make(name):
        def fn(items):
            calls.append(name)
            return list(items)

        return fn

    return make("scalar"), make("batch"), make("columnar")


def _controller(calls, costs, **kwargs):
    scalar, batch, columnar = _fns(calls)
    defaults = dict(
        mode="auto",
        calibration_rounds=1,
        min_window=2,
        window=4,
        spike_factor=2.0,
        cooldown_flushes=2,
        registry=MetricsRegistry(),
        clock=ScriptedClock(costs),
    )
    defaults.update(kwargs)
    return AdaptiveBackend(scalar, batch, columnar, **defaults)


class TestThreeWayCalibration:
    def test_auto_mode_times_all_three_candidates(self):
        """Regression: with a columnar_fn supplied, calibration must
        probe columnar too — not just scalar and batch."""
        calls = []
        # probe order is columnar, batch, scalar (higher tiers first);
        # columnar is fastest at 1.0 per item
        adaptive = _controller(calls, [1.0, 5.0, 9.0])
        for _ in range(4):
            adaptive.run([1, 2])
        assert set(calls[:3]) == {"scalar", "batch", "columnar"}
        assert adaptive.chosen == "columnar"
        assert adaptive.history[0]["reason"] == "calibration"
        assert adaptive.history[0]["to"] == "columnar"

    def test_fastest_candidate_wins_not_highest_tier(self):
        calls = []
        # columnar probe costs 9.0, batch 1.0, scalar 5.0
        adaptive = _controller(calls, [9.0, 1.0, 5.0])
        for _ in range(4):
            adaptive.run([1, 2])
        assert adaptive.chosen == "batch"

    def test_without_columnar_fn_candidates_are_batch_and_scalar(self):
        calls = []

        def make(name):
            def fn(items):
                calls.append(name)
                return list(items)

            return fn

        adaptive = AdaptiveBackend(
            make("scalar"),
            make("batch"),
            mode="auto",
            calibration_rounds=1,
            registry=MetricsRegistry(),
            clock=ScriptedClock([1.0, 5.0]),
        )
        for _ in range(3):
            adaptive.run([1])
        assert "columnar" not in calls
        assert adaptive.chosen == "batch"

    def test_fixed_modes_bypass_measurement(self):
        calls = []
        scalar, batch, columnar = _fns(calls)
        adaptive = AdaptiveBackend(
            scalar, batch, columnar, mode="columnar",
            registry=MetricsRegistry(),
        )
        adaptive.run([1, 2, 3])
        assert calls == ["columnar"]
        assert adaptive.chosen == "columnar"
        assert adaptive.history == []

    def test_unknown_mode_rejected(self):
        calls = []
        scalar, batch, columnar = _fns(calls)
        with pytest.raises(ValueError):
            AdaptiveBackend(scalar, batch, columnar, mode="gpu")


class TestLatencySpikeDegradation:
    def _degraded(self, registry=None):
        calls = []
        registry = registry or MetricsRegistry()
        # calibration: columnar 1.0, batch 2.0, scalar 3.0 -> columnar
        # steady flushes then spike at 10x baseline
        costs = [1.0, 2.0, 3.0, 1.0, 10.0, 10.0]
        adaptive = _controller(calls, costs, registry=registry)
        for _ in range(6):
            adaptive.run([1])
        return adaptive, calls, registry

    def test_sustained_spike_steps_one_tier_down(self):
        adaptive, _calls, registry = self._degraded()
        assert adaptive.chosen == "batch"
        last = adaptive.history[-1]
        assert last["from"] == "columnar"
        assert last["to"] == "batch"
        assert last["reason"] == "latency"
        assert registry.value("adaptive.spikes") == 1
        assert registry.value("adaptive.degradations") == 1
        assert registry.value("adaptive.tier") == 1  # batch

    def test_cooldown_then_promotion_probe_recovers(self):
        adaptive, calls, registry = self._degraded()
        # two cheap batch flushes (cooldown), then the probe finds
        # columnar fast again
        adaptive._clock.costs.extend([2.0, 2.0, 1.0])
        for _ in range(3):
            adaptive.run([1])
        assert adaptive.chosen == "columnar"
        assert adaptive.history[-1]["reason"] == "recovered"
        assert registry.value("adaptive.promotions") == 1
        assert registry.value("adaptive.tier") == 2

    def test_slow_promotion_probe_stays_put(self):
        calls = []
        registry = MetricsRegistry()
        costs = [1.0, 2.0, 3.0]  # calibration -> columnar
        costs += [1.0, 10.0]  # steady, then sustained spike: degrade
        # cooldown flush on batch, then every probe of columnar still
        # sees it pathologically slow — the controller keeps probing
        # after each cooldown but never promotes
        costs += [2.0, 100.0, 2.0, 100.0]
        adaptive = _controller(calls, costs, registry=registry)
        for _ in range(9):
            adaptive.run([1])
        assert adaptive.chosen == "batch"
        assert registry.counter("adaptive.promotions").value == 0
        assert adaptive._degraded_from == ["columnar"]

    def test_degradation_ladder_bottoms_out_at_scalar(self):
        calls = []
        registry = MetricsRegistry()
        costs = [1.0, 2.0, 3.0]  # columnar wins
        # spike repeatedly: columnar -> batch -> scalar -> (floor)
        costs += [1.0, 10.0, 10.0]  # degrade to batch
        costs += [1.0, 10.0, 10.0]  # degrade to scalar
        costs += [1.0, 10.0, 10.0, 10.0]  # scalar spikes go nowhere
        adaptive = _controller(
            calls, costs, registry=registry, cooldown_flushes=50
        )
        for _ in range(13):
            adaptive.run([1])
        assert adaptive.chosen == "scalar"
        assert registry.value("adaptive.tier") == 0
        tiers = [h["to"] for h in adaptive.history]
        assert tiers == ["columnar", "batch", "scalar"]


class TestErrorDegradation:
    def test_backend_error_counts_degrades_and_reraises(self):
        registry = MetricsRegistry()
        boom = {"armed": False}

        def scalar(items):
            return list(items)

        def batch(items):
            return list(items)

        def columnar(items):
            if boom["armed"]:
                raise RuntimeError("kernel fault")
            return list(items)

        adaptive = AdaptiveBackend(
            scalar, batch, columnar,
            mode="auto",
            calibration_rounds=1,
            registry=registry,
            clock=ScriptedClock([1.0, 2.0, 3.0, 1.0]),
        )
        for _ in range(4):
            adaptive.run([1])
        assert adaptive.chosen == "columnar"
        boom["armed"] = True
        with pytest.raises(RuntimeError):
            adaptive.run([1])
        # the error is surfaced AND the controller has already degraded
        assert adaptive.chosen == "batch"
        assert adaptive.errors == 1
        assert registry.value("adaptive.errors") == 1
        assert adaptive.history[-1]["reason"] == "error"


class TestRecalibration:
    def test_round_robin_probe_reelects_a_faster_candidate(self):
        calls = []
        registry = MetricsRegistry()
        # calibration: columnar 1.0, batch 5.0, scalar 9.0 -> columnar;
        # the first round-robin probe then measures batch at 0.5 per
        # item — faster than columnar's 1.0 baseline — and re-elects it
        costs = [1.0, 5.0, 9.0, 0.5, 1.0, 1.0]
        adaptive = _controller(
            calls, costs, registry=registry, recalibrate_every=3,
            spike_factor=10.0,
        )
        for _ in range(6):
            adaptive.run([1])
        assert adaptive.chosen == "batch"
        assert any(
            h["reason"] == "recalibration" for h in adaptive.history
        )

    def test_default_is_sticky_no_probes(self):
        calls = []
        adaptive = _controller(calls, [1.0, 5.0, 9.0] + [1.0] * 20)
        for _ in range(12):
            adaptive.run([1])
        # after the 3 calibration flushes everything runs columnar
        assert set(calls[3:]) == {"columnar"}
