"""Spark latency model: batch boundaries and sequential backlog."""

import pytest

from repro.testbed.spark_model import SparkLatencyModel


class TestBoundaries:
    def test_batch_boundary(self):
        model = SparkLatencyModel(interval_ms=150)
        assert model.batch_boundary_after(0) == 150
        assert model.batch_boundary_after(149.9) == 150
        assert model.batch_boundary_after(150) == 300

    def test_result_time_is_boundary_plus_processing(self):
        model = SparkLatencyModel(interval_ms=150, batch_processing_ms=100)
        assert model.result_time_ms(10) == 250
        # A second record in the same batch shares the result time.
        assert model.result_time_ms(100) == 250
        assert model.records_submitted == 2

    def test_distinct_batches(self):
        model = SparkLatencyModel(interval_ms=100, batch_processing_ms=50)
        assert model.result_time_ms(10) == 150
        assert model.result_time_ms(110) == 250

    def test_negative_arrival(self):
        with pytest.raises(ValueError):
            SparkLatencyModel().result_time_ms(-1)


class TestBacklog:
    def test_slow_batches_back_up(self):
        """Processing (250 ms) exceeding the interval (100 ms) delays
        subsequent batch starts."""
        model = SparkLatencyModel(interval_ms=100, batch_processing_ms=250)
        first = model.result_time_ms(10)    # batch [0,100): 100+250=350
        second = model.result_time_ms(110)  # starts at 350, not 200
        assert first == 350
        assert second == 600

    def test_fast_batches_do_not_back_up(self):
        model = SparkLatencyModel(interval_ms=100, batch_processing_ms=20)
        model.result_time_ms(10)
        assert model.result_time_ms(110) == 220


class TestConfiguration:
    def test_mean_latency(self):
        model = SparkLatencyModel(interval_ms=150, batch_processing_ms=115)
        assert model.mean_latency_ms == pytest.approx(75 + 115)

    def test_paper_default_interval_mean(self):
        """Footnote 3: Spark's default 1 s interval -> 500 ms mean wait."""
        model = SparkLatencyModel(interval_ms=1000, batch_processing_ms=0)
        assert model.mean_latency_ms == 500.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            SparkLatencyModel(interval_ms=0)
        with pytest.raises(ValueError):
            SparkLatencyModel(batch_processing_ms=-1)
