"""Pipelined stage overlap: back-pressure, tail flush, dead letters.

The persistent backend overlaps the generate/encode stage with the
worker's agg folding, bounded by ``max_inflight`` micro-batches.  The
regression wall here pins the three places that overlap could corrupt:

* **back-pressure** — results are bit-identical for any in-flight
  bound, the encode stage never runs more than ``max_inflight``
  batches ahead (``pipeline.inflight_peak`` gauge), and an
  ``on_batch`` hook forces lockstep (bound of 1) so rekeys cannot
  race the ring;
* **tail flush** — a run ending mid-period closes exactly one partial
  period after the streamed batches drain, identically on every tier;
* **dead letters** — corrupted payloads rejected *inside the worker*
  surface in the parent's ``dead_letters`` counter at the drain
  barrier, matching the in-process count exactly.

Persistent-tier cases skip where POSIX shared memory is unavailable;
the in-process overlap cases run everywhere.
"""

import pytest

from repro.core.aggregation import ForwardingMode
from repro.obs.registry import MetricsRegistry
from repro.testbed.pipeline import PIPELINE_BACKENDS, StreamingPipeline
from repro.testbed.shm_ring import shared_memory_available
from repro.workloads.adcampaign import AdCampaignWorkload

RATE = 3000.0
DURATION_MS = 400.0
# Not a divisor of the duration: the final period is partial and only
# the end-of-run tail flush can close it.
PERIOD_MS = 150.0

needs_shm = pytest.mark.skipif(
    not shared_memory_available(),
    reason="POSIX shared memory unavailable",
)


def _backends(*extra_skips):
    return [
        b for b in PIPELINE_BACKENDS
        if (b != "persistent" or shared_memory_available())
        and b not in extra_skips
    ]


def _run(backend, registry=None, mode=ForwardingMode.PERIODICAL, **kw):
    workload = AdCampaignWorkload(num_users=80, seed=11)
    pipe = StreamingPipeline(
        workload,
        seed=11,
        mode=mode,
        period_ms=PERIOD_MS,
        backend=backend,
        batch_size=64,
        registry=registry if registry is not None else MetricsRegistry(),
        **kw,
    )
    try:
        result = pipe.run(RATE, DURATION_MS)
    finally:
        pipe.close()
    return pipe, result


def _observables(result):
    return (
        result.events,
        result.payloads,
        result.merged,
        result.periods,
        result.report,
        result.register_state,
        result.dead_letters,
    )


class TestMaxInflightBackPressure:
    @pytest.mark.parametrize("backend", _backends("scalar"))
    def test_results_invariant_under_any_bound(self, backend):
        _, reference = _run(backend, max_inflight=1)
        assert reference.counts_match_reference()
        for bound in (2, 4, 8):
            _, overlapped = _run(backend, max_inflight=bound)
            assert _observables(overlapped) == _observables(reference), (
                backend, bound,
            )

    @needs_shm
    def test_peak_respects_the_bound(self):
        """The encode stage may fill the window but never overrun it —
        the producer blocks on the ring instead of buffering unboundedly
        when the worker falls behind."""
        for bound in (1, 3):
            registry = MetricsRegistry()
            _run("persistent", registry=registry, max_inflight=bound)
            peak = registry.value("pipeline.inflight_peak")
            assert 1 <= peak <= bound, (bound, peak)

    @needs_shm
    def test_overlap_actually_happens(self):
        registry = MetricsRegistry()
        _run("persistent", registry=registry, max_inflight=4)
        assert registry.value("pipeline.inflight_peak") > 1

    def test_on_batch_hook_forces_lockstep(self):
        pipe, _ = _run(
            "batch", max_inflight=8, on_batch=lambda _p, _c: None
        )
        assert pipe.max_inflight == 1


class TestTailFlush:
    @pytest.mark.parametrize("backend", _backends())
    def test_partial_final_period_is_flushed_once(self, backend):
        _, result = _run(backend)
        # 400ms at 150ms periods: two in-stream boundaries plus
        # exactly one tail flush for the partial third period.
        assert result.periods == 3, backend
        assert result.counts_match_reference(), backend

    @needs_shm
    def test_tail_flush_identical_across_tiers(self):
        _, persistent = _run("persistent")
        for backend in ("scalar", "batch", "columnar"):
            _, inline = _run(backend)
            assert _observables(persistent) == _observables(inline), backend

    @needs_shm
    def test_per_packet_mode_has_no_period_flushes(self):
        _, result = _run("persistent", mode=ForwardingMode.PER_PACKET)
        assert result.periods == 0
        assert result.counts_match_reference()


class TestDeadLetters:
    @needs_shm
    def test_worker_side_rejects_surface_in_parent_counter(self):
        """Corrupt a slice of payloads: the worker's AggSwitch rejects
        them at decode, and the drain barrier folds the worker's
        unmerged tally into the parent's dead_letters — byte-identical
        to the in-process columnar run, merged totals included."""
        kw = dict(mode=ForwardingMode.PER_PACKET, corrupt_probability=0.05)
        _, inline = _run("columnar", **kw)
        _, streamed = _run("persistent", **kw)
        assert inline.dead_letters > 0
        assert _observables(streamed) == _observables(inline)
        # Every emitted payload either merged or became a dead letter.
        assert streamed.merged + streamed.dead_letters == streamed.payloads

    @needs_shm
    def test_dead_letters_do_not_leak_into_overlap_window(self):
        """Back-pressure plus corruption: a rejected payload in batch N
        must not desync the fold of batches N+1.. already queued on the
        ring."""
        kw = dict(mode=ForwardingMode.PER_PACKET, corrupt_probability=0.1)
        _, lockstep = _run("persistent", max_inflight=1, **kw)
        _, overlapped = _run("persistent", max_inflight=8, **kw)
        assert lockstep.dead_letters > 0
        assert _observables(overlapped) == _observables(lockstep)

    def test_clean_run_has_zero_dead_letters(self):
        for backend in _backends():
            _, result = _run(backend, mode=ForwardingMode.PER_PACKET)
            assert result.dead_letters == 0, backend
