"""Supervised shard runtime: crash recovery must be invisible.

The contract under test: a :class:`ShardSupervisor` run with injected
worker crashes, timeouts, retry exhaustion, or scripted mid-run backend
degradations produces **byte-identical** snapshots and reports to the
fault-free :class:`ShardExecutor` reference — and the recovery replays
only the failed epoch's tail, never the whole stream.

Everything here runs with ``processes=0`` (in-process dispatch through
the *same* worker function the pool uses) so the assertions are exact
and deterministic; one pool test exercises the multiprocess path and
tolerates the sandboxed-CI fallback.
"""

import pytest

from repro.chaos import ShardCrash, ShardFaultPlan
from repro.core.aggregation import ForwardingMode
from repro.obs.registry import MetricsRegistry
from repro.testbed.executor import ShardExecutor, ShardSpec
from repro.testbed.fastpath import BENCH_APP_ID, FastpathFixture
from repro.testbed.supervisor import ShardSupervisor

SEEDS = (3, 19, 71)


def _lark_spec(fixture, dedup=False):
    return ShardSpec(
        kind="lark",
        app_id=BENCH_APP_ID,
        schema=fixture.schema,
        key=fixture.key,
        specs=tuple(fixture.specs),
        seed=fixture.seed,
        mode=ForwardingMode.PERIODICAL,
        period_ms=1000.0,
        dedup=dedup,
    )


def _agg_spec(fixture):
    return ShardSpec(
        kind="agg",
        app_id=BENCH_APP_ID,
        schema=fixture.schema,
        key=fixture.key,
        specs=tuple(fixture.specs),
        seed=fixture.seed,
    )


def _stream(fixture, packets=600):
    return [bytes(c) for c in fixture.make_cids(packets)]


def _agg_payloads(fixture, packets=400):
    payload_fixture = FastpathFixture(
        mode=ForwardingMode.PER_PACKET,
        num_users=150,
        seed=fixture.seed,
    )
    return [
        r.aggregation_payload
        for r in payload_fixture.new_lark().process_quic_batch(
            payload_fixture.make_cids(packets)
        )
        if r.aggregation_payload is not None
    ]


def _supervisor(spec, plan=None, **kwargs):
    defaults = dict(
        shards=3,
        processes=0,
        backend="columnar",
        chunk_size=32,
        checkpoint_batches=2,
        fault_plan=plan,
        backoff_base_s=0.0,
        sleep=lambda _s: None,
        registry=MetricsRegistry(),
    )
    defaults.update(kwargs)
    return ShardSupervisor(spec, **defaults)


class TestFaultFreeEquivalence:
    """No faults: the supervisor is just a checkpointing executor."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("backend", ["scalar", "batch", "columnar"])
    def test_matches_shard_executor_on_lark(self, seed, backend):
        fixture = FastpathFixture(num_users=150, seed=seed)
        stream = _stream(fixture)
        spec = _lark_spec(fixture)
        reference = ShardExecutor(
            spec, shards=3, processes=1, backend=backend, chunk_size=64
        ).run(stream)
        supervised = _supervisor(spec, backend=backend).run(stream)
        assert supervised.snapshot == reference.snapshot
        assert supervised.report == reference.report
        assert supervised.crashes == 0
        assert supervised.retries == 0
        assert supervised.recovered_packets == 0
        assert supervised.total_packets == len(stream)

    def test_matches_shard_executor_on_agg(self):
        fixture = FastpathFixture(num_users=150, seed=5)
        payloads = _agg_payloads(fixture)
        spec = _agg_spec(fixture)
        reference = ShardExecutor(
            spec, shards=3, processes=1, backend="columnar", chunk_size=64
        ).run(payloads)
        supervised = _supervisor(spec).run(payloads)
        assert supervised.snapshot == reference.snapshot
        assert supervised.report == reference.report

    def test_checkpoints_taken_at_epoch_boundaries(self):
        fixture = FastpathFixture(num_users=150, seed=5)
        stream = _stream(fixture)
        spec = _lark_spec(fixture)
        supervisor = _supervisor(spec)
        result = supervisor.run(stream)
        # one checkpoint per completed epoch, across all shards
        assert result.checkpoints == sum(result.epochs)
        assert result.checkpoints >= result.shards
        registry = supervisor.registry
        assert registry.value("supervisor.checkpoints") == result.checkpoints


class TestCrashRecovery:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_scripted_kill_recovers_bit_identical(self, seed):
        fixture = FastpathFixture(num_users=150, seed=seed)
        stream = _stream(fixture)
        spec = _lark_spec(fixture)
        baseline = _supervisor(spec).run(stream)
        plan = ShardFaultPlan(seed=seed).kill_shard(1, at_batch=2)
        supervisor = _supervisor(spec, plan=plan)
        faulted = supervisor.run(stream)
        assert faulted.snapshot == baseline.snapshot
        assert faulted.report == baseline.report
        assert faulted.crashes == 1
        assert faulted.retries == 1
        # tail-only recovery: at most one epoch replayed per crash
        assert 0 < faulted.recovered_packets <= supervisor.epoch_size
        assert supervisor.registry.value("supervisor.crashes") == 1
        assert supervisor.registry.value(
            "supervisor.recovered_packets"
        ) == faulted.recovered_packets

    def test_crash_in_first_epoch_restarts_from_empty(self):
        fixture = FastpathFixture(num_users=150, seed=7)
        stream = _stream(fixture)
        spec = _lark_spec(fixture)
        baseline = _supervisor(spec).run(stream)
        plan = ShardFaultPlan().kill_shard(0, at_batch=0)
        faulted = _supervisor(spec, plan=plan).run(stream)
        assert faulted.snapshot == baseline.snapshot
        assert faulted.crashes == 1

    @pytest.mark.parametrize("seed", SEEDS)
    def test_seeded_crash_probability_recovers_and_is_deterministic(
        self, seed
    ):
        fixture = FastpathFixture(num_users=150, seed=seed)
        stream = _stream(fixture)
        spec = _lark_spec(fixture)
        baseline = _supervisor(spec).run(stream)
        plan = ShardFaultPlan(seed=seed, crash_probability=0.25)
        first = _supervisor(spec, plan=plan, max_retries=5).run(stream)
        second = _supervisor(spec, plan=plan, max_retries=5).run(stream)
        assert first.snapshot == baseline.snapshot
        assert first.report == baseline.report
        # same plan, same seed: same crash schedule, same tallies
        assert first.crashes == second.crashes
        assert first.recovered_packets == second.recovered_packets
        assert first.snapshot == second.snapshot

    def test_retry_exhaustion_salvages_in_process(self):
        fixture = FastpathFixture(num_users=150, seed=9)
        stream = _stream(fixture)
        spec = _lark_spec(fixture)
        baseline = _supervisor(spec).run(stream)
        # dies on every attempt the supervisor is willing to make
        plan = ShardFaultPlan().kill_shard(2, at_batch=2, times=10)
        supervisor = _supervisor(spec, plan=plan, max_retries=2)
        faulted = supervisor.run(stream)
        assert faulted.salvaged == [2]
        assert faulted.snapshot == baseline.snapshot
        assert faulted.report == baseline.report
        assert supervisor.registry.value("supervisor.salvages") == 1

    def test_backoff_is_bounded_and_exponential(self):
        fixture = FastpathFixture(num_users=100, seed=9)
        stream = _stream(fixture, packets=400)
        spec = _lark_spec(fixture)
        plan = ShardFaultPlan().kill_shard(0, at_batch=0, times=3)
        slept = []
        _supervisor(
            spec,
            plan=plan,
            max_retries=3,
            backoff_base_s=0.1,
            backoff_max_s=0.25,
            sleep=slept.append,
        ).run(stream)
        assert slept == [0.1, 0.2, 0.25]  # doubled, then clamped


class TestScriptedDegradation:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_mid_run_degradation_changes_nothing_but_the_backend(
        self, seed
    ):
        fixture = FastpathFixture(num_users=150, seed=seed)
        stream = _stream(fixture)
        spec = _lark_spec(fixture)
        baseline = _supervisor(spec).run(stream)
        plan = ShardFaultPlan().degrade_backend(2, "batch")
        supervisor = _supervisor(spec, plan=plan)
        degraded = supervisor.run(stream)
        assert degraded.snapshot == baseline.snapshot
        assert degraded.report == baseline.report
        assert degraded.backends[:2] == ["columnar", "columnar"]
        assert set(degraded.backends[2:]) == {"batch"}
        assert supervisor.registry.value("supervisor.degradations") == 1
        assert supervisor.registry.value("supervisor.backend_tier") == 1

    def test_degradation_composes_with_a_crash(self):
        fixture = FastpathFixture(num_users=150, seed=13)
        stream = _stream(fixture)
        spec = _lark_spec(fixture)
        baseline = _supervisor(spec).run(stream)
        plan = (
            ShardFaultPlan(seed=13)
            .kill_shard(1, at_batch=3)
            .degrade_backend(1, "scalar")
        )
        faulted = _supervisor(spec, plan=plan).run(stream)
        assert faulted.snapshot == baseline.snapshot
        assert faulted.crashes == 1


class TestValidationAndPool:
    def test_lark_dedup_is_rejected(self):
        fixture = FastpathFixture(num_users=50, seed=3)
        spec = _lark_spec(fixture, dedup=True)
        with pytest.raises(ValueError, match="dedup"):
            ShardSupervisor(spec)

    def test_bad_parameters_rejected(self):
        fixture = FastpathFixture(num_users=50, seed=3)
        spec = _lark_spec(fixture)
        with pytest.raises(ValueError):
            ShardSupervisor(spec, backend="gpu")
        with pytest.raises(ValueError):
            ShardSupervisor(spec, shards=0)
        with pytest.raises(ValueError):
            ShardSupervisor(spec, checkpoint_batches=0)

    def test_pool_path_matches_inline(self):
        """Multiprocess dispatch — or, on hosts where spawn pools are
        unavailable, the supervised inline fallback — must land on the
        same snapshot.  Which path ran is reported, not assumed."""
        fixture = FastpathFixture(num_users=100, seed=21)
        stream = _stream(fixture, packets=300)
        spec = _lark_spec(fixture)
        inline = _supervisor(spec, chunk_size=64).run(stream)
        supervisor = _supervisor(
            spec,
            chunk_size=64,
            processes=2,
            job_timeout_s=30.0,
            max_retries=0,
        )
        pooled = supervisor.run(stream)
        assert pooled.snapshot == inline.snapshot
        assert pooled.report == inline.report
        if not pooled.used_pool:
            assert pooled.fallback_cause or pooled.timeouts >= 0


class TestExecutorFallbackCause:
    def test_pool_failure_surfaces_cause_and_counter(self, monkeypatch):
        import multiprocessing

        fixture = FastpathFixture(num_users=100, seed=31)
        stream = _stream(fixture, packets=300)
        spec = _lark_spec(fixture)

        def _broken(method):
            raise OSError("no process spawning here")

        monkeypatch.setattr(multiprocessing, "get_context", _broken)
        registry = MetricsRegistry()
        executor = ShardExecutor(
            spec, shards=2, processes=2, backend="batch", registry=registry
        )
        result = executor.run(stream)
        assert not result.used_pool
        assert result.fallback_cause is not None
        assert "OSError" in result.fallback_cause
        assert executor.last_error == result.fallback_cause
        assert registry.value("shard_executor.pool_fallbacks") == 1

    def test_sequential_run_has_no_fallback_cause(self):
        fixture = FastpathFixture(num_users=100, seed=31)
        stream = _stream(fixture, packets=200)
        spec = _lark_spec(fixture)
        result = ShardExecutor(
            spec, shards=2, processes=1, backend="batch",
            registry=MetricsRegistry(),
        ).run(stream)
        assert not result.used_pool
        assert result.fallback_cause is None
