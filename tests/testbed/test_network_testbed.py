"""Packet-routed testbed: agreement with the chain-based experiment
and link-level loss behaviour."""

import pytest

from repro.testbed.config import Scheme, TestbedConfig
from repro.testbed.experiment import TestbedExperiment
from repro.testbed.network_testbed import NetworkTestbed


def _config(**kwargs):
    defaults = dict(
        scheme=Scheme.TRANS_1RTT,
        insa=True,
        requests_per_second=20,
        duration_ms=2500,
    )
    defaults.update(kwargs)
    return TestbedConfig(**defaults)


class TestAgreement:
    def test_latency_matches_chain_based_experiment(self):
        """Two independent implementations of the Trans-1RTT + INSA
        pathway (explicit chains vs hop-by-hop packets) must agree."""
        config = _config()
        chain = TestbedExperiment(config).run()
        network = NetworkTestbed(config).run()
        assert network.median_latency_ms == pytest.approx(
            chain.median_latency_ms, rel=0.02
        )

    def test_counts_exact_without_loss(self):
        result = NetworkTestbed(_config()).run()
        assert result.counts_match_reference()
        assert result.lost_packets == 0
        assert result.aggregation_packets == len(result.latencies_ms)

    def test_latency_scales_with_percentile(self):
        low = NetworkTestbed(_config(delay_percentile=25)).run()
        high = NetworkTestbed(_config(delay_percentile=90)).run()
        assert low.median_latency_ms < high.median_latency_ms

    def test_original_traffic_still_reaches_web(self):
        testbed = NetworkTestbed(_config())
        result = testbed.run()
        web = testbed.net.nodes["web"]
        # Every request's original QUIC packet continued to the web
        # server (Snatch never disturbs the user's traffic).
        assert web.completed == len(result.latencies_ms)


class TestLossBehaviour:
    def test_loss_degrades_gracefully(self):
        """Appendix B.3: losing aggregation packets loses those data
        points and nothing else."""
        result = NetworkTestbed(_config(), agg_loss_rate=0.05).run()
        assert result.lost_packets > 0
        total = result.lost_packets + len(result.latencies_ms)
        assert len(result.latencies_ms) == total - result.lost_packets
        # The aggregate undercounts by exactly the lost packets.
        counted = sum(result.report["gender_by_campaign"].values())
        expected = sum(result.reference["gender_by_campaign"].values())
        assert expected - counted == result.lost_packets

    def test_tiny_wan_loss_rarely_matters(self):
        result = NetworkTestbed(_config(), agg_loss_rate=0.0001).run()
        counted = sum(result.report["gender_by_campaign"].values())
        expected = sum(result.reference["gender_by_campaign"].values())
        assert expected - counted <= 1


class TestWebServerOutage:
    def test_transport_path_survives_web_failure(self):
        """The transport-layer pathway forks at the LarkSwitch, before
        the web server; a web-server outage therefore cannot touch the
        analytics stream, even as the original requests are dropped."""
        testbed = NetworkTestbed(_config(duration_ms=2000))
        web = testbed.net.nodes["web"]
        web.fail_until(recover_at_ms=1000)
        result = testbed.run()
        # Analytics completed for every request despite the outage...
        assert result.counts_match_reference()
        assert len(result.latencies_ms) == result.aggregation_packets
        # ...while the web server genuinely dropped original traffic
        # during its first-second downtime.
        assert web.dropped > 0
        assert web.completed < len(result.latencies_ms)
