"""Packet-routed testbed: agreement with the chain-based experiment
and link-level loss behaviour."""

import pytest

from repro.testbed.config import Scheme, TestbedConfig
from repro.testbed.experiment import TestbedExperiment
from repro.testbed.network_testbed import NetworkTestbed


def _config(**kwargs):
    defaults = dict(
        scheme=Scheme.TRANS_1RTT,
        insa=True,
        requests_per_second=20,
        duration_ms=2500,
    )
    defaults.update(kwargs)
    return TestbedConfig(**defaults)


class TestAgreement:
    def test_latency_matches_chain_based_experiment(self):
        """Two independent implementations of the Trans-1RTT + INSA
        pathway (explicit chains vs hop-by-hop packets) must agree."""
        config = _config()
        chain = TestbedExperiment(config).run()
        network = NetworkTestbed(config).run()
        assert network.median_latency_ms == pytest.approx(
            chain.median_latency_ms, rel=0.02
        )

    def test_counts_exact_without_loss(self):
        result = NetworkTestbed(_config()).run()
        assert result.counts_match_reference()
        assert result.lost_packets == 0
        assert result.aggregation_packets == len(result.latencies_ms)

    def test_latency_scales_with_percentile(self):
        low = NetworkTestbed(_config(delay_percentile=25)).run()
        high = NetworkTestbed(_config(delay_percentile=90)).run()
        assert low.median_latency_ms < high.median_latency_ms

    def test_original_traffic_still_reaches_web(self):
        testbed = NetworkTestbed(_config())
        result = testbed.run()
        web = testbed.net.nodes["web"]
        # Every request's original QUIC packet continued to the web
        # server (Snatch never disturbs the user's traffic).
        assert web.completed == len(result.latencies_ms)


class TestLossBehaviour:
    def test_loss_degrades_gracefully(self):
        """Appendix B.3: losing aggregation packets loses those data
        points and nothing else."""
        result = NetworkTestbed(_config(), agg_loss_rate=0.05).run()
        assert result.lost_packets > 0
        total = result.lost_packets + len(result.latencies_ms)
        assert len(result.latencies_ms) == total - result.lost_packets
        # The aggregate undercounts by exactly the lost packets.
        counted = sum(result.report["gender_by_campaign"].values())
        expected = sum(result.reference["gender_by_campaign"].values())
        assert expected - counted == result.lost_packets

    def test_tiny_wan_loss_rarely_matters(self):
        result = NetworkTestbed(_config(), agg_loss_rate=0.0001).run()
        counted = sum(result.report["gender_by_campaign"].values())
        expected = sum(result.reference["gender_by_campaign"].values())
        assert expected - counted <= 1


class TestStreamingIngest:
    def test_streaming_pump_matches_materialized_run(self):
        """The pull-based ingest pump (micro-batched generation plus
        the cookie encode cache) must be observably identical to the
        legacy materialize-everything loop."""
        streamed = NetworkTestbed(_config(), streaming_ingest=True).run()
        legacy = NetworkTestbed(_config(), streaming_ingest=False).run()
        assert streamed.latencies_ms == legacy.latencies_ms
        assert streamed.report == legacy.report
        assert streamed.reference == legacy.reference
        assert streamed.aggregation_packets == legacy.aggregation_packets
        assert streamed.aggregation_bytes == legacy.aggregation_bytes

    def test_ingest_batch_size_is_unobservable(self):
        small = NetworkTestbed(_config(), ingest_batch=7).run()
        large = NetworkTestbed(_config(), ingest_batch=1024).run()
        assert small.latencies_ms == large.latencies_ms
        assert small.report == large.report

    def test_cache_serves_repeat_visitors(self):
        # 5 users x 8 campaigns x 2 event types = 80 distinct cookies,
        # far fewer than the ~500 requests: repeat hits are guaranteed.
        testbed = NetworkTestbed(
            _config(requests_per_second=200, num_users=5)
        )
        result = testbed.run()
        stats = testbed.cookie_cache.stats()
        assert stats["misses"] > 0
        assert stats["hits"] > 0
        assert (
            stats["hits"] + stats["queued_hits"] + stats["misses"]
            == len(result.latencies_ms)
        )

    def test_rekey_with_warm_cache_never_serves_stale_cookies(self):
        """Regression: a rekey must invalidate the encode cache along
        with the switch tiers — a warm cache serving old-key blocks
        would fail every decode and zero the analytics."""
        testbed = NetworkTestbed(_config())
        cols = testbed.workload.stream(1000.0, 100.0).generate_batch(64)
        testbed.cookie_cache.encode_batch(
            testbed.workload.cookie_keys(cols),
            lambda i: testbed.workload.cookie_values_at(cols, i),
        )
        assert len(testbed.cookie_cache) > 0
        testbed.rekey(bytes(range(16)))
        assert testbed.cookie_cache.epoch == 1
        assert len(testbed.cookie_cache) == 0
        result = testbed.run()
        assert result.counts_match_reference()
        assert result.lost_packets == 0


class TestWebServerOutage:
    def test_transport_path_survives_web_failure(self):
        """The transport-layer pathway forks at the LarkSwitch, before
        the web server; a web-server outage therefore cannot touch the
        analytics stream, even as the original requests are dropped."""
        testbed = NetworkTestbed(_config(duration_ms=2000))
        web = testbed.net.nodes["web"]
        web.fail_until(recover_at_ms=1000)
        result = testbed.run()
        # Analytics completed for every request despite the outage...
        assert result.counts_match_reference()
        assert len(result.latencies_ms) == result.aggregation_packets
        # ...while the web server genuinely dropped original traffic
        # during its first-second downtime.
        assert web.dropped > 0
        assert web.completed < len(result.latencies_ms)
