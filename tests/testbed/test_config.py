"""Testbed configuration validation."""

import pytest

from repro.core.aggregation import ForwardingMode
from repro.testbed.config import Scheme, TestbedConfig


class TestValidation:
    def test_defaults_valid(self):
        config = TestbedConfig()
        assert config.scheme is Scheme.BASELINE
        assert not config.insa
        assert config.spark_interval_ms == 150.0

    def test_baseline_has_no_insa(self):
        with pytest.raises(ValueError, match="INSA"):
            TestbedConfig(scheme=Scheme.BASELINE, insa=True)

    def test_rate_and_duration_positive(self):
        with pytest.raises(ValueError):
            TestbedConfig(requests_per_second=0)
        with pytest.raises(ValueError):
            TestbedConfig(duration_ms=0)

    def test_percentile_range(self):
        with pytest.raises(ValueError):
            TestbedConfig(delay_percentile=101)

    def test_periodical_needs_period(self):
        with pytest.raises(ValueError):
            TestbedConfig(
                scheme=Scheme.TRANS_1RTT,
                forwarding=ForwardingMode.PERIODICAL,
            )
        config = TestbedConfig(
            scheme=Scheme.TRANS_1RTT,
            forwarding=ForwardingMode.PERIODICAL,
            period_ms=100,
        )
        assert config.period_ms == 100

    def test_transport_detection(self):
        assert TestbedConfig(scheme=Scheme.TRANS_1RTT).uses_transport_cookie
        assert TestbedConfig(scheme=Scheme.TRANS_0RTT).uses_transport_cookie
        assert not TestbedConfig(scheme=Scheme.APP_HTTPS).uses_transport_cookie

    def test_paper_capacity_calibration(self):
        """Worker counts match the Fig. 6(b) congestion onsets."""
        config = TestbedConfig()
        web_capacity = config.web_workers / (config.web_service_ms / 1000)
        edge_capacity = config.edge_workers / (config.edge_service_ms / 1000)
        assert 100 < web_capacity < 130
        assert 200 < edge_capacity < 300
