"""End-to-end testbed runs vs the paper's Figure 6 anchors."""

import pytest

from repro.core.aggregation import ForwardingMode
from repro.testbed.config import Scheme, TestbedConfig
from repro.testbed.experiment import TestbedExperiment


def _run(scheme, insa=False, rps=10, percentile=50, duration=4000, **kwargs):
    config = TestbedConfig(
        scheme=scheme,
        insa=insa,
        requests_per_second=rps,
        delay_percentile=percentile,
        duration_ms=duration,
        **kwargs,
    )
    return TestbedExperiment(config).run()


class TestMedianAnchors:
    """Figure 6(a) at the 50th percentile, 10 req/s."""

    def test_baseline_around_506ms(self):
        result = _run(Scheme.BASELINE)
        assert result.median_latency_ms == pytest.approx(506, rel=0.05)

    def test_trans_insa_around_61ms(self):
        result = _run(Scheme.TRANS_1RTT, insa=True)
        assert result.median_latency_ms == pytest.approx(61, rel=0.05)

    def test_median_speedups_match_paper(self):
        baseline = _run(Scheme.BASELINE).median_latency_ms
        cases = [
            (Scheme.APP_HTTPS, False, 1.9),
            (Scheme.APP_HTTPS, True, 6.3),
            (Scheme.TRANS_1RTT, False, 2.0),
            (Scheme.TRANS_1RTT, True, 8.3),
        ]
        for scheme, insa, expected in cases:
            got = baseline / _run(scheme, insa).median_latency_ms
            assert got == pytest.approx(expected, rel=0.12), (scheme, insa)

    def test_scheme_ordering(self):
        """Shortest to longest: Trans+INSA < App+INSA < Trans < App <
        baseline (the Figure 6(a) curve order at the median)."""
        latencies = [
            _run(Scheme.TRANS_1RTT, True).median_latency_ms,
            _run(Scheme.APP_HTTPS, True).median_latency_ms,
            _run(Scheme.TRANS_1RTT, False).median_latency_ms,
            _run(Scheme.APP_HTTPS, False).median_latency_ms,
            _run(Scheme.BASELINE).median_latency_ms,
        ]
        assert latencies == sorted(latencies)


class TestPercentileSweep:
    def test_latency_grows_with_percentile(self):
        lows = _run(Scheme.BASELINE, percentile=10, duration=2500)
        highs = _run(Scheme.BASELINE, percentile=90, duration=2500)
        assert lows.median_latency_ms < highs.median_latency_ms

    def test_p100_baseline_near_2800ms(self):
        result = _run(Scheme.BASELINE, percentile=100, duration=2500)
        assert result.median_latency_ms == pytest.approx(2807, rel=0.1)

    def test_snatch_still_wins_at_p100(self):
        """Paper: >= 3.8x even at the 100th percentile."""
        baseline = _run(Scheme.BASELINE, percentile=100, duration=2500)
        snatch = _run(Scheme.TRANS_1RTT, True, percentile=100, duration=2500)
        assert baseline.median_latency_ms / snatch.median_latency_ms >= 3.8


class TestWorkloadSweep:
    """Figure 6(b): congestion, and Snatch's 'no parallelism inflation'."""

    def test_trans_insa_flat_under_load(self):
        low = _run(Scheme.TRANS_1RTT, True, rps=10, duration=2000)
        high = _run(Scheme.TRANS_1RTT, True, rps=300, duration=2000)
        assert high.median_latency_ms == pytest.approx(
            low.median_latency_ms, rel=0.02
        )

    def test_baseline_congests_at_300rps(self):
        low = _run(Scheme.BASELINE, rps=50, duration=2000)
        high = _run(Scheme.BASELINE, rps=300, duration=2000)
        assert high.median_latency_ms > 2 * low.median_latency_ms

    def test_app_https_congests_later_than_baseline(self):
        """App-HTTPS only traverses the edge queue (capacity ~235)."""
        app = _run(Scheme.APP_HTTPS, True, rps=200, duration=2000)
        base = _run(Scheme.BASELINE, rps=200, duration=2000)
        assert app.median_latency_ms < base.median_latency_ms / 2


class TestPeriodicalForwarding:
    """Figure 6(c): latency rises, bandwidth falls with the interval."""

    def test_latency_increases_with_interval(self):
        per_packet = _run(Scheme.TRANS_1RTT, True, rps=200, duration=2000)
        periodical = _run(
            Scheme.TRANS_1RTT, True, rps=200, duration=2000,
            forwarding=ForwardingMode.PERIODICAL, period_ms=200,
        )
        assert periodical.median_latency_ms > per_packet.median_latency_ms

    def test_bandwidth_decreases_with_interval(self):
        short = _run(
            Scheme.TRANS_1RTT, True, rps=200, duration=2000,
            forwarding=ForwardingMode.PERIODICAL, period_ms=10,
        )
        long = _run(
            Scheme.TRANS_1RTT, True, rps=200, duration=2000,
            forwarding=ForwardingMode.PERIODICAL, period_ms=500,
        )
        # Longer intervals send far fewer (though individually larger)
        # aggregation packets; the paper's grey line falls ~100x with a
        # fixed-size snapshot, ours ~5x because flush size grows with
        # the number of touched statistic cells.
        assert long.bandwidth_kbps < short.bandwidth_kbps / 3
        assert long.aggregation_packets < short.aggregation_packets / 10

    def test_per_packet_sends_one_packet_per_request(self):
        result = _run(Scheme.TRANS_1RTT, True, rps=50, duration=2000)
        assert result.aggregation_packets == len(result.records)

    def test_periodical_completes_all_requests(self):
        result = _run(
            Scheme.TRANS_1RTT, True, rps=100, duration=2000,
            forwarding=ForwardingMode.PERIODICAL, period_ms=100,
        )
        assert result.completed == len(result.records)


class TestCorrectness:
    """The aggregates produced by real switch pipelines must equal the
    workload's ground truth."""

    @pytest.mark.parametrize(
        "scheme", [Scheme.TRANS_1RTT, Scheme.APP_HTTPS]
    )
    def test_per_packet_counts_exact(self, scheme):
        result = _run(scheme, insa=True, rps=50, duration=2000)
        assert result.completed == len(result.records)
        assert result.counts_match_reference()

    def test_periodical_counts_exact(self):
        result = _run(
            Scheme.TRANS_1RTT, True, rps=50, duration=2000,
            forwarding=ForwardingMode.PERIODICAL, period_ms=100,
        )
        assert result.counts_match_reference()

    def test_trans_0rtt_same_path_as_1rtt(self):
        a = _run(Scheme.TRANS_0RTT, True, duration=2000)
        b = _run(Scheme.TRANS_1RTT, True, duration=2000)
        assert a.median_latency_ms == pytest.approx(
            b.median_latency_ms, rel=0.01
        )

    def test_result_statistics_api(self):
        result = _run(Scheme.TRANS_1RTT, True, duration=2000)
        assert result.percentile_latency_ms(0) <= result.median_latency_ms
        assert result.median_latency_ms <= result.percentile_latency_ms(100)
        assert result.mean_latency_ms > 0
