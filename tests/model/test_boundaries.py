"""Boundary-parameter tests for the analytic model.

The speedup/breakdown equations are exercised elsewhere at the paper's
operating points; these tests pin their behavior at the edges — empty
(zero) forwarding interval, the extremes of the interpolation range,
zero-cost components, single-site measurement runs — where off-by-one
and division bugs live.
"""

import pytest

from repro.measurement.study import MeasurementStudy
from repro.model.breakdown import (
    app_insa_breakdown,
    baseline_breakdown,
    trans_insa_breakdown,
)
from repro.model.params import (
    D_WA_RANGE,
    ScenarioParams,
    interpolated_scenario,
    median_scenario,
    percentile_scenario,
)
from repro.model.periodical import (
    aggregation_bandwidth_kbps,
    periodical_snatch_latency_ms,
    periodical_speedup,
)
from repro.model.speedup import (
    Protocol,
    baseline_latency_ms,
    snatch_latency_ms,
    speedup,
)


class TestIntervalBoundaries:
    def test_zero_interval_equals_per_packet_model(self):
        """An empty forwarding interval degenerates to the per-packet
        speedup exactly."""
        params = median_scenario()
        for protocol in Protocol:
            assert periodical_snatch_latency_ms(
                params, protocol, 0.0
            ) == snatch_latency_ms(params, protocol, insa=True)
            assert periodical_speedup(params, protocol, 0.0) == \
                pytest.approx(speedup(params, protocol, insa=True))

    def test_negative_interval_rejected(self):
        params = median_scenario()
        with pytest.raises(ValueError):
            periodical_snatch_latency_ms(params, Protocol.TRANS_1RTT, -1.0)
        with pytest.raises(ValueError):
            aggregation_bandwidth_kbps(-0.5, 10.0)

    def test_interval_monotonically_decreases_speedup(self):
        params = median_scenario()
        speeds = [
            periodical_speedup(params, Protocol.TRANS_1RTT, interval)
            for interval in (0.0, 10.0, 100.0, 1000.0)
        ]
        assert speeds == sorted(speeds, reverse=True)

    def test_zero_interval_bandwidth_is_per_request(self):
        # interval 0 -> one aggregation packet per request.
        assert aggregation_bandwidth_kbps(0.0, 200.0) == \
            pytest.approx(200.0 * 70 * 8 / 1000.0)

    def test_bandwidth_caps_at_request_rate(self):
        # A 1 ms interval cannot send more packets than requests arrive.
        assert aggregation_bandwidth_kbps(1.0, 10.0) == \
            aggregation_bandwidth_kbps(0.0, 10.0)

    def test_zero_request_rate(self):
        assert aggregation_bandwidth_kbps(100.0, 0.0) == 0.0


class TestInterpolationBoundaries:
    def test_range_endpoints_accepted(self):
        lo, hi = D_WA_RANGE
        assert interpolated_scenario(lo).d_wa == lo
        assert interpolated_scenario(hi).d_wa == hi

    def test_outside_range_rejected(self):
        lo, hi = D_WA_RANGE
        for bad in (lo - 1e-6, hi + 1e-6, -1.0, 1e9):
            with pytest.raises(ValueError):
                interpolated_scenario(bad)

    def test_percentile_extremes(self):
        p0 = percentile_scenario(0.0)
        p100 = percentile_scenario(100.0)
        for name, value in p0.as_dict().items():
            assert value >= 0.0, name
            assert getattr(p100, name) >= value, name


class TestScenarioParamBoundaries:
    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            ScenarioParams(
                d_ci=-0.1, d_ce=1, d_ew=1, d_wa=1, d_ea=1, d_ia=1,
                t_trans=1, t_edge=1, t_web=1, t_analytics=1,
            )

    def test_all_zero_costs_zero_offload(self):
        """Zero-offload corner: every component free except analytics;
        speedup reduces to t_A / t'_A exactly."""
        params = ScenarioParams(
            d_ci=0, d_ce=0, d_ew=0, d_wa=0, d_ea=0, d_ia=0,
            t_trans=0, t_edge=0, t_web=0, t_analytics=500.0,
        )
        for protocol in Protocol:
            assert baseline_latency_ms(params, protocol) == 500.0
            # Without INSA there is nothing left to offload: the
            # analytics cost is paid in full and speedup collapses to 1.
            assert speedup(params, protocol, insa=False) == 1.0
            assert speedup(params, protocol, insa=True) == \
                pytest.approx(500.0 / params.t_analytics_insa)

    def test_snatch_default_edge_cost_mirrors_baseline(self):
        params = median_scenario()
        assert params.t_edge_snatch == params.t_edge


class TestBreakdownBoundaries:
    def test_until_unknown_label_raises(self):
        with pytest.raises(KeyError):
            baseline_breakdown().until("no-such-step")

    def test_until_last_label_equals_total(self):
        for breakdown in (
            baseline_breakdown(), app_insa_breakdown(), trans_insa_breakdown()
        ):
            last = breakdown.steps[-1].label
            assert breakdown.until(last) == pytest.approx(breakdown.total_ms)

    def test_prefix_sums_monotone(self):
        breakdown = baseline_breakdown()
        running = [breakdown.until(s.label) for s in breakdown.steps]
        assert running == sorted(running)
        assert all(value >= 0 for value in running)


class TestMeasurementBoundaries:
    def test_single_site_run(self):
        result = MeasurementStudy(seed=5).run(max_sites=1)
        assert len(result.measurements) + result.discarded_sites == 1
        if result.measurements:
            summary = result.summary()
            assert all(v >= 0 for v in summary.values())

    def test_zero_sites_run(self):
        # max_sites=None means "all"; use an explicit tiny census cut.
        result = MeasurementStudy(seed=5).run(max_sites=2)
        assert len(result.measurements) + result.discarded_sites == 2
