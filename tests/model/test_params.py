"""Scenario presets and the best-practice interpolation."""

import pytest

from repro.model.params import (
    D_EA_RANGE,
    D_WA_RANGE,
    INSA_ANALYTICS_MS,
    ScenarioParams,
    interpolated_scenario,
    median_scenario,
    percentile_scenario,
    us_scenario,
    worldwide_scenario,
)


class TestScenarioParams:
    def test_t_edge_snatch_defaults_to_t_edge(self):
        p = median_scenario()
        assert p.t_edge_snatch == p.t_edge

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ScenarioParams(
                d_ci=-1, d_ce=1, d_ew=1, d_wa=1, d_ea=1, d_ia=1,
                t_trans=1, t_edge=1, t_web=1, t_analytics=1,
            )

    def test_with_analytics_time(self):
        p = median_scenario().with_analytics_time(42.0)
        assert p.t_analytics == 42.0

    def test_as_dict_roundtrip(self):
        d = median_scenario().as_dict()
        assert d["d_ci"] == 1.4 and d["t_web"] == 241.6

    def test_insa_cost_below_1ms(self):
        assert INSA_ANALYTICS_MS <= 1.0


class TestMedianScenario:
    def test_matches_section_5_1(self):
        p = median_scenario()
        assert p.d_ci == 1.4
        assert p.d_ce == 6.7
        assert p.d_ew == 43.6
        assert p.d_wa == 75.5
        assert p.t_edge == 136.6
        assert p.t_web == 241.6
        assert p.t_analytics == 500.0

    def test_d_ia_is_client_web_minus_isp(self):
        assert median_scenario().d_ia == pytest.approx(60.1 - 1.4)


class TestInterpolation:
    def test_range_endpoints(self):
        lo = interpolated_scenario(D_WA_RANGE[0])
        hi = interpolated_scenario(D_WA_RANGE[1])
        assert lo.d_ea == pytest.approx(D_EA_RANGE[0])
        assert hi.d_ea == pytest.approx(D_EA_RANGE[1])

    def test_monotone_in_d_wa(self):
        previous = -1.0
        for d_wa in (0.8, 26.3, 75.5, 150.0, 206.0):
            p = interpolated_scenario(d_wa)
            assert p.d_ea > previous
            previous = p.d_ea

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            interpolated_scenario(0.1)
        with pytest.raises(ValueError):
            interpolated_scenario(300.0)

    def test_us_vs_worldwide(self):
        assert us_scenario().d_wa == 26.3
        assert worldwide_scenario().d_wa == 75.5
        assert us_scenario().d_ea < worldwide_scenario().d_ea


class TestPercentileScenario:
    def test_median_percentile_matches_measured(self):
        p = percentile_scenario(50)
        assert p.d_ci == pytest.approx(1.4)
        assert p.d_ce == pytest.approx(6.7)
        assert p.d_ea == pytest.approx(43.6)  # measured edge-cloud curve
        assert p.d_ia == pytest.approx(58.7)

    def test_monotone_in_percentile(self):
        low = percentile_scenario(10)
        high = percentile_scenario(90)
        for attr in ("d_ci", "d_ce", "d_ew", "d_wa", "d_ea", "d_ia"):
            assert getattr(low, attr) <= getattr(high, attr), attr

    def test_custom_analytics_time(self):
        assert percentile_scenario(50, t_analytics=9).t_analytics == 9
