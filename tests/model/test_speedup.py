"""The speedup equations vs the paper's quoted numbers."""

import pytest

from repro.model.params import (
    ScenarioParams,
    median_scenario,
    us_scenario,
    worldwide_scenario,
)
from repro.model.speedup import (
    Protocol,
    baseline_latency_ms,
    latency_pair,
    snatch_latency_ms,
    speedup,
    speedup_table,
)


def _params(**overrides):
    defaults = dict(
        d_ci=1.0, d_ce=5.0, d_ew=40.0, d_wa=70.0, d_ea=45.0, d_ia=55.0,
        t_trans=1.0, t_edge=100.0, t_web=200.0, t_analytics=500.0,
    )
    defaults.update(overrides)
    return ScenarioParams(**defaults)


class TestEquationStructure:
    def test_eq1_app_https_1rtt(self):
        p = _params()
        expected = 3 * 5 + 3 * 40 + 70 + 1 + 100 + 200 + 500
        assert baseline_latency_ms(p, Protocol.APP_HTTPS_1RTT) == expected
        denom = 3 * 5 + 45 + 100 + 500
        assert snatch_latency_ms(p, Protocol.APP_HTTPS_1RTT, False) == denom

    def test_eq2_trans_0rtt(self):
        p = _params()
        expected = 5 + 40 + 70 + 1 + 100 + 200 + 500
        assert baseline_latency_ms(p, Protocol.TRANS_0RTT) == expected
        assert snatch_latency_ms(p, Protocol.TRANS_0RTT, False) == 1 + 55 + 500

    def test_eq3_trans_1rtt_denominator_same_as_0rtt(self):
        """The cookie rides the first packet either way (section 3.3)."""
        p = _params()
        assert snatch_latency_ms(
            p, Protocol.TRANS_1RTT, True
        ) == snatch_latency_ms(p, Protocol.TRANS_0RTT, True)

    def test_eq5_tcp_http_coefficient_3(self):
        p = _params()
        expected = 3 * 5 + 3 * 40 + 70 + 1 + 100 + 200 + 500
        assert baseline_latency_ms(p, Protocol.APP_HTTP_TCP) == expected

    def test_eq6_tcp_tls_coefficient_7(self):
        p = _params()
        expected = 7 * 5 + 7 * 40 + 70 + 1 + 100 + 200 + 500
        assert baseline_latency_ms(p, Protocol.APP_HTTPS_TCP) == expected
        denom = 7 * 5 + 45 + 100 + 500
        assert snatch_latency_ms(p, Protocol.APP_HTTPS_TCP, False) == denom

    def test_insa_uses_t_prime(self):
        p = _params()
        without = snatch_latency_ms(p, Protocol.TRANS_1RTT, False)
        with_insa = snatch_latency_ms(p, Protocol.TRANS_1RTT, True)
        assert without - with_insa == pytest.approx(500.0 - 1.0)


class TestInvariants:
    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_speedup_at_least_one(self, protocol):
        p = median_scenario()
        assert speedup(p, protocol, insa=False) >= 1.0
        assert speedup(p, protocol, insa=True) >= 1.0

    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_insa_never_hurts(self, protocol):
        p = median_scenario()
        assert speedup(p, protocol, True) >= speedup(p, protocol, False)

    def test_transport_beats_application(self):
        p = median_scenario()
        assert speedup(p, Protocol.TRANS_1RTT, True) > speedup(
            p, Protocol.APP_HTTPS_1RTT, True
        )


class TestPaperAnchors:
    """Section 5.1's quoted speedups (reproduced within ~15 %)."""

    def test_us_trans_1rtt_insa_31x(self):
        got = speedup(us_scenario(), Protocol.TRANS_1RTT, True)
        assert got == pytest.approx(31.0, rel=0.15)

    def test_worldwide_trans_1rtt_insa_12x(self):
        got = speedup(worldwide_scenario(), Protocol.TRANS_1RTT, True)
        assert got == pytest.approx(12.0, rel=0.15)

    def test_us_app_https_insa_5_5x(self):
        got = speedup(us_scenario(), Protocol.APP_HTTPS_1RTT, True)
        assert got == pytest.approx(5.5, rel=0.15)

    def test_worldwide_app_https_insa_4_4x(self):
        got = speedup(worldwide_scenario(), Protocol.APP_HTTPS_1RTT, True)
        assert got == pytest.approx(4.4, rel=0.15)

    def test_ta_10s_anchors(self):
        """Figure 5(c) at T_A = 10 s: 183x / 181x / 53x."""
        p = median_scenario(t_analytics=10_000.0)
        assert speedup(p, Protocol.TRANS_1RTT, True) == pytest.approx(
            183.0, rel=0.15
        )
        assert speedup(p, Protocol.TRANS_0RTT, True) == pytest.approx(
            181.0, rel=0.15
        )
        assert speedup(p, Protocol.APP_HTTPS_1RTT, True) == pytest.approx(
            53.0, rel=0.15
        )

    def test_speedup_grows_with_ta_under_insa(self):
        small = speedup(median_scenario(100), Protocol.TRANS_1RTT, True)
        large = speedup(median_scenario(10_000), Protocol.TRANS_1RTT, True)
        assert large > small

    def test_speedup_shrinks_with_ta_without_insa(self):
        small = speedup(median_scenario(100), Protocol.TRANS_1RTT, False)
        large = speedup(median_scenario(10_000), Protocol.TRANS_1RTT, False)
        assert large < small


class TestHelpers:
    def test_latency_pair(self):
        pair = latency_pair(median_scenario(), Protocol.TRANS_1RTT, True)
        assert pair.speedup == pytest.approx(
            pair.baseline_ms / pair.snatch_ms
        )

    def test_speedup_table_rows(self):
        rows = speedup_table(median_scenario())
        assert len(rows) == 6  # 3 protocols x (insa on/off)
        assert all(row["speedup"] >= 1.0 for row in rows)
        assert {row["insa"] for row in rows} == {True, False}
