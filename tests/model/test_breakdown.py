"""Figure 1 time-cost breakdown anchors."""

import pytest

from repro.model.breakdown import (
    app_insa_breakdown,
    baseline_breakdown,
    figure1_scenario,
    trans_insa_breakdown,
)


class TestBaselineBreakdown:
    def test_total_matches_paper(self):
        assert baseline_breakdown().total_ms == pytest.approx(1008.3, abs=2.0)

    def test_pre_analytics_cost(self):
        """Data reaches the analytics server after ~508.3 ms."""
        breakdown = baseline_breakdown()
        assert breakdown.until("web -> analytics delivery") == pytest.approx(
            508.3, abs=2.0
        )

    def test_handshakes_total(self):
        breakdown = baseline_breakdown()
        handshakes = sum(
            step.duration_ms
            for step in breakdown.steps
            if "handshake" in step.label
        )
        assert handshakes == pytest.approx(97.8, abs=0.1)

    def test_processing_total(self):
        breakdown = baseline_breakdown()
        processing = sum(
            step.duration_ms
            for step in breakdown.steps
            if "processing" in step.label
        )
        assert processing == pytest.approx(378.2, abs=0.1)

    def test_unknown_step(self):
        with pytest.raises(KeyError):
            baseline_breakdown().until("nonexistent step")


class TestSnatchBreakdowns:
    def test_app_insa_total(self):
        """~80 % reduction: 1008.3 -> 228.6 ms."""
        assert app_insa_breakdown().total_ms == pytest.approx(228.6, abs=1.0)

    def test_trans_insa_total(self):
        """~95 % reduction: down to ~48 ms."""
        assert trans_insa_breakdown().total_ms == pytest.approx(48.0, abs=1.0)

    def test_reduction_fractions(self):
        base = baseline_breakdown().total_ms
        assert 1 - app_insa_breakdown().total_ms / base == pytest.approx(
            0.80, abs=0.03
        )
        assert 1 - trans_insa_breakdown().total_ms / base == pytest.approx(
            0.95, abs=0.02
        )

    def test_rows_render(self):
        rows = baseline_breakdown().rows()
        assert all(isinstance(label, str) and cost >= 0 for label, cost in rows)


class TestScenarioConsistency:
    def test_figure1_uses_measured_medians(self):
        p = figure1_scenario()
        assert p.d_ce == 6.7
        assert p.t_edge == 136.6
        assert p.t_web == 241.6
        assert p.d_wa == 32.3

    def test_custom_params_flow_through(self):
        p = figure1_scenario().with_analytics_time(100.0)
        assert baseline_breakdown(p).total_ms == pytest.approx(
            1008.3 - 400.0, abs=2.0
        )
