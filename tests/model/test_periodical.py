"""Periodical forwarding: the latency/bandwidth trade-off."""

import pytest

from repro.model.params import median_scenario
from repro.model.periodical import (
    AGG_PACKET_BYTES,
    aggregation_bandwidth_kbps,
    bandwidth_sweep,
    periodical_snatch_latency_ms,
    periodical_speedup,
)
from repro.model.speedup import Protocol, snatch_latency_ms, speedup


class TestLatency:
    def test_interval_zero_equals_per_packet(self):
        p = median_scenario()
        assert periodical_snatch_latency_ms(
            p, Protocol.TRANS_1RTT, 0.0
        ) == snatch_latency_ms(p, Protocol.TRANS_1RTT, True)

    def test_interval_adds_to_latency(self):
        p = median_scenario()
        base = periodical_snatch_latency_ms(p, Protocol.TRANS_1RTT, 0)
        assert periodical_snatch_latency_ms(
            p, Protocol.TRANS_1RTT, 100
        ) == base + 100

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            periodical_snatch_latency_ms(
                median_scenario(), Protocol.TRANS_1RTT, -1
            )


class TestSpeedupAnchors:
    """Figure 5(d): 18x at a 5 ms interval, 4.3x at 200 ms."""

    def test_5ms_interval(self):
        got = periodical_speedup(median_scenario(), Protocol.TRANS_1RTT, 5.0)
        assert got == pytest.approx(18.0, rel=0.15)

    def test_200ms_interval(self):
        got = periodical_speedup(median_scenario(), Protocol.TRANS_1RTT, 200.0)
        assert got == pytest.approx(4.3, rel=0.15)

    def test_monotone_decreasing_in_interval(self):
        p = median_scenario()
        speedups = [
            periodical_speedup(p, Protocol.TRANS_1RTT, i)
            for i in (5, 20, 50, 100, 200)
        ]
        assert speedups == sorted(speedups, reverse=True)

    def test_small_interval_approaches_per_packet(self):
        p = median_scenario()
        per_packet = speedup(p, Protocol.TRANS_1RTT, True)
        assert periodical_speedup(
            p, Protocol.TRANS_1RTT, 1.0
        ) == pytest.approx(per_packet, rel=0.05)


class TestBandwidth:
    """Figure 6(c): ~112 Kbps at <=5 ms intervals down to ~1 Kbps at
    500 ms, for 200 req/s."""

    def test_5ms_interval_112kbps(self):
        assert aggregation_bandwidth_kbps(5.0, 200.0) == pytest.approx(
            112.0, rel=0.05
        )

    def test_500ms_interval_1kbps(self):
        assert aggregation_bandwidth_kbps(500.0, 200.0) == pytest.approx(
            1.12, rel=0.05
        )

    def test_per_packet_mode(self):
        got = aggregation_bandwidth_kbps(0.0, 200.0)
        assert got == pytest.approx(200 * AGG_PACKET_BYTES * 8 / 1000.0)

    def test_interval_longer_than_gap_caps_rate(self):
        """With a 100 ms interval at 5 req/s, one packet per request."""
        assert aggregation_bandwidth_kbps(100.0, 5.0) == pytest.approx(
            5 * AGG_PACKET_BYTES * 8 / 1000.0
        )

    def test_monotone_decreasing(self):
        values = [
            aggregation_bandwidth_kbps(i, 200.0)
            for i in (5, 50, 100, 250, 500)
        ]
        assert values == sorted(values, reverse=True)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            aggregation_bandwidth_kbps(-1, 10)
        with pytest.raises(ValueError):
            aggregation_bandwidth_kbps(10, -1)

    def test_sweep_rows(self):
        rows = bandwidth_sweep([5, 500])
        assert rows[0]["bandwidth_kbps"] > rows[1]["bandwidth_kbps"]
        assert rows[0]["interval_ms"] == 5
