"""Shared pytest configuration for the repro test suite."""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--regen-goldens",
        action="store_true",
        default=False,
        help="rewrite golden conformance files from the current run "
        "instead of comparing against them",
    )


@pytest.fixture
def regen_goldens(request):
    """True when the run should rewrite golden files in place."""
    return request.config.getoption("--regen-goldens")
