"""Chaos coverage for the post-fast-path data plane.

The original chaos suite predates the batch/columnar entry points and
sharded AggSwitch banks; it only ever exercised the scalar loop on a
single bank.  These tests re-run the crash/loss scenarios with the
fast paths and shards engaged and require two things:

* every scenario still self-heals to a consistent, verified report;
* the run **fingerprint** — ground truth, final report, repair and
  lifecycle history — is byte-identical across backends and shard
  counts, because the execution backend is a performance choice, not a
  semantic one.
"""

import os

import pytest

from repro.chaos import ChaosHarness, ChaosScenario, standard_outage

BACKENDS = ("scalar", "batch", "columnar")

#: CI sweeps this (same knob as tests/chaos/test_chaos.py).
CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "7"))


def _run(seed=CHAOS_SEED, backend="scalar", agg_shards=1, scenario=None):
    harness = ChaosHarness(
        seed=seed, backend=backend, agg_shards=agg_shards
    )
    if scenario is not None:
        harness.apply(scenario)
    return harness.run()


def _outage():
    return ChaosScenario("outage").crash(
        "lark", at_ms=450.0, down_ms=220.0
    )


class TestLarkCrashOnFastPaths:
    @pytest.mark.parametrize("backend", ["batch", "columnar"])
    def test_kill_and_restart_mid_run_stays_consistent(self, backend):
        """The acceptance case: LarkSwitch killed and restarted
        mid-run while the data plane runs a fast path over sharded
        aggregation banks — the report must still verify."""
        result = _run(backend=backend, agg_shards=2, scenario=_outage())
        assert result.consistent
        assert result.fallback_events > 0  # the crash actually bit
        kinds = [(e[1], e[2]) for e in result.lifecycle]
        assert ("lark", "crash") in kinds
        assert ("lark", "restart") in kinds
        assert ("lark", "reenroll") in kinds

    def test_fingerprint_identical_across_backends(self):
        reference = _run(scenario=_outage()).fingerprint()
        for backend in ("batch", "columnar"):
            assert (
                _run(backend=backend, scenario=_outage()).fingerprint()
                == reference
            )

    def test_fingerprint_identical_across_shard_counts(self):
        reference = _run(scenario=_outage()).fingerprint()
        assert (
            _run(backend="columnar", agg_shards=3,
                 scenario=_outage()).fingerprint()
            == reference
        )


class TestStandardOutageOnFastPaths:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_standard_outage_self_heals(self, backend):
        result = _run(
            backend=backend, agg_shards=2, scenario=standard_outage()
        )
        assert result.consistent
        assert result.fallback_events > 0
        assert result.repairs
        assert all(r[3] for r in result.repairs)

    @pytest.mark.parametrize("seed", [0, 7, 9])
    def test_deterministic_per_seed_on_columnar_shards(self, seed):
        first = _run(
            seed=seed, backend="columnar", agg_shards=2,
            scenario=standard_outage(),
        )
        second = _run(
            seed=seed, backend="columnar", agg_shards=2,
            scenario=standard_outage(),
        )
        assert first.fingerprint() == second.fingerprint()


class TestReportLossOnFastPaths:
    def test_heavy_loss_repaired_on_columnar_sharded(self):
        result = _run(
            seed=1, backend="columnar", agg_shards=2,
            scenario=ChaosScenario("lossy").link_faults(
                "lark", "agg", drop=0.5
            ),
        )
        assert result.reports_lost > 0
        assert result.repairs
        assert result.consistent


class TestValidation:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            ChaosHarness(backend="gpu")
