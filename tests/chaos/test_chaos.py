"""End-to-end chaos: injected fault -> degrade -> detect -> repair.

The acceptance scenario (``standard_outage``) combines a LarkSwitch
crash with self-healing restart, 5 % periodical-report loss, and one
lost controller RPC during re-enrollment — and must end consistent,
with zero manual ``check()`` calls, bit-for-bit deterministic per seed.

``CHAOS_SEED`` (env) reruns the deterministic suite under other seeds;
the CI chaos job sweeps a small matrix of them.
"""

import os
import random

import pytest

from repro.chaos import (
    ChaosEvent,
    ChaosHarness,
    ChaosScenario,
    DeviceLifecycle,
    standard_outage,
)
from repro.core.aggswitch import AggSwitch
from repro.core.controller import SnatchController
from repro.core.edge_service import SnatchEdgeServer
from repro.core.larkswitch import LarkSwitch
from repro.core.rpc import RpcBus
from repro.core.schema import Feature
from repro.core.stats import StatKind, StatSpec
from repro.net.simulator import Simulator

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "7"))


def _bus_deployment(seed=0, **bus_kwargs):
    """Controller + one device per tier riding a retrying RpcBus."""
    defaults = dict(default_delay_ms=10, timeout_ms=45, max_retries=5,
                    seed=seed)
    defaults.update(bus_kwargs)
    bus = RpcBus(Simulator(), **defaults)
    controller = SnatchController(seed=seed, bus=bus)
    agg = AggSwitch("agg", random.Random(1))
    lark = LarkSwitch("lark", random.Random(2))
    edge = SnatchEdgeServer("edge", random.Random(3))
    controller.attach_agg_switch(agg)
    controller.attach_lark_switch(lark)
    controller.attach_edge_server(edge)
    return bus, controller, agg, lark, edge


def _add_app(controller):
    return controller.add_application(
        "ads",
        [Feature.categorical("gender", ["f", "m", "x"])],
        [StatSpec("by_gender", StatKind.COUNT_BY_CLASS, "gender")],
    )


class TestPushOrderingUnderRetry:
    """Tiered ack barriers: AggSwitch -> LarkSwitch -> edge survives
    control-plane loss and retries (satellite test b)."""

    def _register_calls(self, bus, device):
        return [
            r for r in bus.log
            if r.device == device and r.method == "register_application"
        ]

    def test_ordering_without_faults(self):
        bus, controller, agg, lark, edge = _bus_deployment()
        handle = _add_app(controller)
        bus.quiesce(raise_on_error=True)
        (agg_call,) = self._register_calls(bus, "agg")
        (lark_call,) = self._register_calls(bus, "lark")
        (edge_call,) = self._register_calls(bus, "edge")
        assert agg_call.acked_at_ms <= lark_call.sent_at_ms
        assert lark_call.acked_at_ms <= edge_call.sent_at_ms
        assert controller.is_consistent("ads")
        assert handle.app_id in agg.registered_app_ids()

    def test_lost_agg_push_delays_lower_tiers(self):
        """A dropped tier-0 RPC must delay the lark/edge pushes past
        the retried ack — never reorder them."""
        bus, controller, _agg, _lark, _edge = _bus_deployment()
        bus.drop_next("agg")
        _add_app(controller)
        bus.quiesce(raise_on_error=True)
        assert bus.retries() >= 1
        (agg_call,) = self._register_calls(bus, "agg")
        (lark_call,) = self._register_calls(bus, "lark")
        (edge_call,) = self._register_calls(bus, "edge")
        assert agg_call.attempts == 2
        assert agg_call.acked_at_ms <= lark_call.sent_at_ms
        assert lark_call.acked_at_ms <= edge_call.sent_at_ms

    def test_ordering_under_sustained_loss(self):
        bus, controller, _agg, _lark, _edge = _bus_deployment(seed=11)
        for name in ("agg", "lark", "edge"):
            bus.set_loss(name, 0.4)
        _add_app(controller)
        bus.quiesce(raise_on_error=True)
        for upper, lower in (("agg", "lark"), ("lark", "edge")):
            (up,) = self._register_calls(bus, upper)
            (low,) = self._register_calls(bus, lower)
            assert up.acked_at_ms <= low.sent_at_ms
        assert controller.is_consistent("ads")

    def test_controller_log_preserves_tier_order(self):
        bus, controller, _agg, _lark, _edge = _bus_deployment()
        bus.drop_next("lark", 2)
        _add_app(controller)
        bus.quiesce(raise_on_error=True)
        devices = [entry.device for entry in controller.rpc_log]
        assert devices == ["agg", "lark", "edge"]


class TestCrashRecovery:
    def test_crash_loses_state_and_reenrollment_restores_it(self):
        bus, controller, _agg, lark, _edge = _bus_deployment()
        handle = _add_app(controller)
        bus.quiesce(raise_on_error=True)
        lifecycle = DeviceLifecycle(bus.sim, controller)
        lifecycle.crash("lark", down_ms=100.0)
        assert not lark.alive
        assert handle.app_id not in lark.registered_app_ids()
        bus.quiesce(raise_on_error=True)
        assert lark.alive
        assert handle.app_id in lark.registered_app_ids()
        kinds = [e.kind for e in lifecycle.events]
        assert kinds == ["crash", "restart", "reenroll"]
        assert lifecycle.crash_count("lark") == 1

    def test_crash_is_idempotent(self):
        bus, controller, _agg, _lark, _edge = _bus_deployment()
        _add_app(controller)
        bus.quiesce(raise_on_error=True)
        lifecycle = DeviceLifecycle(bus.sim, controller)
        lifecycle.crash("lark")
        lifecycle.crash("lark")  # no-op: already down
        assert lifecycle.crash_count("lark") == 1

    def test_dropped_reenrollment_push_is_retried(self):
        """The acceptance scenario's 'one lost controller RPC': the
        re-enrollment push is dropped once and the retry carries it."""
        bus, controller, _agg, lark, _edge = _bus_deployment()
        handle = _add_app(controller)
        bus.quiesce(raise_on_error=True)
        retries_before = bus.retries()
        lifecycle = DeviceLifecycle(bus.sim, controller)
        lifecycle.crash("lark")
        bus.drop_next("lark")
        lifecycle.restart("lark")
        bus.quiesce(raise_on_error=True)
        assert bus.retries() > retries_before
        assert handle.app_id in lark.registered_app_ids()

    def test_unknown_device_rejected(self):
        bus, controller, _agg, _lark, _edge = _bus_deployment()
        lifecycle = DeviceLifecycle(bus.sim, controller)
        with pytest.raises(KeyError):
            lifecycle.crash("ghost")


class TestScenarioDsl:
    def test_builders_chain(self):
        scenario = (
            ChaosScenario("s")
            .crash("lark", at_ms=100.0, down_ms=50.0)
            .link_faults("lark", "agg", drop=0.1)
            .drop_rpc("lark", at_ms=140.0)
            .rpc_loss("edge", 0.2)
        )
        assert [e.action for e in scenario.events] == [
            "crash", "link_faults", "drop_rpc", "rpc_loss",
        ]

    def test_standard_outage_shape(self):
        scenario = standard_outage(crash_at_ms=450.0, down_ms=220.0)
        actions = {e.action for e in scenario.events}
        assert actions == {"crash", "link_faults", "drop_rpc"}
        (crash,) = [e for e in scenario.events if e.action == "crash"]
        assert crash.at_ms == 450.0

    def test_unknown_action_rejected(self):
        harness = ChaosHarness(seed=0)
        scenario = ChaosScenario("bad")
        scenario.events.append(ChaosEvent(0.0, "explode", {}))
        with pytest.raises(ValueError):
            scenario.apply(harness)


class TestReportLossRepair:
    """Satellite test a: N% of periodical UDP reports lost, drift
    detected and repaired by the self-scheduled verification loop."""

    def test_heavy_loss_detected_and_repaired(self):
        harness = ChaosHarness(seed=1)
        harness.apply(ChaosScenario("lossy").link_faults(
            "lark", "agg", drop=0.5
        ))
        result = harness.run()
        assert result.reports_lost > 0  # faults actually fired
        assert result.repairs  # drift detected
        assert all(r[3] for r in result.repairs)  # each reconciled
        assert result.consistent
        assert result.checks_run > 0

    def test_repair_lands_within_one_verification_period(self):
        """Every detected drift is repaired in the same tick it is
        detected, so no two consecutive checks both see drift from a
        single loss burst."""
        harness = ChaosHarness(seed=1)
        harness.apply(ChaosScenario("lossy").link_faults(
            "lark", "agg", drop=0.5
        ))
        result = harness.run()
        for at_ms, _count, _resynced, reconciled in result.repairs:
            assert reconciled
            assert at_ms <= harness.duration_ms + harness.verify_margin_ms

    def test_duplicates_also_repaired(self):
        harness = ChaosHarness(seed=2)
        harness.apply(ChaosScenario("dup").link_faults(
            "lark", "agg", duplicate=0.8
        ))
        result = harness.run()
        assert result.reports_duplicated > 0
        assert result.consistent

    def test_no_faults_no_repairs(self):
        result = ChaosHarness(seed=5).run()
        assert result.reports_lost == 0
        assert result.repairs == []
        assert result.consistent
        assert result.checks_run > 0


class TestFallback:
    """Satellite test c: LarkSwitch down -> application-layer cookie
    processing at the edge keeps the aggregate flowing."""

    def test_crash_degrades_to_app_layer_and_stays_consistent(self):
        harness = ChaosHarness(seed=3)
        harness.apply(
            ChaosScenario("outage").crash("lark", at_ms=450.0, down_ms=220.0)
        )
        result = harness.run()
        assert result.fallback_events > 0
        assert result.fallback_events < result.events_total
        kinds = [(e[1], e[2]) for e in result.lifecycle]
        assert ("lark", "crash") in kinds
        assert ("lark", "restart") in kinds
        assert ("lark", "reenroll") in kinds
        assert result.consistent

    def test_no_crash_no_fallback(self):
        result = ChaosHarness(seed=3).run()
        assert result.fallback_events == 0


class TestAcceptance:
    """The issue's acceptance scenario, end to end."""

    def _run(self, seed):
        harness = ChaosHarness(seed=seed)
        harness.apply(standard_outage())
        return harness.run()

    def test_standard_outage_self_heals(self):
        result = self._run(CHAOS_SEED)
        assert result.consistent
        assert result.checks_run > 0  # verification self-scheduled
        assert result.rpc_retries >= 1  # the dropped RPC was retried
        assert result.rpc_failures == 0  # ... and eventually acked
        assert result.fallback_events > 0  # degraded while lark was down
        assert result.repairs  # drift detected and repaired

    def test_deterministic_across_runs(self):
        first = self._run(CHAOS_SEED)
        second = self._run(CHAOS_SEED)
        assert first.fingerprint() == second.fingerprint()
        assert first.final_report == second.final_report

    def test_different_seeds_differ(self):
        assert (
            self._run(0).fingerprint() != self._run(1).fingerprint()
        )

    def test_report_loss_seed_still_heals(self):
        """A seed where the 5 % drop actually fires on a report."""
        result = self._run(9)
        assert result.reports_lost >= 1
        assert result.consistent

    def test_harness_runs_once(self):
        harness = ChaosHarness(seed=0)
        harness.run()
        with pytest.raises(RuntimeError):
            harness.run()
