"""Chaos and soak coverage for the persistent worker tier.

Two promises a long-lived ring-fed fleet must keep under fire:

* **crash-invisible results** — SIGKILL a worker mid-epoch (via
  :class:`ShardFaultPlan` injection inside the child) and the
  supervisor's checkpoint-replay must reconverge on byte-identical
  snapshots, reports and per-shard counters vs the fault-free run;
* **resource-tight lifecycle** — hundreds of epochs through one fleet
  leave the shared-memory namespace exactly as they found it: no
  leaked segments after clean shutdown, after SIGKILL + respawn, nor
  after an executor-level fallback reaped a dead fleet.

Everything is seeded and deterministic; the module skips where POSIX
shared memory is unavailable.
"""

import os

import pytest

from repro.chaos import ShardFaultPlan
from repro.obs.registry import MetricsRegistry
from repro.testbed.executor import ShardExecutor, ShardSpec
from repro.testbed.placement import PlacementController
from repro.testbed.shm_ring import shared_memory_available
from repro.testbed.supervisor import ShardSupervisor
from repro.testbed.worker import ShardWorker

from tests.differential.workloads import APP_ID, DifferentialWorkload

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="POSIX shared memory unavailable",
)

_SHM_DIR = "/dev/shm"


def _shm_entries():
    """Current shared-memory segment names (empty set when the
    platform hides them — the leak assertions then degrade to no-ops
    rather than false alarms)."""
    try:
        return set(os.listdir(_SHM_DIR))
    except OSError:  # pragma: no cover - non-Linux shm namespaces
        return set()


@pytest.fixture
def shm_leakcheck():
    before = _shm_entries()
    yield
    leaked = _shm_entries() - before
    assert not leaked, "leaked shared-memory segments: %s" % sorted(leaked)


def _agg_spec(wl):
    return ShardSpec(
        kind="agg", app_id=APP_ID, schema=wl.schema, key=wl.key,
        specs=tuple(wl.specs), seed=7,
    )


def _supervisor(spec, plan=None, **kwargs):
    defaults = dict(
        shards=2,
        processes=0,
        backend="columnar",
        chunk_size=64,
        checkpoint_batches=2,
        job_timeout_s=30.0,
        max_retries=3,
        backoff_base_s=0.0,
        fault_plan=plan,
        sleep=lambda _s: None,
        registry=MetricsRegistry(),
        persistent=True,
    )
    defaults.update(kwargs)
    return ShardSupervisor(spec, **defaults)


def _equal(a, b):
    return (
        a.snapshot == b.snapshot
        and a.report == b.report
        and a.shard_packets == b.shard_packets
        and a.shard_folded == b.shard_folded
    )


class TestKillMidEpoch:
    """SIGKILL lands inside the child while an epoch is in flight."""

    @pytest.mark.parametrize("seed", (3, 19))
    def test_recovery_is_byte_identical(self, seed, shm_leakcheck):
        wl = DifferentialWorkload(seed=11)
        spec = _agg_spec(wl)
        packets = wl.payloads("zipfian", 1200)
        baseline = _supervisor(spec).run(packets)
        assert baseline.used_workers, baseline.fallback_cause
        assert baseline.crashes == 0 and baseline.worker_respawns == 0

        plan = ShardFaultPlan(seed=seed).kill_shard(1, at_batch=3)
        chaos = _supervisor(spec, plan=plan).run(packets)
        assert chaos.used_workers, chaos.fallback_cause
        assert chaos.crashes >= 1
        assert chaos.worker_respawns >= 1
        assert chaos.recovered_packets > 0
        assert _equal(chaos, baseline)

    def test_kill_in_first_epoch_restarts_from_empty(self, shm_leakcheck):
        wl = DifferentialWorkload(seed=11)
        spec = _agg_spec(wl)
        packets = wl.payloads("uniform", 800)
        baseline = _supervisor(spec).run(packets)
        plan = ShardFaultPlan().kill_shard(0, at_batch=0)
        chaos = _supervisor(spec, plan=plan).run(packets)
        assert chaos.used_workers and chaos.worker_respawns >= 1
        assert _equal(chaos, baseline)

    def test_repeated_kills_exhaust_into_salvage(self, shm_leakcheck):
        """A shard that dies every attempt exhausts its retries; the
        supervisor salvages in-process and the fleet still closes
        without leaking its rings."""
        wl = DifferentialWorkload(seed=11)
        spec = _agg_spec(wl)
        packets = wl.payloads("uniform", 800)
        baseline = _supervisor(spec).run(packets)
        plan = ShardFaultPlan().kill_shard(1, at_batch=2, times=10)
        chaos = _supervisor(spec, plan=plan, max_retries=2).run(packets)
        assert chaos.salvaged == [1]
        assert _equal(chaos, baseline)

    def test_kill_composes_with_degradation(self, shm_leakcheck):
        wl = DifferentialWorkload(seed=11)
        spec = _agg_spec(wl)
        packets = wl.payloads("adversarial", 1200)
        plan = (
            ShardFaultPlan(seed=5)
            .degrade_backend(at_epoch=2, to="batch")
            .kill_shard(1, at_batch=3)
        )
        fault_free = ShardFaultPlan(seed=5).degrade_backend(
            at_epoch=2, to="batch"
        )
        baseline = _supervisor(spec, plan=fault_free).run(packets)
        chaos = _supervisor(spec, plan=plan).run(packets)
        assert chaos.crashes >= 1
        assert chaos.backends == baseline.backends
        assert _equal(chaos, baseline)


class TestKillDuringRebalance:
    """SIGKILL lands while the placement controller is live: the crash
    replay must re-derive the same epoch's partition map (version and
    all) and reconverge on the static runtime's observable state."""

    def _elastic(self):
        return PlacementController(
            shards=2,
            target_imbalance=1.05,
            rebalance_margin=0.05,
            cooldown_epochs=0,
            registry=MetricsRegistry(),
        )

    @pytest.mark.parametrize("seed", (3, 19))
    def test_crash_mid_rebalanced_run_is_byte_identical(
        self, seed, shm_leakcheck
    ):
        wl = DifferentialWorkload(seed=11)
        spec = _agg_spec(wl)
        # The hash adversary pins most packets on one shard, so the
        # controller is guaranteed to move buckets mid-run.
        packets = wl.skewed_payloads(1200, shards=2)
        static = _supervisor(spec).run(packets)

        plan = ShardFaultPlan(seed=seed).kill_shard(1, at_batch=3)
        controller = self._elastic()
        chaos = _supervisor(
            spec, plan=plan, placement=controller
        ).run(packets)
        assert chaos.used_workers, chaos.fallback_cause
        assert chaos.crashes >= 1
        assert chaos.recovered_packets > 0
        # The controller actually moved buckets before/around the kill.
        assert controller.rebalances >= 1
        assert len(set(chaos.map_versions)) >= 2
        # Per-shard counts legitimately differ once buckets move; the
        # merged snapshot and report are the placement-proof comparands.
        assert chaos.snapshot == static.snapshot
        assert chaos.report == static.report

    def test_crash_during_elastic_resize_is_byte_identical(
        self, shm_leakcheck
    ):
        """The kill lands while target_shard_load is reshaping the
        fleet: replay must respawn into the same post-resize map."""
        wl = DifferentialWorkload(seed=11)
        spec = _agg_spec(wl)
        packets = wl.payloads("zipfian", 1200)
        static = _supervisor(spec).run(packets)
        controller = PlacementController(
            shards=2,
            target_shard_load=100.0,
            max_shards=4,
            cooldown_epochs=0,
            registry=MetricsRegistry(),
        )
        plan = ShardFaultPlan(seed=7).kill_shard(0, at_batch=4)
        chaos = _supervisor(
            spec, plan=plan, placement=controller
        ).run(packets)
        assert chaos.used_workers, chaos.fallback_cause
        assert chaos.crashes >= 1
        assert controller.resizes >= 1
        assert chaos.final_shards == controller.map.shards
        assert chaos.snapshot == static.snapshot
        assert chaos.report == static.report


class TestExecutorFallback:
    def test_dead_fleet_falls_back_and_cleans_up(self, shm_leakcheck):
        """An externally SIGKILLed worker (kill -9, OOM) must not fail
        the run: the executor reaps the fleet, reprocesses through the
        stateless path, and leaks nothing."""
        wl = DifferentialWorkload(seed=23)
        spec = _agg_spec(wl)
        packets = wl.payloads("uniform", 400)
        reference = ShardExecutor(
            spec, shards=2, processes=1, backend="columnar"
        ).run(packets)
        with ShardExecutor(
            spec, shards=2, backend="columnar", persistent=True
        ) as executor:
            warm = executor.run(packets)
            assert warm.used_workers
            executor._workers[1].kill()
            recovered = executor.run(packets)
        assert not recovered.used_workers
        assert recovered.fallback_cause
        assert recovered.snapshot == reference.snapshot
        assert recovered.report == reference.report


class TestSoak:
    def test_200_epoch_soak_leaks_nothing(self, shm_leakcheck):
        """>= 200 supervised epochs through one persistent fleet:
        segment namespace stays flat, ring metadata returns to empty
        after every drain (stable slot accounting), zero respawns."""
        wl = DifferentialWorkload(seed=37)
        spec = _agg_spec(wl)
        packets = wl.payloads("uniform", 800)
        supervisor = _supervisor(
            spec, shards=1, chunk_size=4, checkpoint_batches=1,
        )
        during = []
        original = supervisor._persistent_epoch

        def spy(state, worker, bases):
            original(state, worker, bases)
            meta = worker.ring.snapshot()
            during.append((meta["head"] - meta["tail"], len(meta["seqs"])))

        supervisor._persistent_epoch = spy
        result = supervisor.run(packets)
        assert result.used_workers, result.fallback_cause
        assert sum(result.epochs) >= 200
        assert result.crashes == 0 and result.worker_respawns == 0
        # Every epoch fully drained its ring and the slot count never
        # moved — the fleet could run forever at constant memory.
        assert len(during) >= 200
        assert set(during) == {(0, during[0][1])}

    def test_soak_with_periodic_kills_leaks_nothing(self, shm_leakcheck):
        """Respawns replace segments; they must also retire the old
        ones, even though the dying child never ran its teardown."""
        wl = DifferentialWorkload(seed=41)
        spec = _agg_spec(wl)
        packets = wl.payloads("uniform", 800)
        baseline = _supervisor(
            spec, shards=1, chunk_size=8, checkpoint_batches=2,
        ).run(packets)
        plan = (
            ShardFaultPlan()
            .kill_shard(0, at_batch=10)
            .kill_shard(0, at_batch=30)
            .kill_shard(0, at_batch=60)
        )
        chaos = _supervisor(
            spec, shards=1, chunk_size=8, checkpoint_batches=2, plan=plan,
        ).run(packets)
        assert chaos.worker_respawns >= 3
        assert _equal(chaos, baseline)

    def test_worker_close_after_kill_unlinks_segment(self, shm_leakcheck):
        """Direct worker-level check: create, kill -9, close —
        the ring segment must be unlinked by the parent."""
        wl = DifferentialWorkload(seed=59)
        spec = _agg_spec(wl)
        worker = ShardWorker(spec, 0, backend="columnar")
        try:
            assert worker.alive
            worker.kill()
            assert worker.wait_dead(5.0)
        finally:
            worker.close()
