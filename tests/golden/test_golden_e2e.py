"""Golden end-to-end conformance: the full pipeline, byte-compared.

One pinned scenario — clients -> web -> LarkSwitch -> AggSwitch ->
analytics over the DES network, with aggregation-link loss *and* the
batched data plane (sharded AggSwitch) enabled — is serialized to
canonical JSON and compared byte-for-byte against a checked-in golden
file.  Any drift in the simulator, the crypto, the statistics layout,
the batch fast path, or the metrics namespace shows up as a diff here.

Regenerate deliberately with::

    PYTHONPATH=src python -m pytest tests/golden --regen-goldens
"""

import json
import os

from repro.obs import MetricsRegistry, scoped_registry
from repro.testbed.config import Scheme, TestbedConfig
from repro.testbed.network_testbed import NetworkTestbed

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_e2e.json")


def _canonical(obj):
    """JSON-ready form: tuple dict keys become 'a|b' strings, floats
    are kept as repr-stable Python floats."""
    if isinstance(obj, dict):
        return {
            "|".join(map(str, k)) if isinstance(k, tuple) else str(k):
                _canonical(v)
            for k, v in obj.items()
        }
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    return obj


def run_pinned_scenario():
    """The frozen scenario behind the golden file.  Changing anything
    here invalidates the golden — regenerate and review the diff."""
    config = TestbedConfig(
        scheme=Scheme.TRANS_1RTT,
        insa=True,
        requests_per_second=30.0,
        duration_ms=2000.0,
    )
    with scoped_registry(MetricsRegistry()) as registry:
        testbed = NetworkTestbed(
            config=config,
            agg_loss_rate=0.2,      # faults on: lossy lark->agg link
            batch_window_ms=5.0,    # batched data plane
            batch_max=64,
            agg_shards=3,           # sharded register banks
        )
        result = testbed.run()
        metrics = registry.snapshot()
    return {
        "scenario": {
            "scheme": config.scheme.value,
            "insa": config.insa,
            "requests_per_second": config.requests_per_second,
            "duration_ms": config.duration_ms,
            "agg_loss_rate": 0.2,
            "batch_window_ms": 5.0,
            "batch_max": 64,
            "agg_shards": 3,
        },
        "completed_requests": len(result.latencies_ms),
        "latencies_ms": result.latencies_ms,
        "aggregation_packets": result.aggregation_packets,
        "aggregation_bytes": result.aggregation_bytes,
        "lost_packets": result.lost_packets,
        "report": _canonical(result.report),
        "reference": _canonical(result.reference),
        "metrics": _canonical(metrics),
    }


def _serialize(payload):
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def test_golden_e2e_conformance(regen_goldens):
    payload = run_pinned_scenario()
    serialized = _serialize(payload)
    if regen_goldens or not os.path.exists(GOLDEN_PATH):
        with open(GOLDEN_PATH, "w") as fh:
            fh.write(serialized)
        if regen_goldens:
            return
    with open(GOLDEN_PATH) as fh:
        golden = fh.read()
    assert serialized == golden, (
        "end-to-end output drifted from the golden file; if the change "
        "is intentional, rerun with --regen-goldens and review the diff"
    )


def test_golden_scenario_is_self_consistent():
    """The pinned scenario itself must stay healthy: deterministic
    across runs and internally consistent despite the lossy link."""
    first = run_pinned_scenario()
    second = run_pinned_scenario()
    assert first == second
    assert first["completed_requests"] > 0
    assert first["aggregation_packets"] > 0
    # agg_loss_rate=0.2 must actually drop something, else the golden
    # is not exercising the fault path it claims to.
    assert first["lost_packets"] > 0
