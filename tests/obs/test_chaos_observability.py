"""End-to-end acceptance: one chaos run produces a dump holding
pipeline, RPC, fault-injection and chaos-phase series, with span
timestamps consistent with ``Simulator.now`` — and two identical
seeded runs dump byte-identical output."""

from repro.chaos import ChaosHarness, standard_outage
from repro.obs import get_registry, parse_jsonl

SEED = 9


def _run(seed=SEED):
    harness = ChaosHarness(seed=seed)
    harness.apply(standard_outage())
    result = harness.run()
    return harness, result


class TestDumpCoverage:
    def test_all_required_series_present(self):
        harness, result = _run()
        records = parse_jsonl(harness.metrics_jsonl())
        names = {r["name"] for r in records if r["kind"] != "span"}
        prefixes = {name.split(".", 1)[0] for name in names}
        # Switch pipeline, control-plane RPC, injected link faults and
        # the chaos phases all landed in one dump.
        assert {"pipeline", "rpc", "faults", "chaos",
                "repair", "lifecycle", "lark", "agg"} <= prefixes
        # Spot checks against the workload the scenario scripted.
        values = {
            r["name"]: r.get("value") for r in records
            if r["kind"] == "counter"
        }
        assert values["chaos.events"] == result.events_total > 0
        assert values["chaos.reports_sent"] == result.reports_sent > 0
        assert values["lifecycle.crashes"] == 1
        assert values["rpc.sends"] > 0
        assert sum(
            v for n, v in values.items()
            if n.startswith("faults.") and n.endswith(".drops")
        ) == result.reports_lost > 0

    def test_latency_histogram_populated(self):
        harness, _result = _run()
        records = parse_jsonl(harness.metrics_jsonl())
        hists = [r for r in records if r["kind"] == "histogram"]
        assert any(
            r["name"].endswith(".latency_us") and r["count"] > 0
            for r in hists
        )

    def test_harness_registry_is_isolated(self):
        """A harness meters into its own registry, not the process
        default — two experiments never cross-contaminate."""
        before = len(get_registry())
        harness, _result = _run()
        assert "chaos.events" in harness.registry
        assert len(get_registry()) == before


class TestSpanTimestamps:
    def test_phases_consistent_with_simulator_clock(self):
        harness, _result = _run()
        final_now = harness.sim.now
        spans = harness.tracer.finished_spans()
        assert spans, "chaos run produced no spans"
        for span in spans:
            assert 0.0 <= span.start_ms <= span.end_ms <= final_now

        (run,) = harness.tracer.find("chaos.run")
        assert run.start_ms == 0.0
        assert run.end_ms == final_now

        # standard_outage crashes the lark at 450 ms for 220 ms.
        (inject,) = harness.tracer.find("chaos.inject")
        assert inject.start_ms == inject.end_ms == 450.0
        (outage,) = harness.tracer.find("chaos.outage")
        assert outage.start_ms == 450.0
        assert outage.duration_ms == 220.0
        assert outage.parent_id == run.span_id

        # Drift opens when the repair loop first sees a discrepancy
        # and repairs fire inside the drift window.
        drift = harness.tracer.find("chaos.drift")
        repairs = harness.tracer.find("chaos.repair")
        assert drift and repairs
        for repair in repairs:
            assert repair.parent_id == run.span_id

    def test_every_span_is_finished_after_run(self):
        harness, _result = _run()
        assert harness.tracer.finished_spans() == harness.tracer.spans


class TestDeterminism:
    def test_identical_seeds_dump_identical_bytes(self):
        """The headline regression for the QuantileCurve/global-random
        fixes: a fully metered run is reproducible bit-for-bit."""
        first, first_result = _run(seed=SEED)
        second, second_result = _run(seed=SEED)
        assert first.metrics_jsonl() == second.metrics_jsonl()
        assert first_result.fingerprint() == second_result.fingerprint()

    def test_different_seeds_dump_different_bytes(self):
        first, _ = _run(seed=7)
        second, _ = _run(seed=9)
        assert first.metrics_jsonl() != second.metrics_jsonl()
