"""Sim-time tracer: spans clocked by ``Simulator.now``, nesting, IDs."""

import pytest

from repro.net.simulator import Simulator
from repro.obs import Tracer


def _manual_clock():
    """A mutable clock: (tracer, advance) with advance(t) setting now."""
    state = [0.0]
    tracer = Tracer(lambda: state[0])
    return tracer, lambda t: state.__setitem__(0, t)


class TestSpanLifecycle:
    def test_start_and_finish_stamp_the_clock(self):
        tracer, advance = _manual_clock()
        advance(10.0)
        span = tracer.start("outage")
        advance(35.0)
        tracer.finish(span)
        assert span.start_ms == 10.0
        assert span.end_ms == 35.0
        assert span.duration_ms == 25.0
        assert span.finished

    def test_unfinished_span_has_no_duration(self):
        tracer, _advance = _manual_clock()
        span = tracer.start("open")
        assert not span.finished
        with pytest.raises(ValueError):
            span.duration_ms

    def test_double_finish_rejected(self):
        tracer, _advance = _manual_clock()
        span = tracer.finish(tracer.start("x"))
        with pytest.raises(ValueError, match="already finished"):
            tracer.finish(span)

    def test_finish_cannot_precede_start(self):
        tracer, advance = _manual_clock()
        advance(50.0)
        span = tracer.start("x")
        advance(40.0)  # a broken clock going backwards
        with pytest.raises(ValueError, match="before it starts"):
            tracer.finish(span)

    def test_event_is_a_zero_duration_span(self):
        tracer, advance = _manual_clock()
        advance(7.0)
        span = tracer.event("inject", fault="crash")
        assert span.start_ms == span.end_ms == 7.0
        assert span.attributes == {"fault": "crash"}

    def test_finish_merges_attributes(self):
        tracer, _advance = _manual_clock()
        span = tracer.start("x", a=1)
        tracer.finish(span, b=2)
        assert span.attributes == {"a": 1, "b": 2}


class TestIdsAndNesting:
    def test_span_ids_are_sequential_from_one(self):
        tracer, _advance = _manual_clock()
        spans = [tracer.start(str(i)) for i in range(3)]
        assert [s.span_id for s in spans] == [1, 2, 3]

    def test_with_span_nests_automatically(self):
        tracer, _advance = _manual_clock()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert tracer.children_of(outer) == [inner]

    def test_start_inside_with_span_inherits_parent(self):
        tracer, _advance = _manual_clock()
        with tracer.span("root") as root:
            child = tracer.start("child")
        assert child.parent_id == root.span_id

    def test_explicit_parent_wins(self):
        tracer, _advance = _manual_clock()
        other = tracer.start("other")
        with tracer.span("root"):
            child = tracer.start("child", parent=other)
        assert child.parent_id == other.span_id

    def test_find_and_finished_spans(self):
        tracer, _advance = _manual_clock()
        open_span = tracer.start("phase")
        done = tracer.event("phase")
        assert tracer.find("phase") == [open_span, done]
        assert tracer.finished_spans() == [done]

    def test_clear_resets_spans_and_ids(self):
        tracer, _advance = _manual_clock()
        tracer.event("x")
        tracer.clear()
        assert tracer.spans == []
        assert tracer.start("y").span_id == 1

    def test_snapshot_sorts_attributes(self):
        tracer, _advance = _manual_clock()
        span = tracer.event("x", zebra=1, alpha=2)
        snap = span.snapshot()
        assert snap["kind"] == "span"
        assert list(snap["attributes"]) == ["alpha", "zebra"]


class TestSimulatorClock:
    def test_spans_follow_simulator_time(self):
        """The acceptance-criteria shape: a span opened in one
        scheduled event and closed in another carries exactly the
        simulator timestamps of those events."""
        sim = Simulator()
        tracer = Tracer(sim)
        holder = {}
        sim.schedule(450, lambda: holder.update(
            span=tracer.start("outage", device="lark")))
        sim.schedule(670, lambda: tracer.finish(holder["span"]))
        sim.run()
        span = holder["span"]
        assert span.start_ms == 450.0
        assert span.end_ms == 670.0
        assert span.duration_ms == 220.0
        assert span.end_ms <= sim.now

    def test_tracer_now_reads_the_simulator(self):
        sim = Simulator()
        tracer = Tracer(sim)
        sim.schedule(12, lambda: None)
        sim.run()
        assert tracer.now() == sim.now == 12.0
