"""Hot-path instrumentation: pipeline stages, fault model, LarkSwitch.

Each test injects a fresh :class:`MetricsRegistry` so assertions see
exactly the series of the component under test (and, implicitly, that
instrumented components honour the ``registry=`` argument instead of
writing to the process default).
"""

import random
from types import SimpleNamespace

from repro.core.larkswitch import LarkSwitch
from repro.core.schema import CookieSchema, Feature
from repro.core.stats import StatKind, StatSpec
from repro.core.transport_cookie import TransportCookieCodec
from repro.net.faults import FaultModel
from repro.obs import DEFAULT_LATENCY_EDGES_US, MetricsRegistry
from repro.switch.pipeline import SwitchPipeline
from repro.switch.tables import (
    MatchActionTable,
    MatchKey,
    MatchKind,
    TableEntry,
)


def _classifier_pipeline(registry):
    """Two stages: stage 0 matches app==7, stage 1 never matches."""
    pipe = SwitchPipeline("t", registry=registry)
    classify = MatchActionTable(
        "classify", [MatchKey("app", MatchKind.EXACT, 8)]
    )
    classify.insert(TableEntry(match_values=(7,), action="mark"))
    pipe.add_table(stage=0, table=classify)
    pipe.add_table(
        stage=1,
        table=MatchActionTable(
            "never", [MatchKey("app", MatchKind.EXACT, 8)]
        ),
    )
    pipe.register_action("mark", lambda p, phv, params: None)
    return pipe


class TestPipelineMetrics:
    def test_per_stage_hits_and_misses(self):
        registry = MetricsRegistry()
        pipe = _classifier_pipeline(registry)
        pipe.process({"app": 7})  # stage0 hit, stage1 miss
        pipe.process({"app": 9})  # stage0 miss, stage1 miss
        assert registry.value("pipeline.t.packets") == 2
        assert registry.value("pipeline.t.stage00.hits") == 1
        assert registry.value("pipeline.t.stage00.misses") == 1
        assert registry.value("pipeline.t.stage01.misses") == 2
        assert registry.value("pipeline.t.drops") == 0

    def test_drop_counted_and_later_stages_skipped(self):
        registry = MetricsRegistry()
        pipe = _classifier_pipeline(registry)
        pipe.register_action(
            "kill", lambda p, phv, params: setattr(phv, "drop", True)
        )
        killer = MatchActionTable(
            "killer", [MatchKey("app", MatchKind.EXACT, 8)]
        )
        killer.insert(TableEntry(match_values=(7,), action="kill"))
        pipe.stages[0].add_table(killer)
        pipe.process({"app": 7})
        assert registry.value("pipeline.t.drops") == 1
        # The drop in stage 0 means stage 1's table never looked up.
        assert registry.value("pipeline.t.stage01.misses") == 0

    def test_latency_histogram_charges_extra_latency(self):
        registry = MetricsRegistry()
        pipe = SwitchPipeline("t", registry=registry)
        pipe.process({})  # line rate only: 1 us
        hist = registry.get("pipeline.t.latency_us")
        assert hist.edges == DEFAULT_LATENCY_EDGES_US
        assert hist.count == 1
        assert hist.total == 1

    def test_shared_name_shares_series(self):
        """Two pipelines with one name aggregate into one series, the
        way two replicas share a Prometheus metric."""
        registry = MetricsRegistry()
        SwitchPipeline("t", registry=registry).process({})
        SwitchPipeline("t", registry=registry).process({})
        assert registry.value("pipeline.t.packets") == 2


class _FakeLink:
    def __init__(self):
        self.faults = None
        self.packets_lost = 0
        self.packets_duplicated = 0
        self.packets_reordered = 0


class TestFaultMetrics:
    def _installed(self, registry, **spec):
        model = FaultModel(seed=3, registry=registry)
        model.set_link("lark", "agg", **spec)
        network = SimpleNamespace(links={("lark", "agg"): _FakeLink()})
        assert model.install(network) == 1
        return network.links[("lark", "agg")]

    def test_injected_drops_counted(self):
        registry = MetricsRegistry()
        link = self._installed(registry, drop=1.0)
        assert link.faults.apply(link, 10.0) == []
        assert registry.value("faults.lark->agg.drops") == 1
        assert link.packets_lost == 1

    def test_duplicates_and_reorders_counted(self):
        registry = MetricsRegistry()
        link = self._installed(registry, duplicate=1.0, reorder=1.0)
        deliveries = link.faults.apply(link, 10.0)
        assert len(deliveries) == 2
        assert registry.value("faults.lark->agg.duplicates") == 1
        assert registry.value("faults.lark->agg.reorders") == 1

    def test_configured_but_not_fired_counts_nothing(self):
        registry = MetricsRegistry()
        link = self._installed(registry, drop=0.0)
        assert link.faults.apply(link, 10.0) == [10.0]
        assert registry.value("faults.lark->agg.drops") == 0


APP = 0x42
KEY = bytes(range(16))


def _schema():
    return CookieSchema(
        "app",
        (
            Feature.categorical("gender", ["f", "m", "x"]),
            Feature.number("demand", 0, 1000),
        ),
    )


class TestLarkSwitchMetrics:
    def test_packet_decode_and_register_series(self):
        registry = MetricsRegistry()
        lark = LarkSwitch("lark", random.Random(3), registry=registry)
        lark.register_application(
            APP, _schema(), KEY,
            [StatSpec("by_gender", StatKind.COUNT_BY_CLASS, "gender")],
        )
        codec = TransportCookieCodec(APP, _schema(), KEY, random.Random(4))
        result = lark.process_quic_packet(codec.encode({"gender": "x"}))
        assert result.matched
        assert registry.value("lark.lark.packets") == 1
        assert registry.value("lark.lark.decoded") == 1
        assert registry.value("lark.lark.register_updates") >= 1
        # The underlying pipeline meters into the same registry.
        assert registry.value("pipeline.lark.packets") == 1
        assert registry.value("lark.lark.decode_failures") == 0
