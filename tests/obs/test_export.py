"""Exporters: deterministic JSON lines, parsing, text tables."""

import io
import json

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    dump_jsonl,
    jsonl_lines,
    parse_jsonl,
    render_spans,
    render_table,
)


def _registry():
    registry = MetricsRegistry()
    registry.counter("zeta.packets").inc(3)
    registry.counter("alpha.drops").inc(1)
    registry.histogram("alpha.latency_us", edges=[10, 100]).observe(42)
    return registry


def _tracer():
    state = [0.0]
    tracer = Tracer(lambda: state[0])
    with tracer.span("run", seed=7):
        state[0] = 5.0
        tracer.event("inject")
        state[0] = 20.0
    return tracer


class TestJsonLines:
    def test_metrics_sorted_then_spans_in_start_order(self):
        lines = jsonl_lines(_registry(), _tracer())
        records = [json.loads(line) for line in lines]
        assert [r["name"] for r in records] == [
            "alpha.drops", "alpha.latency_us", "zeta.packets",
            "run", "inject",
        ]
        assert [r["kind"] for r in records] == [
            "counter", "histogram", "counter", "span", "span",
        ]

    def test_encoding_is_compact_and_key_sorted(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        assert jsonl_lines(registry) == [
            '{"kind":"counter","name":"a","value":1}'
        ]

    def test_identical_registries_dump_identical_bytes(self):
        assert jsonl_lines(_registry(), _tracer()) == \
            jsonl_lines(_registry(), _tracer())

    def test_tracer_optional(self):
        assert len(jsonl_lines(_registry())) == 3


class TestDumpJsonl:
    def test_writes_to_path(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        written = dump_jsonl(path, _registry(), _tracer())
        text = path.read_text(encoding="utf-8")
        assert written == 5
        assert text.endswith("\n")
        assert len(text.splitlines()) == 5

    def test_writes_to_file_object(self):
        buffer = io.StringIO()
        written = dump_jsonl(buffer, _registry())
        assert written == 3
        assert len(buffer.getvalue().splitlines()) == 3

    def test_empty_registry_writes_nothing(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert dump_jsonl(path, MetricsRegistry()) == 0
        assert path.read_text(encoding="utf-8") == ""


class TestParseJsonl:
    def test_roundtrip(self):
        registry = _registry()
        tracer = _tracer()
        text = "\n".join(jsonl_lines(registry, tracer)) + "\n"
        records = parse_jsonl(text)
        assert len(records) == 5
        assert records[0] == registry.snapshot()[0]

    def test_blank_lines_skipped(self):
        assert parse_jsonl('\n{"kind":"counter"}\n\n') == [
            {"kind": "counter"}
        ]

    def test_malformed_json_rejected_with_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_jsonl('{"kind":"counter"}\n{oops\n')

    def test_non_record_line_rejected(self):
        with pytest.raises(ValueError, match="not a metrics record"):
            parse_jsonl("[1,2,3]\n")
        with pytest.raises(ValueError, match="not a metrics record"):
            parse_jsonl('{"name":"no-kind"}\n')


class TestRenderTable:
    def test_rows_and_histogram_summary(self):
        text = render_table(_registry())
        lines = text.splitlines()
        assert lines[0].split() == ["metric", "kind", "value"]
        assert any(
            "alpha.latency_us" in line
            and "count=1" in line and "p50<=100" in line
            for line in lines
        )
        assert any(
            "zeta.packets" in line and line.rstrip().endswith("3")
            for line in lines
        )

    def test_empty_histogram_shows_count_zero(self):
        registry = MetricsRegistry()
        registry.histogram("h", edges=[1])
        assert "count=0" in render_table(registry)


class TestRenderSpans:
    def test_children_indented_and_open_spans_marked(self):
        tracer = _tracer()
        tracer.start("dangling")  # never finished
        text = render_spans(tracer)
        lines = text.splitlines()
        run_line = next(line for line in lines if line.startswith("run"))
        inject_line = next(
            line for line in lines if line.lstrip().startswith("inject")
        )
        assert "20.000" in run_line
        assert inject_line.startswith("  inject")  # child of run
        assert "(open)" in text
