"""Metrics registry: instruments, get-or-create, default swapping."""

import pytest

from repro.obs import (
    DEFAULT_LATENCY_EDGES_US,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    scoped_registry,
    set_registry,
)


class TestCounter:
    def test_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_cannot_decrease(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_snapshot_and_reset(self):
        counter = Counter("c")
        counter.inc(3)
        assert counter.snapshot() == {
            "kind": "counter", "name": "c", "value": 3,
        }
        counter.reset()
        assert counter.value == 0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13

    def test_snapshot(self):
        gauge = Gauge("g")
        gauge.set(-4)
        assert gauge.snapshot() == {"kind": "gauge", "name": "g", "value": -4}


class TestHistogram:
    def test_default_edges_are_the_latency_buckets(self):
        assert Histogram("h").edges == DEFAULT_LATENCY_EDGES_US

    def test_edges_must_be_strictly_increasing(self):
        with pytest.raises(ValueError):
            Histogram("h", edges=[1, 1, 2])
        with pytest.raises(ValueError):
            Histogram("h", edges=[5, 3])
        with pytest.raises(ValueError):
            Histogram("h", edges=[])

    def test_bucketing_uses_inclusive_upper_edges(self):
        hist = Histogram("h", edges=[10, 20, 30])
        for value in (5, 10, 11, 20, 30, 31):
            hist.observe(value)
        # <=10, <=20, <=30, overflow
        assert hist.counts == [2, 2, 1, 1]
        assert hist.count == 6
        assert hist.total == 5 + 10 + 11 + 20 + 30 + 31

    def test_observations_rounded_to_integers(self):
        hist = Histogram("h", edges=[10, 20])
        hist.observe(10.4)  # rounds to 10 -> first bucket
        hist.observe(10.6)  # rounds to 11 -> second bucket
        assert hist.counts == [1, 1, 0]
        assert hist.total == 21

    def test_mean(self):
        hist = Histogram("h", edges=[100])
        assert hist.mean == 0.0
        hist.observe(10)
        hist.observe(20)
        assert hist.mean == 15.0

    def test_percentile_returns_covering_edge(self):
        hist = Histogram("h", edges=[10, 20, 30])
        for value in (5, 15, 25, 99):
            hist.observe(value)
        assert hist.percentile(25) == 10
        assert hist.percentile(50) == 20
        assert hist.percentile(75) == 30
        assert hist.percentile(100) == 30  # overflow reports last edge

    def test_percentile_validation_and_empty(self):
        hist = Histogram("h", edges=[10])
        assert hist.percentile(50) == 0
        with pytest.raises(ValueError):
            hist.percentile(101)
        with pytest.raises(ValueError):
            hist.percentile(-1)

    def test_snapshot_and_reset(self):
        hist = Histogram("h", edges=[10])
        hist.observe(3)
        snap = hist.snapshot()
        assert snap["kind"] == "histogram"
        assert snap["edges"] == [10]
        assert snap["counts"] == [1, 0]
        hist.reset()
        assert hist.count == 0 and hist.counts == [0, 0]


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h") is registry.histogram("h")

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("x")

    def test_histogram_edge_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", edges=[1, 2, 3])
        assert registry.histogram("h").edges == (1, 2, 3)
        assert registry.histogram("h", edges=[1, 2, 3]) is registry.get("h")
        with pytest.raises(ValueError, match="different edges"):
            registry.histogram("h", edges=[1, 2])

    def test_get_and_contains(self):
        registry = MetricsRegistry()
        registry.counter("a")
        assert "a" in registry and "b" not in registry
        assert len(registry) == 1
        with pytest.raises(KeyError):
            registry.get("b")

    def test_snapshot_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("zz")
        registry.counter("aa")
        registry.gauge("mm")
        assert [s["name"] for s in registry.snapshot()] == ["aa", "mm", "zz"]

    def test_value_shorthand(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(7)
        registry.histogram("h").observe(1)
        registry.histogram("h").observe(2)
        assert registry.value("c") == 7
        assert registry.value("h") == 2  # histograms report their count

    def test_reset_keeps_instruments_zeroes_values(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(5)
        registry.reset()
        assert registry.counter("c") is counter
        assert counter.value == 0

    def test_clear_drops_instruments(self):
        registry = MetricsRegistry()
        registry.counter("c")
        registry.clear()
        assert len(registry) == 0


class TestDefaultRegistry:
    def test_set_registry_swaps_and_returns_previous(self):
        original = get_registry()
        replacement = MetricsRegistry()
        try:
            assert set_registry(replacement) is original
            assert get_registry() is replacement
        finally:
            set_registry(original)
        assert get_registry() is original

    def test_scoped_registry_restores_on_exit(self):
        original = get_registry()
        with scoped_registry() as registry:
            assert get_registry() is registry
            assert registry is not original
        assert get_registry() is original

    def test_scoped_registry_restores_on_exception(self):
        original = get_registry()
        with pytest.raises(RuntimeError):
            with scoped_registry():
                raise RuntimeError("boom")
        assert get_registry() is original

    def test_scoped_registry_accepts_explicit_registry(self):
        mine = MetricsRegistry()
        with scoped_registry(mine) as registry:
            assert registry is mine
