"""QUIC varint codec (RFC 9000 section 16 / appendix A.1 examples)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.quic.varint import (
    MAX_VARINT,
    decode_varint,
    encode_varint,
    varint_length,
)

# RFC 9000 appendix A.1 worked examples.
RFC_EXAMPLES = [
    (37, "25"),
    (15293, "7bbd"),
    (494878333, "9d7f3e7d"),
    (151288809941952652, "c2197c5eff14e88c"),
]


class TestEncode:
    @pytest.mark.parametrize("value,encoded", RFC_EXAMPLES)
    def test_rfc_examples(self, value, encoded):
        assert encode_varint(value).hex() == encoded

    @pytest.mark.parametrize(
        "value,length",
        [(0, 1), (63, 1), (64, 2), (16383, 2), (16384, 4),
         ((1 << 30) - 1, 4), (1 << 30, 8), (MAX_VARINT, 8)],
    )
    def test_length_boundaries(self, value, length):
        assert varint_length(value) == length
        assert len(encode_varint(value)) == length

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_rejects_too_large(self):
        with pytest.raises(ValueError):
            encode_varint(MAX_VARINT + 1)


class TestDecode:
    @pytest.mark.parametrize("value,encoded", RFC_EXAMPLES)
    def test_rfc_examples(self, value, encoded):
        decoded, offset = decode_varint(bytes.fromhex(encoded))
        assert decoded == value
        assert offset == len(encoded) // 2

    def test_offset_advances(self):
        data = encode_varint(5) + encode_varint(15293)
        first, offset = decode_varint(data)
        second, end = decode_varint(data, offset)
        assert (first, second) == (5, 15293)
        assert end == len(data)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="truncated"):
            decode_varint(b"")

    def test_rejects_truncated(self):
        full = encode_varint(15293)
        with pytest.raises(ValueError, match="truncated"):
            decode_varint(full[:1])

    @given(st.integers(min_value=0, max_value=MAX_VARINT))
    def test_roundtrip(self, value):
        decoded, offset = decode_varint(encode_varint(value))
        assert decoded == value
        assert offset == varint_length(value)
