"""QUIC handshake state machines and the Snatch connection-ID policy."""

import random

import pytest

from repro.quic.connection import (
    HandshakeMode,
    QuicClient,
    QuicServer,
    RandomConnectionIdPolicy,
    SnatchConnectionIdPolicy,
    one_way_delays_to_server_data,
)
from repro.quic.connection_id import ConnectionID, random_connection_id
from repro.quic.packet import LongHeaderPacket, PacketType, SNATCH_DCID_LENGTH


def _pair(seed=0):
    rng = random.Random(seed)
    server = QuicServer("web.example", rng=rng)
    client = QuicClient("alice", rng=rng)
    return client, server


class TestOneRtt:
    def test_first_connection_is_1rtt(self):
        client, server = _pair()
        result = client.connect(server)
        assert result.mode is HandshakeMode.ONE_RTT
        assert result.one_way_delays_to_server_data == 3
        assert len(result.dst_conn_id) == SNATCH_DCID_LENGTH

    def test_trace_matches_figure7(self):
        client, server = _pair()
        result = client.connect(server)
        directions = [e.direction for e in result.trace]
        assert directions == [
            "client->server", "server->client", "client->server"
        ]

    def test_server_counts_handshakes(self):
        client, server = _pair()
        client.connect(server, prefer_0rtt=False)
        client.connect(server, prefer_0rtt=False)
        assert server.accepted_handshakes == 2

    def test_server_cid_factory_controls_dcid(self):
        rng = random.Random(1)
        planted = random_connection_id(SNATCH_DCID_LENGTH, rng)
        server = QuicServer("s", cid_factory=lambda _c: planted, rng=rng)
        client = QuicClient("c", rng=rng)
        assert client.connect(server).dst_conn_id == planted

    def test_factory_must_emit_20_bytes(self):
        rng = random.Random(2)
        server = QuicServer(
            "s", cid_factory=lambda _c: ConnectionID(b"abc"), rng=rng
        )
        client = QuicClient("c", rng=rng)
        with pytest.raises(ValueError, match="20-byte"):
            client.connect(server)


class TestZeroRtt:
    def test_second_connection_uses_0rtt(self):
        client, server = _pair()
        first = client.connect(server)
        second = client.connect(server)
        assert second.mode is HandshakeMode.ZERO_RTT
        assert second.one_way_delays_to_server_data == 1
        assert second.dst_conn_id == first.dst_conn_id
        assert server.accepted_0rtt == 1

    def test_0rtt_can_be_declined(self):
        client, server = _pair()
        client.connect(server)
        result = client.connect(server, prefer_0rtt=False)
        assert result.mode is HandshakeMode.ONE_RTT

    def test_rejected_ticket_falls_back_to_1rtt(self):
        client, server = _pair()
        client.connect(server)
        restarted = QuicServer("web.example", rng=random.Random(9))
        result = client.connect(restarted)
        assert result.mode is HandshakeMode.ONE_RTT

    def test_handle_0rtt_validates_packet_type(self):
        client, server = _pair()
        client.connect(server)
        bad = LongHeaderPacket(
            PacketType.INITIAL,
            random_connection_id(20),
            random_connection_id(8),
        )
        with pytest.raises(ValueError, match="0-RTT"):
            server.handle_0rtt(bad, b"psk")


class TestSnatchPolicy:
    def test_preserves_cookie_bytes_on_new_1rtt(self):
        rng = random.Random(3)
        server = QuicServer("s", rng=rng)
        policy = SnatchConnectionIdPolicy(rng=rng)
        client = QuicClient("c", cid_policy=policy, rng=rng)
        first = client.connect(server)
        # Next 1-RTT: Initial DCID keeps bytes [1, 20) of DstConnID*.
        next_dcid = policy.next_initial_dcid(first.dst_conn_id)
        kept = bytes(first.dst_conn_id)[1:20]
        assert bytes(next_dcid)[1:20] == kept

    def test_regenerates_random_identification_bits(self):
        rng = random.Random(4)
        policy = SnatchConnectionIdPolicy(cookie_start=1, cookie_end=18, rng=rng)
        previous = random_connection_id(20, rng)
        regenerated = [
            bytes(policy.next_initial_dcid(previous))[0] for _ in range(32)
        ]
        assert len(set(regenerated)) > 1  # byte 0 actually varies

    def test_without_previous_generates_fresh(self):
        policy = SnatchConnectionIdPolicy(rng=random.Random(5))
        assert len(policy.next_initial_dcid(None)) == SNATCH_DCID_LENGTH

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            SnatchConnectionIdPolicy(cookie_start=5, cookie_end=3)
        with pytest.raises(ValueError):
            SnatchConnectionIdPolicy(cookie_start=0, cookie_end=21)

    def test_random_policy_ignores_previous(self):
        rng = random.Random(6)
        policy = RandomConnectionIdPolicy(rng)
        previous = random_connection_id(20, rng)
        fresh = policy.next_initial_dcid(previous)
        assert bytes(fresh)[1:18] != bytes(previous)[1:18]


class TestDelayCoefficients:
    def test_match_speedup_equations(self):
        assert one_way_delays_to_server_data(HandshakeMode.ONE_RTT) == 3
        assert one_way_delays_to_server_data(HandshakeMode.ZERO_RTT) == 1
