"""QUIC packet header encode/parse (long and short forms)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.quic.connection_id import ConnectionID, random_connection_id
from repro.quic.packet import (
    LongHeaderPacket,
    PacketType,
    SNATCH_DCID_LENGTH,
    ShortHeaderPacket,
    parse_packet,
)


def _cid(n, fill=0xAB):
    return ConnectionID(bytes([fill]) * n)


class TestLongHeader:
    def test_roundtrip(self):
        packet = LongHeaderPacket(
            PacketType.INITIAL, _cid(20), _cid(8, 0xCD), b"client-hello"
        )
        parsed = parse_packet(packet.encode())
        assert parsed.packet_type is PacketType.INITIAL
        assert parsed.dcid == packet.dcid
        assert parsed.scid == packet.scid
        assert parsed.payload == b"client-hello"
        assert parsed.is_long_header

    @pytest.mark.parametrize("ptype", list(PacketType))
    def test_all_packet_types(self, ptype):
        packet = LongHeaderPacket(ptype, _cid(4), _cid(4), b"")
        assert parse_packet(packet.encode()).packet_type is ptype

    def test_empty_connection_ids(self):
        packet = LongHeaderPacket(PacketType.HANDSHAKE, _cid(0), _cid(0), b"x")
        parsed = parse_packet(packet.encode())
        assert len(parsed.dcid) == 0 and len(parsed.scid) == 0

    def test_truncated_payload_rejected(self):
        encoded = LongHeaderPacket(
            PacketType.INITIAL, _cid(8), _cid(8), b"full payload"
        ).encode()
        with pytest.raises(ValueError, match="truncated"):
            parse_packet(encoded[:-4])

    def test_truncated_header_rejected(self):
        encoded = LongHeaderPacket(
            PacketType.INITIAL, _cid(8), _cid(8), b""
        ).encode()
        with pytest.raises(ValueError):
            parse_packet(encoded[:6])

    @given(
        st.sampled_from(list(PacketType)),
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=0, max_value=20),
        st.binary(max_size=64),
    )
    def test_roundtrip_property(self, ptype, dlen, slen, payload):
        packet = LongHeaderPacket(ptype, _cid(dlen), _cid(slen, 0x11), payload)
        parsed = parse_packet(packet.encode())
        assert parsed.dcid == packet.dcid
        assert parsed.scid == packet.scid
        assert parsed.payload == payload


class TestShortHeader:
    def test_roundtrip(self):
        dcid = random_connection_id(SNATCH_DCID_LENGTH)
        packet = ShortHeaderPacket(dcid, b"GET /", spin_bit=True)
        parsed = parse_packet(packet.encode())
        assert parsed.dcid == dcid
        assert parsed.payload == b"GET /"
        assert parsed.spin_bit
        assert not parsed.is_long_header

    def test_requires_fixed_dcid_length(self):
        with pytest.raises(ValueError, match="20 bytes"):
            ShortHeaderPacket(_cid(8), b"")

    def test_truncated_rejected(self):
        packet = ShortHeaderPacket(_cid(20), b"")
        with pytest.raises(ValueError, match="truncated"):
            parse_packet(packet.encode()[:10])


class TestParseDispatch:
    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            parse_packet(b"")

    def test_fixed_bit_required(self):
        with pytest.raises(ValueError, match="fixed bit"):
            parse_packet(bytes(22))
