"""Connection-ID type invariants."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.quic.connection_id import (
    ConnectionID,
    MAX_CONNECTION_ID_BYTES,
    random_connection_id,
)


class TestConnectionID:
    def test_basic_properties(self):
        cid = ConnectionID(b"\x01\x02\x03")
        assert len(cid) == 3
        assert bytes(cid) == b"\x01\x02\x03"
        assert cid.hex == "010203"
        assert cid.first_byte() == 1

    def test_immutability(self):
        cid = ConnectionID(b"abc")
        with pytest.raises(Exception):
            cid.value = b"xyz"

    def test_rejects_over_160_bits(self):
        with pytest.raises(ValueError, match="too long"):
            ConnectionID(bytes(21))

    def test_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            ConnectionID("abc")

    def test_accepts_bytearray(self):
        cid = ConnectionID(bytearray(b"xy"))
        assert isinstance(cid.value, bytes)

    def test_empty_has_no_first_byte(self):
        with pytest.raises(ValueError):
            ConnectionID(b"").first_byte()

    def test_equality_by_value(self):
        assert ConnectionID(b"ab") == ConnectionID(b"ab")
        assert ConnectionID(b"ab") != ConnectionID(b"ac")


class TestReplaceRange:
    def test_replaces_middle(self):
        cid = ConnectionID(b"\x00" * 5)
        out = cid.replace_range(1, b"\xff\xff")
        assert bytes(out) == b"\x00\xff\xff\x00\x00"
        assert bytes(cid) == b"\x00" * 5  # original untouched

    def test_out_of_range(self):
        cid = ConnectionID(b"abc")
        with pytest.raises(ValueError):
            cid.replace_range(2, b"xy")
        with pytest.raises(ValueError):
            cid.replace_range(-1, b"x")

    @given(st.binary(min_size=4, max_size=20), st.integers(0, 3))
    def test_length_preserved(self, raw, start):
        cid = ConnectionID(raw)
        out = cid.replace_range(start, b"\x42")
        assert len(out) == len(cid)
        assert bytes(out)[start] == 0x42


class TestRandomConnectionID:
    def test_default_length(self):
        assert len(random_connection_id()) == MAX_CONNECTION_ID_BYTES

    def test_custom_length(self):
        assert len(random_connection_id(8)) == 8

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            random_connection_id(21)
        with pytest.raises(ValueError):
            random_connection_id(-1)

    def test_deterministic_with_seeded_rng(self):
        a = random_connection_id(20, random.Random(7))
        b = random_connection_id(20, random.Random(7))
        assert a == b

    def test_no_rng_leaves_global_random_untouched(self):
        """The bugfix regression: the no-rng path draws from a seeded
        module generator, never from the process-global ``random``."""
        random.seed(123)
        expected = random.random()
        random.seed(123)
        random_connection_id()
        assert random.random() == expected
