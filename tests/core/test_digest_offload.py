"""Digest offload: complex ops at the switch control plane."""

import random
import statistics

import pytest

from repro.core.digest_offload import DigestModulo, DigestQuantileEstimator
from repro.core.larkswitch import LarkSwitch
from repro.core.schema import CookieSchema, Feature
from repro.core.stats import StatKind, StatSpec
from repro.core.transport_cookie import TransportCookieCodec
from repro.switch.pipeline import Digest

KEY = bytes(range(16))
APP = 0x42


def _schema():
    return CookieSchema(
        "app",
        (
            Feature.categorical("gender", ["f", "m", "x"]),
            Feature.number("demand", 0, 1000),
        ),
    )


def _digest(feature, value):
    return Digest("snatch_value", {"feature": feature, "value": value})


class TestQuantileEstimator:
    def test_exact_when_under_reservoir(self):
        estimator = DigestQuantileEstimator("demand", reservoir_size=1000)
        for value in range(100):
            estimator.consume(_digest("demand", value))
        assert estimator.quantile(0.5) == pytest.approx(49, abs=1)
        assert estimator.quantile(1.0) == 99
        assert estimator.quantile(0.0) == 0

    def test_reservoir_bounds_memory(self):
        estimator = DigestQuantileEstimator(
            "demand", reservoir_size=64, rng=random.Random(1)
        )
        for value in range(10_000):
            estimator.consume(_digest("demand", value % 1000))
        assert len(estimator._reservoir) == 64
        assert estimator.values_seen == 10_000
        # The sampled median is near the true median (~500).
        assert estimator.quantile(0.5) == pytest.approx(500, abs=150)

    def test_ignores_other_features(self):
        estimator = DigestQuantileEstimator("demand")
        assert not estimator.consume(_digest("age", 5))
        with pytest.raises(ValueError, match="no digested"):
            estimator.quantile(0.5)

    def test_reset(self):
        estimator = DigestQuantileEstimator("demand")
        estimator.consume(_digest("demand", 1))
        estimator.reset()
        assert estimator.values_seen == 0

    def test_q_range_validated(self):
        estimator = DigestQuantileEstimator("demand")
        estimator.consume(_digest("demand", 1))
        with pytest.raises(ValueError):
            estimator.quantile(1.5)

    def test_invalid_reservoir(self):
        with pytest.raises(ValueError):
            DigestQuantileEstimator("demand", reservoir_size=0)


class TestModulo:
    def test_residue_counts(self):
        modulo = DigestModulo("demand", 3)
        for value in (0, 1, 2, 3, 4, 6):
            modulo.consume(_digest("demand", value))
        assert modulo.report() == {0: 3, 1: 2, 2: 1}

    def test_ignores_other_features_and_resets(self):
        modulo = DigestModulo("demand", 5)
        assert not modulo.consume(_digest("other", 1))
        modulo.consume(_digest("demand", 7))
        modulo.reset()
        assert modulo.report() == {}

    def test_invalid_modulus(self):
        with pytest.raises(ValueError):
            DigestModulo("demand", 0)


class TestLarkSwitchIntegration:
    def test_digest_path_from_packets_to_quantile(self):
        """The full pathway: cookie -> data plane decode -> digest ->
        control-plane quantile, for the op no switch ALU supports."""
        lark = LarkSwitch("lark", random.Random(1))
        lark.register_application(
            APP, _schema(), KEY,
            [StatSpec("by_gender", StatKind.COUNT_BY_CLASS, "gender")],
            digest_features=["demand"],
        )
        codec = TransportCookieCodec(APP, _schema(), KEY, random.Random(2))
        estimator = DigestQuantileEstimator("demand", reservoir_size=512)
        rng = random.Random(3)
        demands = [rng.randint(0, 1000) for _ in range(200)]
        for demand in demands:
            result = lark.process_quic_packet(
                codec.encode({"gender": "f", "demand": demand})
            )
            for digest in result.digests:
                estimator.consume(digest)
        assert estimator.values_seen == len(demands)
        true_median = statistics.median(demands)
        assert estimator.quantile(0.5) == pytest.approx(
            true_median, abs=60
        )

    def test_no_digests_without_designation(self):
        lark = LarkSwitch("lark", random.Random(4))
        lark.register_application(
            APP, _schema(), KEY,
            [StatSpec("by_gender", StatKind.COUNT_BY_CLASS, "gender")],
        )
        codec = TransportCookieCodec(APP, _schema(), KEY, random.Random(5))
        result = lark.process_quic_packet(
            codec.encode({"gender": "f", "demand": 7})
        )
        assert result.digests == []
