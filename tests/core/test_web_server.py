"""Snatch web server: semantic cookies as a per-user state machine,
with no server-side user store."""

import random

import pytest

from repro.core.schema import CookieSchema, Feature
from repro.core.web_server import SnatchWebServer
from repro.quic.connection import QuicClient, QuicServer
from repro.core.transport_cookie import TransportCookieCodec
from repro.core.app_cookie import format_cookie_header

KEY = bytes(range(16))
APP = 0x42


def _schema():
    return CookieSchema(
        "app",
        (
            Feature.categorical("segment", ["new", "casual", "power"]),
            Feature.number("visits", 0, 1000),
        ),
    )


def _visit_counter(previous, request):
    """The paper's state-machine view: fold the request into the state
    carried by the cookie itself."""
    visits = min(1000, previous.get("visits", 0) + 1)
    segment = "new" if visits <= 1 else ("casual" if visits < 10 else "power")
    return {"segment": segment, "visits": visits}


def _server(seed=1):
    return SnatchWebServer(
        APP, _schema(), KEY, _visit_counter, rng=random.Random(seed)
    )


class TestStateMachine:
    def test_first_connection_plants_initial_state(self):
        server = _server()
        response = server.handle_request({"path": "/"})
        assert response.new_values == {"segment": "new", "visits": 1}
        assert response.set_cookie is not None
        assert response.transport_cid is not None

    def test_state_round_trips_through_the_user(self):
        server = _server()
        cookie_header = ""
        for expected_visits in range(1, 12):
            response = server.handle_request({"path": "/"}, cookie_header)
            assert response.new_values["visits"] == expected_visits
            name, value = response.set_cookie
            cookie_header = format_cookie_header({name: value})
        assert response.new_values["segment"] == "power"

    def test_transport_cid_carries_the_state(self):
        server = _server()
        response = server.handle_request({"path": "/"})
        codec = TransportCookieCodec(APP, _schema(), KEY, random.Random(2))
        decoded = codec.decode(response.transport_cid)
        assert decoded.values == response.new_values

    def test_no_user_store(self):
        server = _server()
        for _ in range(50):
            server.handle_request({"path": "/"})
        assert server.stored_user_records == 0
        assert server.requests_served == 50

    def test_corrupt_cookie_restarts_state(self):
        server = _server()
        response = server.handle_request(
            {"path": "/"}, "__sc_42=not-a-valid-cookie"
        )
        assert response.new_values["visits"] == 1

    def test_update_fn_output_validated(self):
        server = SnatchWebServer(
            APP, _schema(), KEY,
            lambda prev, req: {"ghost": 1},
            rng=random.Random(3),
        )
        with pytest.raises(ValueError, match="non-schema"):
            server.handle_request({})


class TestQuicIntegration:
    def test_cid_factory_plants_semantic_dcid(self):
        web = _server()
        response = web.handle_request({"path": "/"})
        quic_server = QuicServer(
            "web",
            cid_factory=web.quic_cid_factory(response.new_values),
            rng=random.Random(4),
        )
        client = QuicClient("alice", rng=random.Random(5))
        result = client.connect(quic_server)
        codec = TransportCookieCodec(APP, _schema(), KEY, random.Random(6))
        assert codec.decode(result.dst_conn_id).values == response.new_values

    def test_factory_requires_transport_fit(self):
        wide = CookieSchema(
            "wide",
            tuple(Feature.number("f%d" % i, 0, 2**30) for i in range(6)),
        )
        transport, _overflow = wide.split_for_transport()
        server = SnatchWebServer(
            APP, wide, KEY, lambda prev, req: {},
            transport_schema=transport, rng=random.Random(7),
        )
        # Fits via the split transport schema.
        assert server.transport_codec is not None


class TestTransportSubset:
    def test_only_transport_features_in_cid(self):
        full = CookieSchema(
            "full",
            (
                Feature.categorical("segment", ["a", "b"]),
                Feature.number("visits", 0, 100),
                Feature.number("extra", 0, 100),
            ),
        )
        transport = CookieSchema("full", full.features[:2])
        server = SnatchWebServer(
            APP, full, KEY,
            lambda prev, req: {"segment": "a", "visits": 1, "extra": 9},
            transport_schema=transport,
            rng=random.Random(8),
        )
        response = server.handle_request({})
        codec = TransportCookieCodec(APP, transport, KEY, random.Random(9))
        decoded = codec.decode(response.transport_cid)
        assert decoded.values == {"segment": "a", "visits": 1}
