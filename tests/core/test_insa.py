"""INSA capability model: Table 1 and the query planner."""

import pytest

from repro.core.insa import (
    DSTREAM_SUPPORT,
    InsaPlanner,
    PlanOp,
    Support,
    classify,
    table1_rows,
)
from repro.streaming.dstream import DStream


class TestTable1:
    def test_row_count_matches_paper(self):
        assert len(DSTREAM_SUPPORT) == 39

    @pytest.mark.parametrize(
        "method,support",
        [
            ("cache", "N/A"),
            ("checkpoint", "N/A"),
            ("cogroup", "Y*"),
            ("count", "Y"),
            ("countByValue", "Y"),
            ("countByValueAndWindow", "Y"),
            ("countByWindow", "Y"),
            ("filter", "Y*"),
            ("groupByKey", "Y"),
            ("groupByKeyAndWindow", "Y"),
            ("map", "Y*"),
            ("partitionBy", "N"),
            ("reduce", "Y*"),
            ("reduceByKeyAndWindow", "Y*"),
            ("repartition", "N"),
            ("saveAsTextFiles", "N/A"),
            ("slice", "Y"),
            ("union", "Y*"),
            ("updateStateByKey", "Y*"),
            ("window", "Y"),
        ],
    )
    def test_paper_classifications(self, method, support):
        assert classify(method).support.value == support

    def test_only_partition_moves_are_unsupported(self):
        unsupported = [
            m for m, info in DSTREAM_SUPPORT.items()
            if info.support is Support.NO
        ]
        assert sorted(unsupported) == ["partitionBy", "repartition"]

    def test_categories_present(self):
        info = classify("reduceByKeyAndWindow")
        assert set(info.categories) == {"partition", "window", "reduce"}

    def test_unknown_method(self):
        with pytest.raises(KeyError):
            classify("collectAsync")

    def test_rows_render_sorted(self):
        rows = table1_rows()
        assert len(rows) == 39
        methods = [m for m, _s, _c in rows]
        assert methods == sorted(methods, key=str.lower)

    def test_every_method_exists_on_engine(self):
        """Table 1 must describe the DStream API we actually built."""
        for method in DSTREAM_SUPPORT:
            assert hasattr(DStream, method), method


class TestPlanner:
    def test_full_offload(self):
        plan = InsaPlanner().plan(
            [
                PlanOp("filter", ("eq",)),
                PlanOp("countByValue"),
            ]
        )
        assert plan.fully_offloaded
        assert plan.offload_fraction == 1.0
        assert plan.stages_used == 2

    def test_unsupported_operand_blocks(self):
        plan = InsaPlanner().plan(
            [
                PlanOp("filter", ("eq",)),
                PlanOp("map", ("log",)),
                PlanOp("count"),
            ]
        )
        assert [op.method for op in plan.offloaded] == ["filter"]
        assert [op.method for op in plan.server_side] == ["map", "count"]
        assert any("unsupported operands" in r for r in plan.reasons)

    def test_partition_move_blocks(self):
        plan = InsaPlanner().plan(
            [PlanOp("repartition"), PlanOp("count")]
        )
        assert plan.offloaded == []
        assert len(plan.server_side) == 2
        assert any("pinned" in r for r in plan.reasons)

    def test_no_resume_after_block(self):
        """Once an op falls to the server, later switch-friendly ops
        stay on the server too."""
        plan = InsaPlanner().plan(
            [
                PlanOp("map", ("mod",)),
                PlanOp("count"),  # offloadable in isolation
            ]
        )
        assert [op.method for op in plan.server_side] == ["map", "count"]

    def test_stage_budget_enforced(self):
        planner = InsaPlanner(stage_budget=2)
        plan = planner.plan(
            [
                PlanOp("filter", ("eq",)),
                PlanOp("reduceByKey", ("add",)),
                PlanOp("count"),
            ]
        )
        assert len(plan.offloaded) == 2
        assert any("stage budget" in r for r in plan.reasons)

    def test_na_methods_cost_no_stages(self):
        plan = InsaPlanner(stage_budget=1).plan(
            [PlanOp("cache"), PlanOp("count")]
        )
        assert plan.fully_offloaded
        assert plan.stages_used == 1

    def test_custom_stage_cost(self):
        planner = InsaPlanner(stage_budget=3)
        plan = planner.plan(
            [PlanOp("reduceByKeyAndWindow", ("add",), stages_needed=4)]
        )
        assert not plan.fully_offloaded

    def test_empty_plan(self):
        plan = InsaPlanner().plan([])
        assert plan.fully_offloaded
        assert plan.offload_fraction == 0.0

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            InsaPlanner(stage_budget=0)
