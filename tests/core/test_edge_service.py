"""Snatch edge server: page rules, event filtering, pre-aggregation."""

import random

import pytest

from repro.core.aggregation import AggregationCodec, ForwardingMode
from repro.core.app_cookie import ApplicationCookieCodec, format_cookie_header
from repro.core.edge_service import SnatchEdgeServer
from repro.core.schema import CookieSchema, Feature
from repro.core.stats import StatKind, StatSpec

KEY = bytes(range(16))
APP = 0x42


def _schema():
    return CookieSchema(
        "app",
        (
            Feature.categorical("event", ["view", "click", "other"]),
            Feature.categorical("gender", ["f", "m", "x"]),
        ),
    )


def _specs():
    return [StatSpec("by_gender", StatKind.COUNT_BY_CLASS, "gender")]


def _edge(mode=ForwardingMode.PER_PACKET, period=0.0, event_filter=None):
    edge = SnatchEdgeServer("edge", random.Random(1))
    edge.register_application(
        APP, _schema(), KEY, _specs(),
        mode=mode, period_ms=period, event_filter=event_filter,
    )
    return edge


def _cookie_header(values, seed=2):
    codec = ApplicationCookieCodec(APP, _schema(), KEY, random.Random(seed))
    name, value = codec.encode(values)
    return format_cookie_header({name: value, "theme": "dark"})


class TestRequestPath:
    def test_semantic_cookie_processed(self):
        edge = _edge()
        result = edge.handle_request(
            {"event": "view"},
            _cookie_header({"event": "view", "gender": "f"}),
        )
        assert result.served_static
        assert result.semantic_matched
        assert not result.filtered_out
        assert result.aggregation_payload is not None
        assert edge.stats_report(APP)["by_gender"]["f"] == 1

    def test_plain_request_served_without_analytics(self):
        edge = _edge()
        result = edge.handle_request({"path": "/"}, "theme=dark")
        assert result.served_static
        assert not result.semantic_matched
        assert result.aggregation_payload is None

    def test_no_cookie_header(self):
        edge = _edge()
        result = edge.handle_request({"path": "/"})
        assert result.served_static and not result.semantic_matched

    def test_payload_decodable_by_aggswitch_codec(self):
        edge = _edge()
        result = edge.handle_request(
            {"event": "view"}, _cookie_header({"gender": "m"})
        )
        packet = AggregationCodec(APP, KEY, random.Random(3)).decode(
            result.aggregation_payload
        )
        assert packet.mode == ForwardingMode.PER_PACKET
        assert (1, 1) in packet.items  # gender=m is feature 1, wire 1

    def test_requests_counted(self):
        edge = _edge()
        for _ in range(3):
            edge.handle_request({})
        assert edge.requests_handled == 3


class TestEventFilter:
    def test_filtered_events_not_counted(self):
        edge = _edge(
            event_filter=lambda request: request.get("event") == "click"
        )
        result = edge.handle_request(
            {"event": "view"}, _cookie_header({"gender": "f"})
        )
        assert result.semantic_matched and result.filtered_out
        assert result.aggregation_payload is None
        assert edge.stats_report(APP)["by_gender"]["f"] == 0

    def test_passing_events_counted(self):
        edge = _edge(
            event_filter=lambda request: request.get("event") == "click"
        )
        result = edge.handle_request(
            {"event": "click"}, _cookie_header({"gender": "f"})
        )
        assert not result.filtered_out
        assert edge.stats_report(APP)["by_gender"]["f"] == 1


class TestPeriodical:
    def test_accumulates_then_flushes(self):
        edge = _edge(ForwardingMode.PERIODICAL, period=150)
        for gender in ("f", "m", "f"):
            result = edge.handle_request(
                {"event": "view"}, _cookie_header({"gender": gender})
            )
            assert result.aggregation_payload is None
        payload = edge.end_period(APP)
        assert payload is not None
        packet = AggregationCodec(APP, KEY, random.Random(4)).decode(payload)
        assert packet.mode == ForwardingMode.PERIODICAL
        # Registers reset after the flush.
        assert edge.stats_report(APP)["by_gender"]["f"] == 0

    def test_empty_period_is_silent(self):
        edge = _edge(ForwardingMode.PERIODICAL, period=150)
        assert edge.end_period(APP) is None

    def test_period_required(self):
        edge = SnatchEdgeServer("e2")
        with pytest.raises(ValueError, match="period"):
            edge.register_application(
                APP, _schema(), KEY, _specs(),
                mode=ForwardingMode.PERIODICAL,
            )

    def test_end_period_wrong_mode(self):
        edge = _edge()
        with pytest.raises(ValueError, match="per-packet"):
            edge.end_period(APP)


class TestRegistration:
    def test_duplicate_rejected(self):
        edge = _edge()
        with pytest.raises(ValueError, match="already"):
            edge.register_application(APP, _schema(), KEY, _specs())

    def test_revoke(self):
        edge = _edge()
        assert edge.revoke_application(APP)
        assert not edge.revoke_application(APP)
        assert edge.registered_app_ids() == []
        result = edge.handle_request(
            {"event": "view"}, _cookie_header({"gender": "f"})
        )
        assert not result.semantic_matched

    def test_unknown_app_end_period(self):
        edge = _edge()
        with pytest.raises(KeyError):
            edge.end_period(0x99)
