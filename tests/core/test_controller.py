"""Controller: RPC ordering, versioned updates, developer APIs."""

import random

import pytest

from repro.core.aggregation import ForwardingMode
from repro.core.aggswitch import AggSwitch
from repro.core.controller import SnatchController
from repro.core.edge_service import SnatchEdgeServer
from repro.core.larkswitch import LarkSwitch
from repro.core.schema import Feature
from repro.core.stats import StatKind, StatSpec


def _features():
    return [
        Feature.categorical("gender", ["f", "m", "x"]),
        Feature.number("demand", 0, 100),
    ]


def _specs():
    return [StatSpec("by_gender", StatKind.COUNT_BY_CLASS, "gender")]


def _deployment(seed=1):
    controller = SnatchController(seed=seed)
    agg = AggSwitch("agg", random.Random(2))
    lark = LarkSwitch("lark", random.Random(3))
    edge = SnatchEdgeServer("edge", random.Random(4))
    controller.attach_agg_switch(agg)
    controller.attach_lark_switch(lark)
    controller.attach_edge_server(edge)
    return controller, agg, lark, edge


class TestAddApplication:
    def test_all_devices_learn_the_app(self):
        controller, agg, lark, edge = _deployment()
        handle = controller.add_application("ads", _features(), _specs())
        for device in (agg, lark, edge):
            assert handle.app_id in device.registered_app_ids()
        assert controller.is_consistent("ads")
        assert controller.applications() == ["ads"]

    def test_install_order_agg_then_lark_then_edge(self):
        """Section 4.3: updates flow AggSwitch -> LarkSwitches -> edge
        servers so no tier ever reports data the tier above cannot
        parse."""
        controller, _agg, _lark, _edge = _deployment()
        controller.add_application("ads", _features(), _specs())
        devices = [log.device for log in controller.rpc_log]
        assert devices == ["agg", "lark", "edge"]
        orders = [log.order for log in controller.rpc_log]
        assert orders == sorted(orders)

    def test_duplicate_name_rejected(self):
        controller, *_ = _deployment()
        controller.add_application("ads", _features(), _specs())
        with pytest.raises(ValueError, match="already"):
            controller.add_application("ads", _features(), _specs())

    def test_handle_contents(self):
        controller, *_ = _deployment()
        handle = controller.add_application("ads", _features(), _specs())
        assert 0 <= handle.app_id <= 255
        assert len(handle.key) == 16
        assert handle.version == 0
        assert handle.overflow_schema is None
        assert handle.mode == ForwardingMode.PER_PACKET

    def test_wide_schema_spills_to_application_layer(self):
        controller, *_ = _deployment()
        wide = [Feature.number("f%d" % i, 0, 2**30) for i in range(6)]
        handle = controller.add_application(
            "wide", wide, [StatSpec("s", StatKind.SUM, "f0")]
        )
        assert handle.overflow_schema is not None
        assert handle.transport_schema.fits_transport()

    def test_remove_application(self):
        controller, agg, lark, edge = _deployment()
        handle = controller.add_application("ads", _features(), _specs())
        controller.remove_application("ads")
        for device in (agg, lark, edge):
            assert handle.app_id not in device.registered_app_ids()
        with pytest.raises(KeyError):
            controller.remove_application("ads")


class TestVersionedUpdates:
    def test_update_creates_new_app_id_and_key(self):
        controller, *_ = _deployment()
        old = controller.add_application("ads", _features(), _specs())
        new = controller.update_application("ads")
        assert new.app_id != old.app_id
        assert new.key != old.key
        assert new.version == 1

    def test_old_version_kept_until_retired(self):
        controller, agg, _lark, _edge = _deployment()
        old = controller.add_application("ads", _features(), _specs())
        new = controller.update_application("ads")
        # Grace period: both versions live simultaneously.
        assert old.app_id in agg.registered_app_ids()
        assert new.app_id in agg.registered_app_ids()
        assert controller.pending_retirements() == 1
        assert controller.retire_old_versions() == 1
        assert old.app_id not in agg.registered_app_ids()
        assert controller.pending_retirements() == 0

    def test_add_cookie(self):
        controller, *_ = _deployment()
        controller.add_application("ads", _features(), _specs())
        handle = controller.add_cookie(
            "ads", Feature.categorical("geo", ["NA", "EU"])
        )
        assert "geo" in handle.schema.feature_names()

    def test_remove_cookie(self):
        controller, *_ = _deployment()
        controller.add_application("ads", _features(), _specs())
        handle = controller.remove_cookie("ads", "demand")
        assert handle.schema.feature_names() == ["gender"]
        with pytest.raises(KeyError):
            controller.remove_cookie("ads", "ghost")

    def test_change_feature_range(self):
        controller, *_ = _deployment()
        controller.add_application("ads", _features(), _specs())
        handle = controller.change_feature(
            "ads", Feature.number("demand", 0, 1000)
        )
        assert handle.schema.feature("demand").max_value == 1000
        with pytest.raises(KeyError):
            controller.change_feature(
                "ads", Feature.number("ghost", 0, 1)
            )

    def test_change_forwarding(self):
        controller, *_ = _deployment()
        controller.add_application("ads", _features(), _specs())
        handle = controller.change_forwarding(
            "ads", ForwardingMode.PERIODICAL, period_ms=150
        )
        assert handle.mode == ForwardingMode.PERIODICAL
        assert handle.period_ms == 150
        with pytest.raises(ValueError, match="period"):
            controller.change_forwarding("ads", ForwardingMode.PERIODICAL, 0)

    def test_update_unknown_app(self):
        controller, *_ = _deployment()
        with pytest.raises(KeyError):
            controller.update_application("ghost")


class TestAppIdAllocation:
    def test_ids_never_reused_across_versions(self):
        controller, *_ = _deployment()
        controller.add_application("ads", _features(), _specs())
        seen = {controller.application("ads").app_id}
        for _ in range(20):
            handle = controller.update_application("ads")
            assert handle.app_id not in seen
            seen.add(handle.app_id)

    def test_deterministic_with_seed(self):
        a = _deployment(seed=5)[0]
        b = _deployment(seed=5)[0]
        ha = a.add_application("ads", _features(), _specs())
        hb = b.add_application("ads", _features(), _specs())
        assert ha.app_id == hb.app_id
        assert ha.key == hb.key
