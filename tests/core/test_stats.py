"""Switch statistics: counters, numeric aggregates, merge semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.larkswitch import flatten_snapshot, unflatten_snapshot
from repro.core.schema import CookieSchema, Feature
from repro.core.stats import (
    StatKind,
    StatSpec,
    SwitchStatistics,
    merge_snapshots,
    min_array_names,
)
from repro.switch.registers import RegisterFile


def _schema():
    return CookieSchema(
        "app",
        (
            Feature.categorical("campaign", ["c0", "c1"]),
            Feature.categorical("gender", ["f", "m", "x"]),
            Feature.number("demand", 0, 1000),
        ),
    )


def _specs():
    return [
        StatSpec("by_gender", StatKind.COUNT_BY_CLASS, "gender",
                 group_by="campaign"),
        StatSpec("demand_sum", StatKind.SUM, "demand"),
        StatSpec("demand_min", StatKind.MIN, "demand"),
        StatSpec("demand_max", StatKind.MAX, "demand"),
        StatSpec("demand_avg", StatKind.AVG, "demand"),
    ]


def _stats(specs=None):
    return SwitchStatistics(
        _schema(), specs or _specs(), RegisterFile(), prefix="t"
    )


class TestUpdates:
    def test_grouped_class_counts(self):
        stats = _stats()
        stats.update({"campaign": "c0", "gender": "f"})
        stats.update({"campaign": "c0", "gender": "f"})
        stats.update({"campaign": "c1", "gender": "m"})
        report = stats.report()
        assert report["by_gender"][("c0", "f")] == 2
        assert report["by_gender"][("c1", "m")] == 1
        assert report["by_gender"][("c1", "x")] == 0

    def test_numeric_aggregates(self):
        stats = _stats()
        for demand in (10, 50, 30):
            stats.update({"demand": demand})
        report = stats.report()
        assert report["demand_sum"]["all"] == 90
        assert report["demand_min"]["all"] == 10
        assert report["demand_max"]["all"] == 50
        assert report["demand_avg"]["all"] == pytest.approx(30.0)

    def test_missing_feature_skipped(self):
        stats = _stats()
        stats.update({"gender": "f"})  # no campaign -> group unknown
        report = stats.report()
        assert all(v == 0 for v in report["by_gender"].values())

    def test_empty_report_values(self):
        report = _stats().report()
        assert report["demand_min"]["all"] is None
        assert report["demand_avg"]["all"] is None
        assert report["demand_max"]["all"] == 0

    def test_reset(self):
        stats = _stats()
        stats.update({"campaign": "c0", "gender": "f", "demand": 5})
        stats.reset()
        report = stats.report()
        assert report["by_gender"][("c0", "f")] == 0
        assert report["demand_min"]["all"] is None
        assert stats.updates == 0

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="class feature"):
            _stats([StatSpec("bad", StatKind.COUNT_BY_CLASS, "demand")])
        with pytest.raises(ValueError, match="number feature"):
            _stats([StatSpec("bad", StatKind.SUM, "gender")])
        with pytest.raises(ValueError, match="group_by"):
            _stats([StatSpec("bad", StatKind.SUM, "demand",
                             group_by="demand")])

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=50))
    @settings(max_examples=25)
    def test_numeric_aggregates_match_reference(self, demands):
        stats = _stats()
        for demand in demands:
            stats.update({"demand": demand})
        report = stats.report()
        assert report["demand_sum"]["all"] == sum(demands)
        assert report["demand_min"]["all"] == min(demands)
        assert report["demand_max"]["all"] == max(demands)
        assert report["demand_avg"]["all"] == pytest.approx(
            sum(demands) / len(demands)
        )


class TestMerge:
    def test_merge_adds_counts_and_resolves_minmax(self):
        a, b = _stats(), _stats()
        a.update({"campaign": "c0", "gender": "f", "demand": 10})
        b.update({"campaign": "c0", "gender": "f", "demand": 40})
        merged = merge_snapshots(_specs(), a.snapshot(), b.snapshot())
        target = _stats()
        for name, cells in merged.items():
            array = target._arrays[name]
            for i, value in enumerate(cells):
                array.write(i, value)
        report = target.report()
        assert report["by_gender"][("c0", "f")] == 2
        assert report["demand_sum"]["all"] == 50
        assert report["demand_min"]["all"] == 10
        assert report["demand_max"]["all"] == 40
        assert report["demand_avg"]["all"] == pytest.approx(25.0)

    def test_merge_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            merge_snapshots(
                [StatSpec("s", StatKind.SUM, "demand")],
                {"s": [1, 2]},
                {"s": [1]},
            )

    def test_merge_handles_one_sided(self):
        merged = merge_snapshots(
            [StatSpec("s", StatKind.SUM, "demand")],
            {"s": [5]},
            {},
        )
        assert merged["s"] == [5]


class TestFlattenRoundtrip:
    def test_roundtrip_preserves_snapshot(self):
        stats = _stats()
        stats.update({"campaign": "c1", "gender": "x", "demand": 123})
        stats.update({"campaign": "c0", "gender": "f", "demand": 7})
        snapshot = stats.snapshot()
        mins = min_array_names(_specs())
        items = flatten_snapshot(snapshot, mins)
        rebuilt = unflatten_snapshot(items, snapshot, mins)
        assert rebuilt == snapshot

    def test_min_sentinel_preserved_when_idle(self):
        stats = _stats()
        stats.update({"campaign": "c0", "gender": "f"})  # no demand
        snapshot = stats.snapshot()
        mins = min_array_names(_specs())
        items = flatten_snapshot(snapshot, mins)
        rebuilt = unflatten_snapshot(items, snapshot, mins)
        assert rebuilt["demand_min"] == snapshot["demand_min"]

    def test_zero_cells_skipped(self):
        stats = _stats()
        stats.update({"campaign": "c0", "gender": "f"})
        items = flatten_snapshot(stats.snapshot(), min_array_names(_specs()))
        # Only the one count cell (plus nothing else) is non-idle.
        assert len(items) == 1

    def test_bad_tags_rejected(self):
        snapshot = _stats().snapshot()
        with pytest.raises(ValueError, match="ordinal"):
            unflatten_snapshot([(63 << 10, 1)], snapshot)
        with pytest.raises(ValueError, match="index"):
            unflatten_snapshot([(0 | 1023, 1)], snapshot)

    def test_min_array_names(self):
        assert min_array_names(_specs()) == {"demand_min"}
