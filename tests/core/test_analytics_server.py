"""Analytics server: queue -> micro-batch pipeline vs INSA reports."""

import pytest

from repro.core.analytics_server import AnalyticsServer
from repro.core.schema import CookieSchema, Feature
from repro.core.stats import StatKind, StatSpec
from repro.streaming.queue import MessageBroker


def _schema():
    return CookieSchema(
        "ads",
        (
            Feature.categorical("campaign", ["c0", "c1"]),
            Feature.categorical("gender", ["f", "m", "x"]),
        ),
    )


def _specs():
    return [
        StatSpec("by_gender", StatKind.COUNT_BY_CLASS, "gender",
                 group_by="campaign"),
        StatSpec("gender_total", StatKind.COUNT_BY_CLASS, "gender"),
    ]


class TestStreamingPath:
    def test_grouped_counts_from_batches(self):
        server = AnalyticsServer(_schema(), _specs(), batch_interval_ms=100)
        records = [
            ({"campaign": "c0", "gender": "f"}, 10),
            ({"campaign": "c0", "gender": "f"}, 20),
            ({"campaign": "c1", "gender": "m"}, 30),
            ({"campaign": "c0", "gender": "x"}, 150),  # second batch
        ]
        for values, t in records:
            server.submit_record(values, t)
        ran = server.run_pending_batches(until_ms=300)
        assert ran == 3
        report = server.report()
        assert report["by_gender"][("c0", "f")] == 2
        assert report["by_gender"][("c1", "m")] == 1
        assert report["by_gender"][("c0", "x")] == 1
        assert report["gender_total"]["f"] == 2

    def test_counts_accumulate_across_batches(self):
        server = AnalyticsServer(_schema(), _specs(), batch_interval_ms=100)
        server.submit_record({"campaign": "c0", "gender": "f"}, 10)
        server.run_pending_batches(100)
        server.submit_record({"campaign": "c0", "gender": "f"}, 110)
        server.run_pending_batches(200)
        assert server.report()["by_gender"][("c0", "f")] == 2

    def test_incomplete_records_filtered(self):
        server = AnalyticsServer(_schema(), _specs(), batch_interval_ms=100)
        server.submit_record({"gender": "f"}, 10)  # no campaign
        server.run_pending_batches(100)
        report = server.report()
        assert report["by_gender"] == {}
        assert report["gender_total"]["f"] == 1

    def test_result_latency(self):
        server = AnalyticsServer(_schema(), _specs(), batch_interval_ms=150)
        assert server.result_latency_ms(10, processing_ms=115) == 265
        assert server.result_latency_ms(150, processing_ms=115) == 415

    def test_external_broker(self):
        broker = MessageBroker()
        server = AnalyticsServer(
            _schema(), _specs(), batch_interval_ms=100, broker=broker
        )
        server.submit_record({"campaign": "c1", "gender": "x"}, 5)
        server.run_pending_batches(100)
        assert server.report()["gender_total"]["x"] == 1


class TestInsaPath:
    def test_insa_report_takes_precedence(self):
        server = AnalyticsServer(_schema(), _specs(), batch_interval_ms=100)
        server.submit_record({"campaign": "c0", "gender": "f"}, 10)
        server.run_pending_batches(100)
        insa = {"by_gender": {("c0", "f"): 42}}
        server.receive_insa_report(insa)
        assert server.report() == insa
        assert server.insa_reports_received == 1


class TestValidation:
    def test_only_class_counts_supported(self):
        with pytest.raises(ValueError, match="count-by-class"):
            AnalyticsServer(
                CookieSchema("x", (Feature.number("n", 0, 9),)),
                [StatSpec("s", StatKind.SUM, "n")],
            )
