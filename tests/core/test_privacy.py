"""Privacy mechanisms: DP accuracy, obfuscation, schema auditing."""

import math
import random

import pytest

from repro.core.privacy import (
    CorrelatedCookies,
    IdentifiabilityError,
    NoisyDelta,
    RandomizedResponse,
    ValueTransform,
    audit_schema,
)
from repro.core.schema import CookieSchema, Feature


def _gender():
    return Feature.categorical("gender", ["f", "m", "x"])


class TestRandomizedResponse:
    def test_epsilon_formula(self):
        rr = RandomizedResponse(_gender(), p_truth=0.75)
        # k=3: eps = ln(0.75 * 2 / 0.25) = ln 6.
        assert rr.epsilon == pytest.approx(math.log(6.0))

    def test_perturb_stays_in_domain(self):
        rr = RandomizedResponse(_gender(), rng=random.Random(1))
        for _ in range(100):
            assert rr.perturb("f") in ("f", "m", "x")

    def test_perturb_rejects_foreign_value(self):
        rr = RandomizedResponse(_gender())
        with pytest.raises(ValueError):
            rr.perturb("unknown")

    def test_truth_rate_near_p(self):
        rr = RandomizedResponse(_gender(), p_truth=0.75,
                                rng=random.Random(2))
        n = 4000
        truthful = sum(rr.perturb("m") == "m" for _ in range(n))
        # Observed "m" rate = p + (1-p)*0 from others... direct truth rate:
        assert truthful / n == pytest.approx(0.75, abs=0.03)

    def test_estimator_unbiased(self):
        rr = RandomizedResponse(_gender(), p_truth=0.7, rng=random.Random(3))
        truth = {"f": 700, "m": 250, "x": 50}
        observed = {"f": 0, "m": 0, "x": 0}
        for category, count in truth.items():
            for _ in range(count):
                observed[rr.perturb(category)] += 1
        estimates = rr.estimate_counts(observed)
        for category, count in truth.items():
            assert estimates[category] == pytest.approx(count, abs=80)

    def test_estimates_sum_to_population(self):
        rr = RandomizedResponse(_gender(), rng=random.Random(4))
        observed = {"f": 10, "m": 20, "x": 30}
        assert sum(rr.estimate_counts(observed).values()) == pytest.approx(60)

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="class feature"):
            RandomizedResponse(Feature.number("n", 0, 5))
        with pytest.raises(ValueError):
            RandomizedResponse(_gender(), p_truth=1.0)
        with pytest.raises(ValueError, match="uniform"):
            RandomizedResponse(_gender(), p_truth=0.2)


class TestNoisyDelta:
    def test_paper_example(self):
        """Delta +1 with magnitude 2: +2 w.p. 75 %, -2 w.p. 25 %."""
        nd = NoisyDelta(magnitude=2)
        assert nd.probability_up(1) == pytest.approx(0.75)

    def test_perturb_values(self):
        nd = NoisyDelta(2, rng=random.Random(5))
        assert set(nd.perturb(1) for _ in range(50)) == {-2, 2}

    def test_expectation_matches_delta(self):
        nd = NoisyDelta(2, rng=random.Random(6))
        n = 20_000
        total = sum(nd.perturb(1) for _ in range(n))
        assert total / n == pytest.approx(1.0, abs=0.1)

    def test_zero_delta_is_symmetric(self):
        nd = NoisyDelta(4, rng=random.Random(7))
        assert nd.probability_up(0) == pytest.approx(0.5)

    def test_delta_bounded_by_magnitude(self):
        nd = NoisyDelta(2)
        with pytest.raises(ValueError, match="magnitude"):
            nd.probability_up(3)

    def test_apply_clamps_to_range(self):
        nd = NoisyDelta(2, rng=random.Random(8))
        for _ in range(50):
            out = nd.apply(1, 1, lo=0, hi=10)
            assert 0 <= out <= 10

    def test_invalid_magnitude(self):
        with pytest.raises(ValueError):
            NoisyDelta(0)


class TestValueTransform:
    def test_roundtrip(self):
        transform = ValueTransform(a=7, b=13, modulus=101)
        for x in range(101):
            assert transform.inverse(transform.forward(x)) == x

    def test_obfuscation_changes_values(self):
        transform = ValueTransform(a=7, b=13, modulus=101)
        changed = sum(transform.forward(x) != x for x in range(101))
        assert changed > 90

    def test_inverse_sum(self):
        transform = ValueTransform(a=3, b=5, modulus=10_007)
        values = [10, 20, 30]
        wire_sum = sum(transform.forward(v) for v in values)
        assert transform.inverse_sum(wire_sum, len(values)) == 60

    def test_requires_coprime_multiplier(self):
        with pytest.raises(ValueError, match="coprime"):
            ValueTransform(a=4, b=0, modulus=8)

    def test_invalid_modulus(self):
        with pytest.raises(ValueError):
            ValueTransform(1, 0, 1)


class TestCorrelatedCookies:
    def test_split_preserves_value(self):
        pair = CorrelatedCookies(random.Random(9))
        shares = pair.split(100)
        assert pair.combine(shares) == 100

    def test_updates_preserve_sum(self):
        pair = CorrelatedCookies(random.Random(10))
        shares = pair.split(10)
        total = 10
        for delta in (5, -3, 7, 1):
            shares = pair.update(shares, delta)
            total += delta
        assert pair.combine(shares) == total

    def test_individual_shares_hide_value(self):
        """Over many updates, each share alone differs from the sum."""
        pair = CorrelatedCookies(random.Random(11))
        shares = pair.split(50)
        for _ in range(20):
            shares = pair.update(shares, 1)
        assert shares[0] != pair.combine(shares)
        assert shares[1] != pair.combine(shares)


class TestSchemaAudit:
    def test_identifier_rejected(self):
        schema = CookieSchema(
            "bad", (Feature.number("user_id", 0, 2**32 - 1),)
        )
        with pytest.raises(IdentifiabilityError, match="identifier"):
            audit_schema(schema, expected_population=1_000_000)

    def test_joint_cardinality_rejected(self):
        features = tuple(
            Feature.number("f%d" % i, 0, 1000) for i in range(3)
        )
        schema = CookieSchema("joint", features)
        # 1001^3 combinations vs 1e6 users -> anonymity set << 1.
        with pytest.raises(IdentifiabilityError):
            audit_schema(schema, expected_population=1_000_000)

    def test_benign_schema_approved(self):
        schema = CookieSchema(
            "ok",
            (
                Feature.categorical("gender", ["f", "m", "x"]),
                Feature.categorical("age", ["18-24", "25-34", "35+"]),
            ),
        )
        findings = audit_schema(schema, expected_population=1_000_000)
        assert findings == []

    def test_warn_without_strict(self):
        schema = CookieSchema(
            "warned", (Feature.number("n", 0, 100_000),)
        )
        findings = audit_schema(
            schema, expected_population=1_000_000, strict=False
        )
        assert any(f.severity == "warn" for f in findings)

    def test_non_strict_never_raises(self):
        schema = CookieSchema(
            "bad", (Feature.number("user_id", 0, 2**32 - 1),)
        )
        findings = audit_schema(
            schema, expected_population=1_000, strict=False
        )
        assert any(f.severity == "reject" for f in findings)

    def test_population_must_be_positive(self):
        schema = CookieSchema("x", (_gender(),))
        with pytest.raises(ValueError):
            audit_schema(schema, expected_population=0)


class TestPrivacyAccountant:
    def _accountant(self, budget=2.0):
        from repro.core.privacy import PrivacyAccountant
        return PrivacyAccountant(epsilon_budget=budget)

    def test_basic_composition_adds(self):
        accountant = self._accountant(budget=2.0)
        accountant.spend("alice", 0.5)
        accountant.spend("alice", 0.7)
        assert accountant.spent("alice") == pytest.approx(1.2)
        assert accountant.remaining("alice") == pytest.approx(0.8)

    def test_budget_enforced(self):
        from repro.core.privacy import PrivacyBudgetExceeded
        accountant = self._accountant(budget=1.0)
        accountant.spend("bob", 0.9)
        with pytest.raises(PrivacyBudgetExceeded, match="bob"):
            accountant.spend("bob", 0.2)
        # The failed spend did not change the ledger.
        assert accountant.spent("bob") == pytest.approx(0.9)

    def test_budgets_are_per_user(self):
        accountant = self._accountant(budget=1.0)
        accountant.spend("alice", 1.0)
        accountant.spend("bob", 1.0)  # independent budget

    def test_exact_budget_spendable(self):
        accountant = self._accountant(budget=1.0)
        accountant.spend("carol", 1.0)
        assert accountant.remaining("carol") == pytest.approx(0.0)

    def test_reports_affordable_from_mechanism(self):
        accountant = self._accountant(budget=8.2)
        rr = RandomizedResponse(_gender(), p_truth=0.75)
        n = accountant.reports_affordable(rr.epsilon)
        assert n == int(8.2 / rr.epsilon)
        for i in range(n):
            accountant.spend("dave", rr.epsilon)
        from repro.core.privacy import PrivacyBudgetExceeded
        with pytest.raises(PrivacyBudgetExceeded):
            accountant.spend("dave", rr.epsilon)

    def test_validation(self):
        from repro.core.privacy import PrivacyAccountant
        with pytest.raises(ValueError):
            PrivacyAccountant(epsilon_budget=0)
        accountant = self._accountant()
        with pytest.raises(ValueError):
            accountant.spend("x", -0.1)
        with pytest.raises(ValueError):
            accountant.reports_affordable(0)
