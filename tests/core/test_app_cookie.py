"""Application-layer semantic cookies and HTTP cookie-header plumbing."""

import random

import pytest

from repro.core.app_cookie import (
    ApplicationCookieCodec,
    cookie_name_for_app,
    format_cookie_header,
    parse_cookie_header,
)
from repro.core.schema import CookieSchema, Feature, FeatureValueError

KEY = bytes(range(16))


def _schema():
    return CookieSchema(
        "app",
        (
            Feature.categorical("event", ["view", "click"]),
            Feature.number("visits", 0, 10_000),
        ),
    )


def _codec(app_id=0x21, seed=1):
    return ApplicationCookieCodec(app_id, _schema(), KEY, random.Random(seed))


class TestHeaderPlumbing:
    def test_format_and_parse(self):
        header = format_cookie_header({"a": "1", "b": "2"})
        assert parse_cookie_header(header) == {"a": "1", "b": "2"}

    def test_parse_tolerates_whitespace(self):
        assert parse_cookie_header(" a = 1 ;  b=2 ") == {"a": "1", "b": "2"}

    def test_parse_skips_empty_segments(self):
        assert parse_cookie_header("a=1;;") == {"a": "1"}

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_cookie_header("no-equals-sign")

    def test_cookie_name_is_non_semantic(self):
        """Section 3.6: avoid semantic cookie names."""
        name = cookie_name_for_app(0xAB)
        assert name == "__sc_ab"
        assert "gender" not in name and "user" not in name


class TestCodec:
    def test_roundtrip(self):
        codec = _codec()
        name, value = codec.encode({"event": "click", "visits": 42})
        decoded = codec.decode(value)
        assert decoded.values == {"event": "click", "visits": 42}
        assert name == codec.cookie_name

    def test_partial_and_empty(self):
        codec = _codec()
        _n, value = codec.encode({"visits": 7})
        assert codec.decode(value).values == {"visits": 7}
        _n, empty = codec.encode({})
        assert codec.decode(empty).values == {}

    def test_ciphertext_is_unlinkable(self):
        """Fresh IV per encoding: equal values, different wire bytes."""
        codec = _codec()
        _n, a = codec.encode({"visits": 1})
        _n, b = codec.encode({"visits": 1})
        assert a != b

    def test_unknown_feature_rejected(self):
        with pytest.raises(FeatureValueError):
            _codec().encode({"ghost": 1})

    def test_decode_rejects_non_hex(self):
        with pytest.raises(ValueError, match="hex"):
            _codec().decode("zz-not-hex")

    def test_decode_rejects_short_values(self):
        with pytest.raises(ValueError, match="short"):
            _codec().decode("00" * 10)

    def test_wrong_key_garbles(self):
        codec = _codec()
        _n, value = codec.encode({"event": "view"})
        other = ApplicationCookieCodec(
            0x21, _schema(), bytes(16), random.Random(2)
        )
        with pytest.raises(ValueError):
            other.decode(value)

    def test_app_id_must_fit_byte(self):
        with pytest.raises(ValueError):
            ApplicationCookieCodec(300, _schema(), KEY)


class TestHeaderDecoding:
    def test_finds_own_cookie_among_others(self):
        codec = _codec()
        name, value = codec.encode({"event": "view"})
        header = format_cookie_header(
            {name: value, "session": "abc", "theme": "dark"}
        )
        decoded = codec.try_decode_header(header)
        assert decoded.values == {"event": "view"}

    def test_absent_cookie_gives_none(self):
        assert _codec().try_decode_header("theme=dark") is None

    def test_garbage_value_gives_none(self):
        header = "%s=deadbeef" % _codec().cookie_name
        assert _codec().try_decode_header(header) is None

    def test_foreign_app_cookie_invisible(self):
        mine = _codec(app_id=0x21)
        theirs = _codec(app_id=0x22, seed=3)
        name, value = theirs.encode({"event": "view"})
        assert mine.try_decode_header(
            format_cookie_header({name: value})
        ) is None
