"""In-switch table joins (Appendix C)."""

import pytest

from repro.core.schema import CookieSchema, Feature
from repro.core.switch_join import JoinKind, SwitchJoinTable
from repro.switch.registers import RegisterFile, SramExhaustedError

REGION = Feature.categorical("region", ["r0", "r1", "r2", "r3"])


def _left_schema():
    return CookieSchema("views", (REGION, Feature.number("views", 0, 99)))


def _right_schema():
    return CookieSchema("clicks", (REGION, Feature.number("clicks", 0, 99)))


def _table(**kwargs):
    return SwitchJoinTable("region", _left_schema(), _right_schema(), **kwargs)


class TestJoinKinds:
    def _filled(self):
        table = _table()
        table.insert_left({"region": "r0", "views": 10})
        table.insert_right({"region": "r0", "clicks": 3})
        table.insert_left({"region": "r1", "views": 5})
        table.insert_right({"region": "r2", "clicks": 7})
        return table

    def test_full_outer(self):
        rows = self._filled().result(JoinKind.FULL)
        assert [(r.key, r.left, r.right) for r in rows] == [
            ("r0", {"views": 10}, {"clicks": 3}),
            ("r1", {"views": 5}, None),
            ("r2", None, {"clicks": 7}),
        ]

    def test_inner(self):
        rows = self._filled().result(JoinKind.INNER)
        assert len(rows) == 1 and rows[0].key == "r0"

    def test_left(self):
        keys = [r.key for r in self._filled().result(JoinKind.LEFT)]
        assert keys == ["r0", "r1"]

    def test_right(self):
        keys = [r.key for r in self._filled().result(JoinKind.RIGHT)]
        assert keys == ["r0", "r2"]

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            _table().result("cross")

    def test_empty_table(self):
        assert _table().result(JoinKind.FULL) == []


class TestSemantics:
    def test_later_insert_overwrites(self):
        """The register table holds one row per key; a newer
        aggregation packet overwrites it (stream semantics)."""
        table = _table()
        table.insert_left({"region": "r0", "views": 1})
        table.insert_left({"region": "r0", "views": 9})
        rows = table.result(JoinKind.LEFT)
        assert rows[0].left == {"views": 9}

    def test_zero_values_preserved(self):
        """A wire value of 0 must be distinguishable from 'absent'."""
        table = _table()
        table.insert_left({"region": "r3", "views": 0})
        rows = table.result(JoinKind.LEFT)
        assert rows[0].left == {"views": 0}

    def test_missing_key_rejected(self):
        with pytest.raises(ValueError, match="join key"):
            _table().insert_left({"views": 5})

    def test_key_must_match_across_schemas(self):
        other = CookieSchema(
            "clicks",
            (Feature.categorical("region", ["x", "y"]),
             Feature.number("clicks", 0, 9)),
        )
        with pytest.raises(ValueError, match="identically"):
            SwitchJoinTable("region", _left_schema(), other)

    def test_reset(self):
        table = _table()
        table.insert_left({"region": "r0", "views": 1})
        table.reset()
        assert table.result(JoinKind.FULL) == []


class TestResourceCost:
    def test_sram_accounting(self):
        """Appendix C: joins are expensive in register SRAM."""
        table = _table()
        # 2 value columns x 4 rows x 48 bits + 2 presence x 4 x 1 bit.
        assert table.sram_bits == 2 * 4 * 48 + 2 * 4

    def test_budget_enforced(self):
        tiny = RegisterFile(sram_budget_bits=100)
        with pytest.raises(SramExhaustedError):
            _table(registers=tiny)
