"""Cookie schemas: feature types, ranges, bit layout, transport split."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.schema import (
    CookieSchema,
    Feature,
    FeatureType,
    FeatureValueError,
    TRANSPORT_COOKIE_BITS,
)


def _gender():
    return Feature.categorical("gender", ["f", "m", "x"])


def _score():
    return Feature.number("score", -10, 10)


class TestFeature:
    def test_class_encode_decode(self):
        f = _gender()
        assert f.encode_value("m") == 1
        assert f.decode_value(1) == "m"
        assert f.cardinality == 3
        assert f.bits == 2

    def test_number_encode_decode(self):
        f = _score()
        assert f.encode_value(-10) == 0
        assert f.encode_value(10) == 20
        assert f.decode_value(0) == -10
        assert f.cardinality == 21
        assert f.bits == 5

    def test_out_of_range_aborted(self):
        with pytest.raises(FeatureValueError):
            _gender().encode_value("unknown")
        with pytest.raises(FeatureValueError):
            _score().encode_value(11)
        with pytest.raises(FeatureValueError):
            _score().encode_value("7")
        with pytest.raises(FeatureValueError):
            _score().encode_value(True)

    def test_decode_out_of_range(self):
        with pytest.raises(FeatureValueError):
            _gender().decode_value(3)
        with pytest.raises(FeatureValueError):
            _score().decode_value(-1)

    def test_invalid_definitions(self):
        with pytest.raises(ValueError):
            Feature.categorical("x", ["only-one"])
        with pytest.raises(ValueError):
            Feature.categorical("x", ["a", "a"])
        with pytest.raises(ValueError):
            Feature.number("x", 5, 4)
        with pytest.raises(ValueError):
            Feature.categorical("bad;name", ["a", "b"])
        with pytest.raises(ValueError):
            Feature(name="x", ftype="weird")

    @given(st.integers(-10, 10))
    def test_number_roundtrip(self, value):
        f = _score()
        assert f.decode_value(f.encode_value(value)) == value

    def test_single_value_range_is_one_bit(self):
        f = Feature.number("flag", 0, 0)
        assert f.bits == 1


class TestCookieSchema:
    def test_bit_accounting(self):
        schema = CookieSchema("app", (_gender(), _score()))
        assert schema.bitmap_bits == 2
        assert schema.stack_bits == 2 + 5
        assert schema.total_bits == 9
        assert schema.fits_transport()

    def test_feature_lookup(self):
        schema = CookieSchema("app", (_gender(),))
        assert schema.feature("gender").name == "gender"
        with pytest.raises(KeyError):
            schema.feature("ghost")
        assert schema.feature_names() == ["gender"]

    def test_duplicates_and_empty_rejected(self):
        with pytest.raises(ValueError):
            CookieSchema("app", (_gender(), _gender()))
        with pytest.raises(ValueError):
            CookieSchema("app", ())

    def test_validate_values(self):
        schema = CookieSchema("app", (_gender(), _score()))
        wire = schema.validate_values({"gender": "x", "score": 0})
        assert wire == {"gender": 2, "score": 10}
        with pytest.raises(FeatureValueError):
            schema.validate_values({"score": 99})

    def test_large_schema_does_not_fit_transport(self):
        wide = tuple(
            Feature.number("f%d" % i, 0, 2**20) for i in range(8)
        )
        schema = CookieSchema("big", wide)
        assert schema.total_bits > TRANSPORT_COOKIE_BITS
        assert not schema.fits_transport()


class TestTransportSplit:
    def test_fitting_schema_has_no_overflow(self):
        schema = CookieSchema("app", (_gender(), _score()))
        transport, overflow = schema.split_for_transport()
        assert overflow is None
        assert transport.feature_names() == ["gender", "score"]

    def test_split_spills_trailing_features(self):
        features = tuple(
            Feature.number("f%d" % i, 0, 2**30) for i in range(6)
        )
        schema = CookieSchema("big", features)
        transport, overflow = schema.split_for_transport()
        assert transport.total_bits <= TRANSPORT_COOKIE_BITS
        assert overflow is not None
        assert transport.feature_names() + overflow.feature_names() == [
            f.name for f in features
        ]

    def test_first_feature_too_big(self):
        schema = CookieSchema(
            "huge", (Feature.number("blob", 0, 2**200),)
        )
        with pytest.raises(ValueError, match="exceeds"):
            schema.split_for_transport()
