"""Fault detection and repair (section 6)."""

import random

import pytest

from repro.core.aggswitch import AggSwitch
from repro.core.controller import SnatchController
from repro.core.edge_service import SnatchEdgeServer
from repro.core.fault import Discrepancy, FaultRepairLoop, ResultVerifier
from repro.core.larkswitch import LarkSwitch
from repro.core.schema import Feature
from repro.core.stats import StatKind, StatSpec
from repro.core.transport_cookie import TransportCookieCodec


class TestResultVerifier:
    def test_identical_reports_consistent(self):
        verifier = ResultVerifier()
        report = {"by_gender": {("c0", "f"): 10, ("c0", "m"): 5}}
        assert verifier.consistent(report, report)

    def test_detects_missing_counts(self):
        verifier = ResultVerifier()
        truth = {"by_gender": {"f": 10}}
        got = {"by_gender": {"f": 7}}
        diffs = verifier.diff(got, truth)
        assert len(diffs) == 1
        assert diffs[0].in_network == 7 and diffs[0].ground_truth == 10
        assert diffs[0].relative_error == pytest.approx(0.3)

    def test_detects_spurious_counts(self):
        verifier = ResultVerifier()
        diffs = verifier.diff({"by_gender": {"x": 3}}, {"by_gender": {}})
        assert len(diffs) == 1 and diffs[0].ground_truth == 0

    def test_missing_statistic_entirely(self):
        verifier = ResultVerifier()
        diffs = verifier.diff({}, {"sums": {"all": 100}})
        assert len(diffs) == 1

    def test_tolerance_absorbs_udp_loss(self):
        """Appendix B.3: <0.01 % loss should not trip the detector."""
        verifier = ResultVerifier(relative_tolerance=0.01)
        truth = {"by_gender": {"f": 10_000}}
        got = {"by_gender": {"f": 9_999}}  # one lost packet
        assert verifier.consistent(got, truth)

    def test_sorted_by_severity(self):
        verifier = ResultVerifier()
        truth = {"s": {"a": 100, "b": 100}}
        got = {"s": {"a": 10, "b": 90}}
        diffs = verifier.diff(got, truth)
        assert diffs[0].key == "a"

    def test_none_values_treated_as_zero(self):
        verifier = ResultVerifier()
        diffs = verifier.diff({"mins": {"all": None}}, {"mins": {"all": 5}})
        assert len(diffs) == 1

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            ResultVerifier(relative_tolerance=-0.1)


class TestVerifierSymmetry:
    """Regression: the diff used to build its key union from truth keys
    plus only *truthy* report cells, and iterated report-side statistics
    not at all — so spurious in-network state could slip through."""

    def test_report_only_statistic_detected(self):
        verifier = ResultVerifier()
        diffs = verifier.diff({"ghost_stat": {"a": 3}}, {})
        assert len(diffs) == 1
        assert diffs[0].statistic == "ghost_stat"
        assert diffs[0].ground_truth == 0

    def test_falsy_report_cell_still_compared(self):
        """A cell the switch reports as 0 against a non-zero truth is a
        discrepancy even though the report value is falsy."""
        verifier = ResultVerifier()
        diffs = verifier.diff({"s": {"a": 0}}, {"s": {"a": 4}})
        assert len(diffs) == 1
        assert diffs[0].in_network == 0 and diffs[0].ground_truth == 4

    def test_diff_symmetric_under_swap(self):
        verifier = ResultVerifier()
        left = {"s": {"a": 5}}
        right = {"t": {"b": 7}}
        assert len(verifier.diff(left, right)) == len(
            verifier.diff(right, left)
        )

    def test_both_sides_zero_is_consistent(self):
        verifier = ResultVerifier()
        assert verifier.consistent({"s": {"a": 0}}, {"s": {"a": 0}})


class TestRepairLoop:
    def _deployment(self):
        controller = SnatchController(seed=3)
        agg = AggSwitch("agg", random.Random(1))
        lark = LarkSwitch("lark", random.Random(2))
        edge = SnatchEdgeServer("edge", random.Random(3))
        controller.attach_agg_switch(agg)
        controller.attach_lark_switch(lark)
        controller.attach_edge_server(edge)
        features = [Feature.categorical("gender", ["f", "m", "x"])]
        specs = [StatSpec("by_gender", StatKind.COUNT_BY_CLASS, "gender")]
        handle = controller.add_application("ads", features, specs)
        return controller, agg, lark, handle

    def test_failed_key_update_detected_and_repaired(self):
        """Simulate a LarkSwitch that missed a parameter update: its
        rules vanish, counts drift, the loop resyncs it."""
        controller, agg, lark, handle = self._deployment()
        loop = FaultRepairLoop(controller)
        # Fault injection: the switch loses the application.
        lark.revoke_application(handle.app_id)
        assert not controller.is_consistent("ads")

        codec = TransportCookieCodec(
            handle.app_id, handle.transport_schema, handle.key,
            random.Random(4),
        )
        # Traffic during the fault produces nothing at the switch.
        for _ in range(5):
            result = lark.process_quic_packet(codec.encode({"gender": "f"}))
            assert result.aggregation_payload is None
        in_network = agg.report(handle.app_id)
        ground_truth = {"by_gender": {"f": 5, "m": 0, "x": 0}}
        discrepancies = loop.check("ads", in_network, ground_truth)
        assert discrepancies
        assert controller.is_consistent("ads")
        assert loop.history[0].devices_resynced == 1

        # After the repair, traffic counts again.
        result = lark.process_quic_packet(codec.encode({"gender": "f"}))
        assert result.aggregation_payload is not None

    def test_healthy_system_triggers_no_repair(self):
        controller, agg, _lark, handle = self._deployment()
        loop = FaultRepairLoop(controller)
        report = agg.report(handle.app_id)
        truth = {"by_gender": {"f": 0, "m": 0, "x": 0}}
        assert loop.check("ads", report, truth) == []
        assert loop.history == []

    def test_resync_is_idempotent(self):
        controller, _agg, _lark, _handle = self._deployment()
        assert controller.resync("ads") == 0

    def test_self_scheduling_loop_repairs_without_manual_check(self):
        """The loop on a simulator: verification ticks periodically,
        spots an injected fault, and resyncs — zero check() calls."""
        from repro.net.simulator import Simulator

        controller, agg, lark, handle = self._deployment()
        loop = FaultRepairLoop(controller)
        sim = Simulator()
        truth = {"by_gender": {"f": 0}}
        loop.schedule(
            sim,
            "ads",
            in_network_fn=lambda: agg.report(handle.app_id),
            ground_truth_fn=lambda: dict(truth),
            period_ms=100.0,
            until_ms=500.0,
        )
        # Fault at t=150: the switch loses its rules; truth keeps moving.
        sim.schedule_at(150.0, lambda: lark.revoke_application(handle.app_id))
        sim.schedule_at(
            150.0, lambda: truth.__setitem__("by_gender", {"f": 9})
        )
        sim.run()
        assert loop.checks_run == 5
        assert loop.history  # detected
        assert loop.history[0].at_ms == 200.0  # the first tick after it
        assert controller.is_consistent("ads")
