"""AggSwitch: merging aggregation streams from many first-tier nodes."""

import random

import pytest

from repro.core.aggregation import ForwardingMode
from repro.core.aggswitch import AggSwitch
from repro.core.larkswitch import LarkSwitch
from repro.core.schema import CookieSchema, Feature
from repro.core.stats import StatKind, StatSpec
from repro.core.transport_cookie import TransportCookieCodec

KEY = bytes(range(16))
APP = 0x42


def _schema():
    return CookieSchema(
        "app",
        (
            Feature.categorical("gender", ["f", "m", "x"]),
            Feature.number("demand", 0, 500),
        ),
    )


def _specs():
    return [
        StatSpec("by_gender", StatKind.COUNT_BY_CLASS, "gender"),
        StatSpec("demand_sum", StatKind.SUM, "demand"),
        StatSpec("demand_min", StatKind.MIN, "demand"),
    ]


def _lark(name, seed, mode=ForwardingMode.PER_PACKET, period=0.0):
    lark = LarkSwitch(name, random.Random(seed))
    lark.register_application(
        APP, _schema(), KEY, _specs(), mode=mode, period_ms=period
    )
    return lark


def _agg(seed=3):
    agg = AggSwitch("agg", random.Random(seed))
    agg.register_application(APP, _schema(), KEY, _specs())
    return agg


def _codec(seed=4):
    return TransportCookieCodec(APP, _schema(), KEY, random.Random(seed))


class TestPerPacketMerge:
    def test_merges_across_sources(self):
        agg = _agg()
        codec = _codec()
        lark_a = _lark("a", 1)
        lark_b = _lark("b", 2)
        for lark, gender, demand in (
            (lark_a, "f", 10), (lark_a, "m", 20), (lark_b, "f", 30)
        ):
            result = lark.process_quic_packet(
                codec.encode({"gender": gender, "demand": demand})
            )
            out = agg.process_packet(result.aggregation_payload)
            assert out.merged and out.is_aggregation
        report = agg.report(APP)
        assert report["by_gender"]["f"] == 2
        assert report["by_gender"]["m"] == 1
        assert report["demand_sum"]["all"] == 60
        assert report["demand_min"]["all"] == 10

    def test_forward_report_attached(self):
        agg = AggSwitch("agg", random.Random(5))
        agg.register_application(
            APP, _schema(), KEY, _specs(), destination="analytics-master"
        )
        lark = _lark("a", 1)
        result = lark.process_quic_packet(_codec().encode({"gender": "x"}))
        out = agg.process_packet(result.aggregation_payload)
        assert out.destination == "analytics-master"
        assert out.forward_report["by_gender"]["x"] == 1


class TestPeriodicalMerge:
    def test_snapshot_merge(self):
        agg = _agg()
        codec = _codec()
        lark_a = _lark("a", 1, ForwardingMode.PERIODICAL, 100)
        lark_b = _lark("b", 2, ForwardingMode.PERIODICAL, 100)
        for _ in range(3):
            lark_a.process_quic_packet(
                codec.encode({"gender": "f", "demand": 100})
            )
        for _ in range(2):
            lark_b.process_quic_packet(
                codec.encode({"gender": "f", "demand": 50})
            )
        agg.process_packet(lark_a.end_period(APP))
        agg.process_packet(lark_b.end_period(APP))
        report = agg.report(APP)
        assert report["by_gender"]["f"] == 5
        assert report["demand_sum"]["all"] == 400
        assert report["demand_min"]["all"] == 50

    def test_min_survives_merge_with_idle_source(self):
        agg = _agg()
        codec = _codec()
        lark = _lark("a", 1, ForwardingMode.PERIODICAL, 100)
        lark.process_quic_packet(codec.encode({"gender": "f"}))  # no demand
        agg.process_packet(lark.end_period(APP))
        assert agg.report(APP)["demand_min"]["all"] is None


class TestRobustness:
    def test_non_aggregation_traffic_passes(self):
        agg = _agg()
        out = agg.process_packet(b"\x00\x01just-udp-payload-bytes")
        assert not out.is_aggregation
        assert not out.merged

    def test_unknown_app_not_merged(self):
        agg = _agg()
        lark = LarkSwitch("l", random.Random(9))
        other_schema = CookieSchema("o", (Feature.number("n", 0, 3),))
        lark.register_application(
            0x77, other_schema, KEY, [StatSpec("s", StatKind.SUM, "n")]
        )
        codec = TransportCookieCodec(0x77, other_schema, KEY, random.Random(8))
        result = lark.process_quic_packet(codec.encode({"n": 1}))
        out = agg.process_packet(result.aggregation_payload)
        assert out.is_aggregation and not out.merged

    def test_corrupt_payload_not_merged(self):
        agg = _agg()
        lark = _lark("a", 1)
        result = lark.process_quic_packet(_codec().encode({"gender": "f"}))
        corrupted = bytearray(result.aggregation_payload)
        corrupted[-1] ^= 0xFF
        out = agg.process_packet(bytes(corrupted))
        assert not out.merged

    def test_reset(self):
        agg = _agg()
        lark = _lark("a", 1)
        result = lark.process_quic_packet(_codec().encode({"gender": "f"}))
        agg.process_packet(result.aggregation_payload)
        agg.reset(APP)
        assert agg.report(APP)["by_gender"]["f"] == 0

    def test_packets_merged_counter(self):
        agg = _agg()
        lark = _lark("a", 1)
        for _ in range(4):
            result = lark.process_quic_packet(_codec().encode({"gender": "f"}))
            agg.process_packet(result.aggregation_payload)
        assert agg.packets_merged(APP) == 4

    def test_registration_lifecycle(self):
        agg = _agg()
        with pytest.raises(ValueError, match="already"):
            agg.register_application(APP, _schema(), KEY, _specs())
        assert agg.revoke_application(APP)
        assert not agg.revoke_application(APP)
        assert agg.registered_app_ids() == []
        with pytest.raises(KeyError):
            agg.report(APP)
