"""Per-user engagement tracking wired through the switch tiers."""

import random

import pytest

from repro.core.aggregation import ForwardingMode
from repro.core.aggswitch import AggSwitch
from repro.core.larkswitch import LarkSwitch
from repro.core.schema import CookieSchema, Feature
from repro.core.stats import StatKind, StatSpec
from repro.core.transport_cookie import TransportCookieCodec
from repro.core.user_stats import UserQuantileConfig

KEY = bytes(range(16))
APP = 0x31


def _schema(num_users=256):
    return CookieSchema(
        "app",
        (
            Feature.categorical("gender", ["f", "m", "x"]),
            Feature.number("user", 0, num_users - 1),
        ),
    )


def _specs():
    return [StatSpec("by_gender", StatKind.COUNT_BY_CLASS, "gender")]


def _setup(mode="exact", key_feature="user", **lark_kwargs):
    config = UserQuantileConfig(mode=mode, key_feature=key_feature)
    lark = LarkSwitch("lark", random.Random(1), **lark_kwargs)
    lark.register_application(
        APP, _schema(), KEY, _specs(),
        mode=ForwardingMode.PER_PACKET, user_quantiles=config,
    )
    codec = TransportCookieCodec(APP, _schema(), KEY, random.Random(2))
    return lark, codec


def _cookies(codec, users, gender="f"):
    return [
        codec.encode({"gender": gender, "user": u}) for u in users
    ]


class TestLarkObservation:
    def test_scalar_path_counts_per_user(self):
        lark, codec = _setup()
        for cid in _cookies(codec, [3, 3, 3, 9]):
            lark.process_quic_packet(cid)
        report = lark.user_report(APP)
        assert report["users"] == 2
        assert report["events"] == 4
        assert report["quantiles"]["p99"] == 3

    def test_batch_and_columnar_match_scalar(self):
        users = [1, 2, 1, 3, 1, 2, 3, 3, 3, 7]
        snapshots = []
        for backend in ("scalar", "batch", "columnar"):
            lark, codec = _setup()
            cids = _cookies(codec, users)
            if backend == "scalar":
                for cid in cids:
                    lark.process_quic_packet(cid)
            elif backend == "batch":
                lark.process_quic_batch(cids)
            else:
                lark.process_quic_columnar(cids)
            snapshots.append(lark._apps[APP].users.snapshot())
        assert snapshots[0] == snapshots[1] == snapshots[2]

    def test_missing_key_feature_not_observed(self):
        # Feature stacks are prefix-truncated: a cookie carrying only
        # the gender feature has no user value, so it cannot be
        # attributed and must not pollute the per-user counts.
        lark, codec = _setup()
        lark.process_quic_packet(codec.encode({"gender": "f"}))
        lark.process_quic_packet(codec.encode({"gender": "f", "user": 5}))
        report = lark.user_report(APP)
        assert report["users"] == 1
        assert report["events"] == 1

    def test_region_fallback_without_key_feature(self):
        # key_feature=None keys on the raw cookie region — stable only
        # as long as the client resends the same minted cookie (encode
        # pads with fresh randomness, so re-encoding the same values
        # yields a new region).
        lark, codec = _setup(key_feature=None)
        one, two = _cookies(codec, [1, 2])
        for cid in (one, one, two):
            lark.process_quic_packet(cid)
        assert lark.user_report(APP)["users"] == 2

    def test_no_tracker_reports_none(self):
        lark = LarkSwitch("lark", random.Random(1))
        lark.register_application(APP, _schema(), KEY, _specs())
        assert lark.user_report(APP) is None
        assert lark.drain_user_stats(APP) is None


class TestDrainAbsorb:
    def _agg(self, mode="exact"):
        agg = AggSwitch("agg", random.Random(5))
        agg.register_application(
            APP, _schema(), KEY, _specs(),
            user_quantiles=UserQuantileConfig(
                mode=mode, key_feature="user"
            ),
        )
        return agg

    def test_drain_resets_lark_and_accumulates_in_agg(self):
        lark, codec = _setup()
        agg = self._agg()
        for period_users in ([1, 1, 2], [2, 3], [1]):
            for cid in _cookies(codec, period_users):
                lark.process_quic_packet(cid)
            agg.absorb_user_stats(APP, lark.drain_user_stats(APP))
            assert lark.user_report(APP)["events"] == 0
        report = agg.user_report(APP)
        assert report["users"] == 3
        assert report["events"] == 6
        # user 1 seen 3x across periods: periods fold, not overwrite.
        assert report["quantiles"]["p99"] == 3

    def test_chunked_drains_equal_single_tracker(self):
        users = [1, 2, 1, 3, 1, 2, 3, 3, 3, 7, 9, 9]
        whole_lark, codec = _setup(mode="sketch")
        for cid in _cookies(codec, users):
            whole_lark.process_quic_packet(cid)
        chunked_lark, _ = _setup(mode="sketch")
        agg = self._agg(mode="sketch")
        for lo in range(0, len(users), 4):
            for cid in _cookies(codec, users[lo:lo + 4]):
                chunked_lark.process_quic_packet(cid)
            agg.absorb_user_stats(APP, chunked_lark.drain_user_stats(APP))
        assert (
            agg.user_report(APP) == whole_lark.user_report(APP)
        )

    def test_absorb_validates(self):
        agg = self._agg()
        agg.absorb_user_stats(APP, None)  # no-op
        with pytest.raises(KeyError):
            agg.absorb_user_stats(0x99, {"mode": "exact"})
        bare = AggSwitch("agg2", random.Random(6))
        bare.register_application(APP, _schema(), KEY, _specs())
        with pytest.raises(ValueError):
            bare.absorb_user_stats(APP, {"mode": "exact"})

    def test_agg_report_includes_user_engagement(self):
        lark, codec = _setup()
        agg = self._agg()
        for cid in _cookies(codec, [4, 4, 8]):
            result = lark.process_quic_packet(cid)
            agg.process_packet(result.aggregation_payload)
        agg.absorb_user_stats(APP, lark.drain_user_stats(APP))
        report = agg.report(APP)
        assert report["user_engagement"]["users"] == 2
        assert report["by_gender"]["f"] == 3


class TestCheckpointRestore:
    @pytest.mark.parametrize("mode", ["exact", "sketch"])
    def test_lark_roundtrip(self, mode):
        lark, codec = _setup(mode=mode)
        for cid in _cookies(codec, [1, 1, 2, 3]):
            lark.process_quic_packet(cid)
        saved = lark.checkpoint(APP)
        saved_report = lark.user_report(APP)
        for cid in _cookies(codec, [5, 6, 7]):
            lark.process_quic_packet(cid)
        assert lark.user_report(APP) != saved_report
        lark.restore(APP, saved)
        assert lark.user_report(APP) == saved_report
        assert lark.stats_report(APP)["by_gender"]["f"] == 4

    def test_checkpoint_without_tracker_has_no_reserved_key(self):
        lark = LarkSwitch("lark", random.Random(1))
        lark.register_application(APP, _schema(), KEY, _specs())
        codec = TransportCookieCodec(APP, _schema(), KEY, random.Random(2))
        lark.process_quic_packet(codec.encode({"gender": "f", "user": 1}))
        assert "user_quantiles" not in lark.checkpoint(APP)

    def test_agg_roundtrip(self):
        agg = AggSwitch("agg", random.Random(5))
        agg.register_application(
            APP, _schema(), KEY, _specs(),
            user_quantiles=UserQuantileConfig(
                mode="sketch", key_feature="user"
            ),
        )
        codec = TransportCookieCodec(APP, _schema(), KEY, random.Random(2))
        lark, _ = _setup(mode="sketch")
        for cid in _cookies(codec, [1, 2, 2]):
            lark.process_quic_packet(cid)
        agg.absorb_user_stats(APP, lark.drain_user_stats(APP))
        saved = agg.checkpoint(APP)
        saved_report = agg.user_report(APP)
        for cid in _cookies(codec, [9, 9]):
            lark.process_quic_packet(cid)
        agg.absorb_user_stats(APP, lark.drain_user_stats(APP))
        agg.restore(APP, saved)
        assert agg.user_report(APP) == saved_report


class TestResourceBounds:
    def test_decode_memo_bounded(self):
        lark, codec = _setup(decode_memo_capacity=4)
        cids = _cookies(codec, list(range(16)))
        lark.process_quic_batch(cids)
        assert len(lark._decode_memo) <= 4
        # Decode stays correct through evictions: reprocessing counts.
        lark.process_quic_batch(cids)
        assert lark.user_report(APP)["events"] == 32

    def test_decode_memo_unbounded_by_default(self):
        lark, codec = _setup()
        lark.process_quic_batch(_cookies(codec, list(range(16))))
        assert len(lark._decode_memo) == 16

    def test_invalid_memo_capacity(self):
        with pytest.raises(ValueError):
            LarkSwitch("lark", random.Random(1), decode_memo_capacity=0)

    def test_revoke_frees_sketch_registers(self):
        lark, codec = _setup(mode="sketch")
        lark.process_quic_packet(codec.encode({"gender": "f", "user": 1}))
        names = list(lark.pipeline.registers.names())
        assert any("users" in n for n in names)
        lark.revoke_application(APP)
        assert list(lark.pipeline.registers.names()) == []
