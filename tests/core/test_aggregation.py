"""Custom aggregation packets (Appendix B.3)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import (
    AggregationCodec,
    AggregationPacket,
    ForwardingMode,
    SNATCH_SID,
)

KEY = bytes(range(16))


def _codec(app_id=0x42, seed=1):
    return AggregationCodec(app_id, KEY, random.Random(seed))


def _packet(items, mode=ForwardingMode.PER_PACKET, app_id=0x42):
    return AggregationPacket(app_id=app_id, mode=mode, items=items)


class TestRoundtrip:
    def test_per_packet(self):
        codec = _codec()
        packet = _packet([(0, 1), (3, 99)])
        decoded = codec.decode(codec.encode(packet))
        assert decoded.items == [(0, 1), (3, 99)]
        assert decoded.mode == ForwardingMode.PER_PACKET
        assert decoded.app_id == 0x42

    def test_periodical(self):
        codec = _codec()
        packet = _packet([(1024, 7)], mode=ForwardingMode.PERIODICAL)
        decoded = codec.decode(codec.encode(packet))
        assert decoded.mode == ForwardingMode.PERIODICAL

    def test_empty_items(self):
        codec = _codec()
        decoded = codec.decode(codec.encode(_packet([])))
        assert decoded.items == []
        assert decoded.item_count == 0

    @given(
        st.lists(
            st.tuples(st.integers(0, 0xFFFF), st.integers(0, 2**48 - 1)),
            max_size=50,
        )
    )
    @settings(max_examples=25)
    def test_roundtrip_property(self, items):
        codec = _codec(seed=9)
        decoded = codec.decode(codec.encode(_packet(items)))
        assert decoded.items == items


class TestWireFormat:
    def test_sid_leads_the_packet(self):
        wire = _codec().encode(_packet([(0, 1)]))
        assert int.from_bytes(wire[0:2], "big") == SNATCH_SID
        assert AggregationCodec.is_aggregation_packet(wire)

    def test_regular_udp_not_matched(self):
        assert not AggregationCodec.is_aggregation_packet(b"\x00\x01hello")
        assert not AggregationCodec.is_aggregation_packet(b"")

    def test_payload_is_encrypted(self):
        wire = _codec().encode(_packet([(0xBEEF, 0xCAFE)]))
        assert b"\xbe\xef" not in wire[4:]

    def test_item_limits(self):
        with pytest.raises(ValueError, match="7 bits"):
            _codec().encode(_packet([(i, 0) for i in range(128)]))
        with pytest.raises(ValueError, match="16 bits"):
            _codec().encode(_packet([(0x10000, 0)]))
        with pytest.raises(ValueError, match="48 bits"):
            _codec().encode(_packet([(0, 2**48)]))


class TestValidation:
    def test_app_id_mismatch_on_encode(self):
        with pytest.raises(ValueError, match="does not match"):
            _codec(app_id=0x42).encode(_packet([], app_id=0x43))

    def test_app_id_mismatch_on_decode(self):
        wire = _codec(app_id=0x42).encode(_packet([(0, 1)]))
        with pytest.raises(ValueError, match="mismatch"):
            _codec(app_id=0x43).decode(wire)

    def test_sid_mismatch(self):
        wire = bytearray(_codec().encode(_packet([(0, 1)])))
        wire[0] ^= 0xFF
        with pytest.raises(ValueError, match="SID"):
            _codec().decode(bytes(wire))

    def test_truncated(self):
        with pytest.raises(ValueError, match="short"):
            _codec().decode(SNATCH_SID.to_bytes(2, "big") + b"\x42\x01")

    def test_tampered_ciphertext_rejected(self):
        wire = bytearray(_codec().encode(_packet([(0, 1), (1, 2)])))
        wire[-1] ^= 0xFF
        with pytest.raises(ValueError):
            _codec().decode(bytes(wire))

    def test_wrong_key_rejected(self):
        wire = _codec().encode(_packet([(0, 1)]))
        stranger = AggregationCodec(0x42, bytes(16), random.Random(2))
        with pytest.raises(ValueError):
            stranger.decode(wire)

    def test_invalid_app_id(self):
        with pytest.raises(ValueError):
            AggregationCodec(999, KEY)
