"""Query compiler: validation, the in-network split, lowering."""

import random

import pytest

from repro.core.compiler import (
    CompileError,
    Query,
    QueryCompiler,
    QueryOpKind,
)
from repro.core.larkswitch import LarkSwitch
from repro.core.schema import CookieSchema, Feature
from repro.core.stats import StatKind
from repro.core.transport_cookie import TransportCookieCodec

KEY = bytes(range(16))


def _schema():
    return CookieSchema(
        "ads",
        (
            Feature.categorical("event", ["view", "click"]),
            Feature.categorical("campaign", ["c0", "c1", "c2"]),
            Feature.categorical("gender", ["f", "m", "x"]),
            Feature.number("demand", 0, 1000),
        ),
    )


class TestValidation:
    def test_unknown_feature(self):
        query = Query(_schema()).count_by("ghost")
        with pytest.raises(KeyError):
            QueryCompiler().compile(query)

    def test_count_by_needs_class(self):
        query = Query(_schema()).count_by("demand")
        with pytest.raises(CompileError, match="class feature"):
            QueryCompiler().compile(query)

    def test_sum_needs_number(self):
        query = Query(_schema()).sum("gender")
        with pytest.raises(CompileError, match="number feature"):
            QueryCompiler().compile(query)

    def test_group_by_needs_class(self):
        query = Query(_schema()).count_by("gender", group_by="demand")
        with pytest.raises(CompileError, match="group_by"):
            QueryCompiler().compile(query)

    def test_where_value_in_range(self):
        query = Query(_schema()).where("demand", "le", 5000)
        with pytest.raises(Exception):
            QueryCompiler().compile(query)

    def test_where_comparison_known(self):
        query = Query(_schema()).where("event", "like", "view")
        with pytest.raises(CompileError, match="comparison"):
            QueryCompiler().compile(query)


class TestLowering:
    def test_demographics_query_fully_offloads(self):
        query = (
            Query(_schema())
            .where("event", "eq", "view")
            .count_by("gender", group_by="campaign")
            .avg("demand")
        )
        compiled = QueryCompiler().compile(query)
        assert compiled.fully_in_network
        assert len(compiled.event_filters) == 1
        kinds = {(s.kind, s.feature, s.group_by) for s in compiled.specs}
        assert (StatKind.COUNT_BY_CLASS, "gender", "campaign") in kinds
        assert (StatKind.AVG, "demand", None) in kinds

    def test_distinct_users_lowers_to_dedup(self):
        compiled = QueryCompiler().compile(
            Query(_schema()).distinct_users().count_by("gender")
        )
        assert compiled.dedup
        assert compiled.fully_in_network

    def test_quantile_falls_to_server(self):
        query = (
            Query(_schema())
            .count_by("gender")
            .quantile("demand", 0.99)
            .count_by("campaign")  # after the boundary: server-side too
        )
        compiled = QueryCompiler().compile(query)
        assert not compiled.fully_in_network
        assert [op.kind for op in compiled.server_ops] == [
            QueryOpKind.QUANTILE, QueryOpKind.COUNT_BY
        ]
        # Only the pre-boundary count became a switch spec.
        assert len(compiled.specs) == 1

    def test_stage_budget_spills(self):
        query = Query(_schema())
        for _ in range(6):
            query = query.count_by("gender")
        compiled = QueryCompiler(stage_budget=3).compile(query)
        assert len(compiled.specs) == 3
        assert len(compiled.server_ops) == 3
        assert any("stage budget" in note for note in compiled.notes)

    def test_edge_filter_callable(self):
        compiled = QueryCompiler().compile(
            Query(_schema())
            .where("event", "eq", "click")
            .where("demand", "ge", 100)
            .count_by("gender")
        )
        accept = compiled.edge_filter()
        assert accept({"event": "click", "demand": 150})
        assert not accept({"event": "view", "demand": 150})
        assert not accept({"event": "click", "demand": 50})
        assert not accept({"demand": 150})  # missing field fails closed


class TestEndToEnd:
    def test_compiled_program_runs_on_a_switch(self):
        """The compiler's output is directly installable: push the
        specs to a LarkSwitch, stream cookies, read the answer."""
        schema = _schema()
        compiled = QueryCompiler().compile(
            Query(schema)
            .count_by("gender", group_by="campaign")
            .sum("demand")
        )
        lark = LarkSwitch("lark", random.Random(1))
        lark.register_application(
            0x42, schema, KEY, compiled.specs, dedup=compiled.dedup
        )
        codec = TransportCookieCodec(0x42, schema, KEY, random.Random(2))
        for campaign, gender, demand in (
            ("c0", "f", 10), ("c0", "f", 20), ("c1", "m", 30)
        ):
            lark.process_quic_packet(
                codec.encode({"event": "view", "campaign": campaign,
                              "gender": gender, "demand": demand})
            )
        report = lark.stats_report(0x42)
        count_spec = next(
            s for s in compiled.specs if s.kind is StatKind.COUNT_BY_CLASS
        )
        sum_spec = next(
            s for s in compiled.specs if s.kind is StatKind.SUM
        )
        assert report[count_spec.name][("c0", "f")] == 2
        assert report[sum_spec.name]["all"] == 60
