"""Transport-layer semantic cookies in the QUIC connection ID."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schema import CookieSchema, Feature, FeatureValueError
from repro.core.transport_cookie import (
    APP_ID_BYTE_INDEX,
    COOKIE_BYTE_END,
    COOKIE_BYTE_START,
    TransportCookieCodec,
)
from repro.quic.connection_id import ConnectionID, random_connection_id
from repro.quic.connection import SnatchConnectionIdPolicy

KEY = bytes(range(16))


def _schema():
    return CookieSchema(
        "app",
        (
            Feature.categorical("gender", ["f", "m", "x"]),
            Feature.categorical("age", ["18-24", "25-34", "35+"]),
            Feature.number("score", 0, 100),
        ),
    )


def _codec(app_id=0x42, seed=1):
    return TransportCookieCodec(
        app_id, _schema(), KEY, random.Random(seed)
    )


class TestEncode:
    def test_layout(self):
        cid = _codec().encode({"gender": "f"})
        raw = bytes(cid)
        assert len(raw) == 20
        assert raw[APP_ID_BYTE_INDEX] == 0x42

    def test_full_values_roundtrip(self):
        codec = _codec()
        values = {"gender": "m", "age": "35+", "score": 77}
        assert codec.decode(codec.encode(values)).values == values

    def test_partial_values_roundtrip(self):
        codec = _codec()
        decoded = codec.decode(codec.encode({"score": 5}))
        assert decoded.values == {"score": 5}
        assert not decoded.present("gender")

    def test_empty_values(self):
        codec = _codec()
        assert codec.decode(codec.encode({})).values == {}

    def test_unknown_feature_rejected(self):
        with pytest.raises(FeatureValueError, match="outside the schema"):
            _codec().encode({"ghost": 1})

    def test_out_of_range_aborted(self):
        with pytest.raises(FeatureValueError):
            _codec().encode({"score": 101})

    def test_cookie_bits_encrypted(self):
        """The same values encrypt to the same block (padding is random
        only beyond the used bits when the bit count is a multiple of 8
        -- so compare against the plaintext serialization instead)."""
        codec = _codec()
        cid = codec.encode({"gender": "f", "age": "18-24", "score": 0})
        block = bytes(cid)[2:18]
        # A plaintext encoding would start with bitmap 111 and zeros.
        assert block[0] != 0b11100000

    def test_schema_too_big_rejected(self):
        big = CookieSchema(
            "big", tuple(Feature.number("f%d" % i, 0, 2**30) for i in range(5))
        )
        with pytest.raises(ValueError, match="128"):
            TransportCookieCodec(0x1, big, KEY)

    def test_app_id_must_fit_byte(self):
        with pytest.raises(ValueError):
            TransportCookieCodec(256, _schema(), KEY)

    @given(
        st.sampled_from(["f", "m", "x"]),
        st.sampled_from(["18-24", "25-34", "35+"]),
        st.integers(0, 100),
    )
    @settings(max_examples=30)
    def test_roundtrip_property(self, gender, age, score):
        codec = _codec(seed=7)
        values = {"gender": gender, "age": age, "score": score}
        assert codec.decode(codec.encode(values)).values == values


class TestDecode:
    def test_matches_by_app_id(self):
        codec = _codec(app_id=0x42)
        cid = codec.encode({"gender": "f"})
        assert codec.matches(cid)
        other = _codec(app_id=0x43)
        assert not other.matches(cid)

    def test_decode_wrong_app_id_raises(self):
        codec = _codec(app_id=0x42)
        other = _codec(app_id=0x43, seed=2)
        cid = other.encode({"gender": "f"})
        with pytest.raises(ValueError, match="mismatch"):
            codec.decode(cid)

    def test_try_decode_returns_none_for_foreign_traffic(self):
        codec = _codec()
        assert codec.try_decode(random_connection_id(8)) is None

    def test_try_decode_wrong_key_aborts(self):
        """Stale or rotated keys produce garbage that fails feature
        range checks most of the time; try_decode must not raise."""
        codec = _codec()
        wrong = TransportCookieCodec(
            0x42, _schema(), bytes(16), random.Random(3)
        )
        aborted = 0
        for i in range(20):
            cid = codec.encode({"gender": "f", "age": "35+", "score": 50})
            if wrong.try_decode(cid) is None:
                aborted += 1
        assert aborted > 0

    def test_decode_wrong_length(self):
        with pytest.raises(ValueError, match="20 bytes"):
            _codec().decode(ConnectionID(b"\x00\x42" + bytes(6)))


class TestClientPolicyCompatibility:
    def test_regenerated_cid_still_decodes(self):
        """The Snatch 1-RTT client keeps bytes [1, 18); decoding must
        not depend on the regenerated DCID/DCID-R2 bytes."""
        codec = _codec()
        values = {"gender": "x", "age": "25-34", "score": 99}
        original = codec.encode(values)
        policy = SnatchConnectionIdPolicy(
            cookie_start=COOKIE_BYTE_START,
            cookie_end=COOKIE_BYTE_END,
            rng=random.Random(4),
        )
        regenerated = policy.next_initial_dcid(original)
        assert bytes(regenerated)[0:1] != bytes(original)[0:1] or True
        assert codec.decode(regenerated).values == values

    def test_preserved_range_covers_app_id_and_block(self):
        assert COOKIE_BYTE_START == 1
        assert COOKIE_BYTE_END == 18
