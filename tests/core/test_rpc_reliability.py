"""RpcBus hardening: acks, retries with backoff, dead-device
declaration, and error surfacing (``failed`` / ``quiesce(raise_on_error)``)."""

import pytest

from repro.core.rpc import RpcBus, RpcError
from repro.obs import MetricsRegistry


class Counter:
    """A device that counts method executions."""

    def __init__(self):
        self.alive = True
        self.calls = []

    def ping(self, value=0):
        self.calls.append(value)


class Flaky:
    def __init__(self):
        self.alive = True

    def boom(self):
        raise RuntimeError("nope")


class TestErrorSurfacing:
    def test_failed_lists_device_exceptions(self):
        bus = RpcBus(default_delay_ms=1)
        bus.register_device("f", Flaky())
        record = bus.call("f", "boom")
        bus.quiesce()
        assert bus.failed() == [record]
        assert "nope" in record.error

    def test_quiesce_raise_on_error(self):
        bus = RpcBus(default_delay_ms=1)
        bus.register_device("f", Flaky())
        bus.call("f", "boom")
        with pytest.raises(RpcError) as excinfo:
            bus.quiesce(raise_on_error=True)
        assert len(excinfo.value.calls) == 1
        assert "f.boom" in str(excinfo.value)

    def test_quiesce_default_still_swallows(self):
        """Legacy behavior preserved: errors stay in the log unless
        asked for."""
        bus = RpcBus(default_delay_ms=1)
        bus.register_device("f", Flaky())
        bus.call("f", "boom")
        bus.quiesce()  # does not raise
        assert len(bus.failed()) == 1

    def test_healthy_quiesce_raises_nothing(self):
        bus = RpcBus(default_delay_ms=1)
        bus.register_device("c", Counter())
        bus.call("c", "ping", 1)
        bus.quiesce(raise_on_error=True)
        assert bus.failed() == []


class TestRetries:
    def _bus(self, **kwargs):
        defaults = dict(default_delay_ms=10, timeout_ms=30, max_retries=3)
        defaults.update(kwargs)
        return RpcBus(**defaults)

    def test_forced_drop_retried_until_acked(self):
        bus = self._bus()
        device = Counter()
        bus.register_device("d", device)
        bus.drop_next("d")
        record = bus.call("d", "ping", 7)
        bus.quiesce()
        assert device.calls == [7]  # executed exactly once
        assert record.attempts == 2
        assert record.completed and record.acked_at_ms is not None
        assert bus.retries() == 1

    def test_ack_waits_one_round_trip(self):
        bus = self._bus()
        bus.register_device("d", Counter())
        record = bus.call("d", "ping")
        bus.quiesce()
        # Delivered at 10 ms, ack propagates back one delay later.
        assert record.acked_at_ms == 20.0

    def test_at_most_once_execution(self):
        """A retry racing a slow first delivery must not run the
        method twice: timeout fires before the first delivery lands."""
        bus = self._bus(default_delay_ms=50, timeout_ms=10)
        device = Counter()
        bus.register_device("d", device)
        record = bus.call("d", "ping", 1)
        bus.quiesce()
        assert device.calls == [1]
        assert record.attempts >= 2

    def test_dead_device_declared_after_max_retries(self):
        bus = self._bus(max_retries=2)
        device = Counter()
        device.alive = False  # crashed: neither executes nor acks
        bus.register_device("d", device)
        record = bus.call("d", "ping")
        bus.quiesce()
        assert record.failed
        assert "DeadDeviceError" in record.error
        assert record.attempts == 3  # initial + 2 retries
        assert device.calls == []
        assert bus.failed() == [record]

    def test_revived_device_picks_up_retry(self):
        """A device that comes back mid-retry window receives the
        retried attempt — the self-healing path."""
        bus = self._bus(max_retries=5)
        device = Counter()
        device.alive = False
        bus.register_device("d", device)
        record = bus.call("d", "ping", 9)
        bus.sim.schedule_at(40.0, lambda: setattr(device, "alive", True))
        bus.quiesce()
        assert device.calls == [9]
        assert record.completed and record.attempts >= 2

    def test_on_complete_fires_once_terminal(self):
        bus = self._bus()
        terminal = []
        bus.register_device("d", Counter())
        bus.drop_next("d")
        bus.call("d", "ping", _on_complete=terminal.append)
        bus.quiesce()
        assert len(terminal) == 1
        assert terminal[0].acked_at_ms is not None

    def test_backoff_spaces_attempts_out(self):
        """Exponential backoff: with timeout 30 and factor 2 a dead
        device is declared at 30 + 60 + 120 ms, not 3 x 30."""
        bus = self._bus(max_retries=2, backoff_factor=2.0)
        device = Counter()
        device.alive = False
        bus.register_device("d", device)
        bus.call("d", "ping")
        bus.quiesce()
        assert bus.sim.now == pytest.approx(30.0 + 60.0 + 120.0)

    def test_loss_rate_deterministic_per_seed(self):
        def run(seed):
            bus = self._bus(seed=seed, max_retries=6)
            device = Counter()
            bus.register_device("d", device)
            bus.set_loss("d", 0.5)
            records = [bus.call("d", "ping", i) for i in range(10)]
            bus.quiesce()
            return [r.attempts for r in records]

        assert run(3) == run(3)
        assert run(3) != run(4)  # different seed, different losses

    def test_fire_and_forget_mode_unchanged(self):
        """Without timeout_ms there are no retries: a lost attempt is
        simply gone (the legacy contract)."""
        bus = RpcBus(default_delay_ms=10)
        device = Counter()
        bus.register_device("d", device)
        bus.drop_next("d")
        record = bus.call("d", "ping")
        bus.quiesce()
        assert device.calls == []
        assert record.attempts == 1 and not record.completed


class TestMetrics:
    """Every reliability event lands in the bus's ``rpc.*`` series."""

    def _bus(self, **kwargs):
        defaults = dict(
            default_delay_ms=10, timeout_ms=30, max_retries=3,
            registry=MetricsRegistry(),
        )
        defaults.update(kwargs)
        return RpcBus(**defaults)

    def test_clean_call_counts_send_attempt_ack(self):
        bus = self._bus()
        bus.register_device("d", Counter())
        bus.call("d", "ping")
        bus.quiesce()
        metrics = bus.metrics
        assert metrics.value("rpc.sends") == 1
        assert metrics.value("rpc.attempts") == 1
        assert metrics.value("rpc.acks") == 1
        assert metrics.value("rpc.retries") == 0
        assert metrics.value("rpc.timeouts") == 0

    def test_drop_counts_retry_timeout_and_backoff(self):
        bus = self._bus()
        bus.register_device("d", Counter())
        bus.drop_next("d")
        bus.call("d", "ping")
        bus.quiesce()
        metrics = bus.metrics
        assert metrics.value("rpc.drops") == 1
        assert metrics.value("rpc.timeouts") == 1
        assert metrics.value("rpc.retries") == 1
        assert metrics.value("rpc.backoff_wait_ms") == 30

    def test_dead_device_counted(self):
        bus = self._bus(max_retries=2)
        device = Counter()
        device.alive = False
        bus.register_device("d", device)
        bus.call("d", "ping")
        bus.quiesce()
        assert bus.metrics.value("rpc.dead_devices") == 1
        assert bus.metrics.value("rpc.attempts") == 3

    def test_handler_error_counted_and_still_raised(self):
        """The bugfix regression: a handler exception shows up in
        ``rpc.handler_errors`` *and* ``quiesce(raise_on_error=True)``
        still surfaces it — metering must not swallow the error."""
        bus = self._bus()
        bus.register_device("f", Flaky())
        bus.call("f", "boom")
        with pytest.raises(RpcError):
            bus.quiesce(raise_on_error=True)
        assert bus.metrics.value("rpc.handler_errors") == 1
        assert len(bus.failed()) == 1


class TestFaultInjectionApi:
    def test_set_loss_validates(self):
        bus = RpcBus()
        bus.register_device("d", Counter())
        with pytest.raises(ValueError):
            bus.set_loss("d", 1.0)
        with pytest.raises(KeyError):
            bus.set_loss("ghost", 0.1)

    def test_drop_next_unknown_device(self):
        bus = RpcBus()
        with pytest.raises(KeyError):
            bus.drop_next("ghost")

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            RpcBus(timeout_ms=0)
        with pytest.raises(ValueError):
            RpcBus(max_retries=-1)
        with pytest.raises(ValueError):
            RpcBus(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RpcBus(retry_jitter_ms=-1)
