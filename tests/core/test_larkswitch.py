"""LarkSwitch data-plane behaviour."""

import random

import pytest

from repro.core.aggregation import AggregationCodec, ForwardingMode
from repro.core.larkswitch import LarkSwitch
from repro.core.schema import CookieSchema, Feature
from repro.core.stats import StatKind, StatSpec
from repro.core.transport_cookie import TransportCookieCodec
from repro.quic.connection_id import random_connection_id
from repro.switch.pipeline import AES_PASS_LATENCY_MS, LINE_RATE_LATENCY_MS

KEY = bytes(range(16))
APP = 0x42


def _schema():
    return CookieSchema(
        "app",
        (
            Feature.categorical("event", ["view", "click"]),
            Feature.categorical("gender", ["f", "m", "x"]),
        ),
    )


def _specs():
    return [StatSpec("by_gender", StatKind.COUNT_BY_CLASS, "gender")]


def _setup(mode=ForwardingMode.PER_PACKET, period=0.0, dedup=False):
    lark = LarkSwitch("lark", random.Random(1))
    lark.register_application(
        APP, _schema(), KEY, _specs(), mode=mode, period_ms=period, dedup=dedup
    )
    codec = TransportCookieCodec(APP, _schema(), KEY, random.Random(2))
    return lark, codec


class TestMatching:
    def test_snatch_packet_decoded_and_forwarded(self):
        lark, codec = _setup()
        result = lark.process_quic_packet(
            codec.encode({"event": "view", "gender": "f"})
        )
        assert result.matched
        assert result.forwarded_original
        assert result.decoded_values == {"event": "view", "gender": "f"}
        assert result.aggregation_payload is not None

    def test_foreign_quic_traffic_passes_untouched(self):
        lark, _codec = _setup()
        result = lark.process_quic_packet(
            random_connection_id(20, random.Random(3)).replace_range(
                1, b"\x99"
            )
        )
        assert not result.matched
        assert result.forwarded_original
        assert result.aggregation_payload is None

    def test_aes_latency_charged(self):
        lark, codec = _setup()
        result = lark.process_quic_packet(codec.encode({"gender": "f"}))
        assert result.latency_ms == pytest.approx(
            LINE_RATE_LATENCY_MS + AES_PASS_LATENCY_MS
        )

    def test_stats_accumulate(self):
        lark, codec = _setup()
        for gender in ("f", "f", "m"):
            lark.process_quic_packet(codec.encode({"gender": gender}))
        report = lark.stats_report(APP)
        assert report["by_gender"]["f"] == 2
        assert report["by_gender"]["m"] == 1

    def test_per_packet_payload_decodable(self):
        lark, codec = _setup()
        result = lark.process_quic_packet(
            codec.encode({"event": "click", "gender": "x"})
        )
        agg_codec = AggregationCodec(APP, KEY, random.Random(4))
        packet = agg_codec.decode(result.aggregation_payload)
        assert packet.mode == ForwardingMode.PER_PACKET
        # Items are (feature_index, wire_value): event=click(1), gender=x(2).
        assert packet.items == [(0, 1), (1, 2)]

    def test_stale_key_cookie_garbled_or_aborted(self):
        """A cookie encrypted under a rotated-away key decrypts to
        noise: some decodes abort on range checks, and the rest carry
        no signal (they do not reproduce the planted values)."""
        lark, _codec = _setup()
        stale = TransportCookieCodec(
            APP, _schema(), bytes(16), random.Random(5)
        )
        planted = {"event": "view", "gender": "f"}
        outcomes = [
            lark.process_quic_packet(stale.encode(planted))
            for _ in range(40)
        ]
        assert all(r.forwarded_original for r in outcomes)  # never disturbed
        matches = sum(1 for r in outcomes if r.decoded_values == planted)
        assert matches < len(outcomes) // 2


class TestPeriodical:
    def test_no_per_packet_payload(self):
        lark, codec = _setup(ForwardingMode.PERIODICAL, period=100)
        result = lark.process_quic_packet(codec.encode({"gender": "f"}))
        assert result.aggregation_payload is None

    def test_end_period_emits_and_resets(self):
        lark, codec = _setup(ForwardingMode.PERIODICAL, period=100)
        for _ in range(3):
            lark.process_quic_packet(codec.encode({"gender": "m"}))
        payload = lark.end_period(APP)
        assert payload is not None
        assert lark.stats_report(APP)["by_gender"]["m"] == 0

    def test_empty_period_emits_nothing(self):
        lark, _codec = _setup(ForwardingMode.PERIODICAL, period=100)
        assert lark.end_period(APP) is None

    def test_end_period_on_per_packet_app_rejected(self):
        lark, _codec = _setup()
        with pytest.raises(ValueError, match="per-packet"):
            lark.end_period(APP)

    def test_end_period_unknown_app(self):
        lark, _codec = _setup()
        with pytest.raises(KeyError):
            lark.end_period(0x99)

    def test_periodical_needs_period(self):
        lark = LarkSwitch("l2")
        with pytest.raises(ValueError, match="period"):
            lark.register_application(
                APP, _schema(), KEY, _specs(), mode=ForwardingMode.PERIODICAL
            )


class TestDedup:
    def test_repeat_cookie_counted_once(self):
        lark, codec = _setup(
            ForwardingMode.PERIODICAL, period=100, dedup=True
        )
        cid = codec.encode({"gender": "f"})
        first = lark.process_quic_packet(cid)
        second = lark.process_quic_packet(cid)
        assert not first.deduplicated
        assert second.deduplicated
        assert lark.stats_report(APP)["by_gender"]["f"] == 1

    def test_distinct_cookies_all_counted(self):
        lark, codec = _setup(
            ForwardingMode.PERIODICAL, period=100, dedup=True
        )
        lark.process_quic_packet(codec.encode({"gender": "f"}))
        lark.process_quic_packet(codec.encode({"gender": "m"}))
        report = lark.stats_report(APP)
        assert report["by_gender"]["f"] == 1
        assert report["by_gender"]["m"] == 1

    def test_dedup_resets_at_period_end(self):
        lark, codec = _setup(
            ForwardingMode.PERIODICAL, period=100, dedup=True
        )
        cid = codec.encode({"gender": "f"})
        lark.process_quic_packet(cid)
        lark.end_period(APP)
        result = lark.process_quic_packet(cid)
        assert not result.deduplicated


class TestRegistration:
    def test_duplicate_app_rejected(self):
        lark, _codec = _setup()
        with pytest.raises(ValueError, match="already"):
            lark.register_application(APP, _schema(), KEY, _specs())

    def test_revoke_frees_resources(self):
        lark, codec = _setup()
        used_before = lark.pipeline.registers.used_bits
        assert used_before > 0
        assert lark.revoke_application(APP)
        assert lark.pipeline.registers.used_bits == 0
        assert lark.registered_app_ids() == []
        # Traffic for the revoked app now passes untouched.
        result = lark.process_quic_packet(codec.encode({"gender": "f"}))
        assert not result.matched

    def test_revoke_unknown_is_false(self):
        lark, _codec = _setup()
        assert not lark.revoke_application(0x99)

    def test_multiple_apps_coexist(self):
        lark, codec = _setup()
        other_schema = CookieSchema(
            "other", (Feature.number("n", 0, 7),)
        )
        lark.register_application(
            0x50, other_schema, KEY,
            [StatSpec("n_sum", StatKind.SUM, "n")],
        )
        other_codec = TransportCookieCodec(
            0x50, other_schema, KEY, random.Random(6)
        )
        lark.process_quic_packet(codec.encode({"gender": "f"}))
        lark.process_quic_packet(other_codec.encode({"n": 5}))
        assert lark.stats_report(APP)["by_gender"]["f"] == 1
        assert lark.stats_report(0x50)["n_sum"]["all"] == 5
