"""CLI smoke and behaviour tests."""

import io

import pytest

from repro.cli import build_parser, main


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestSpeedup:
    def test_default_medians(self):
        code, text = _run(["speedup"])
        assert code == 0
        assert "Trans-1RTT" in text
        assert "x" in text

    def test_custom_operating_point(self):
        code, text = _run(["speedup", "--d-wa", "26.3"])
        assert code == 0
        # US operating point: Trans-1RTT + INSA ~ 31x.
        line = next(
            l for l in text.splitlines()
            if l.startswith("Trans-1RTT") and "yes" in l
        )
        value = float(line.split()[-1].rstrip("x"))
        assert 26 < value < 37

    def test_periodical(self):
        code, text = _run(["speedup", "--interval", "200"])
        assert code == 0
        assert "interval 200 ms" in text


class TestBreakdown:
    def test_totals_present(self):
        code, text = _run(["breakdown"])
        assert code == 0
        assert "no-snatch" in text
        assert "snatch-trans-insa" in text
        assert "1009" in text or "1008" in text


class TestTestbed:
    def test_trans_insa_run(self):
        code, text = _run(
            ["testbed", "--scheme", "trans-1rtt", "--insa",
             "--duration-ms", "2000"]
        )
        assert code == 0
        assert "median 60" in text
        assert "counts exact" in text

    def test_baseline_has_no_aggregation_line(self):
        code, text = _run(
            ["testbed", "--scheme", "no-snatch", "--duration-ms", "2000"]
        )
        assert code == 0
        assert "aggregation" not in text


class TestOtherCommands:
    def test_measure(self):
        code, text = _run(["measure", "--sites", "60"])
        assert code == 0
        assert "d_ci" in text

    def test_table1(self):
        code, text = _run(["table1"])
        assert code == 0
        assert "partitionBy" in text and "N/A" in text

    def test_carriers(self):
        code, text = _run(["carriers"])
        assert code == 0
        assert "quic-connection-id" in text


class TestMetricsCommand:
    def test_prints_metrics_table(self):
        code, text = _run(["metrics", "--duration-ms", "600"])
        assert code == 0
        assert "workload: chaos scenario=standard-outage" in text
        assert "pipeline.lark.packets" in text
        assert "rpc.sends" in text
        assert "chaos.events" in text

    def test_spans_flag_prints_span_table(self):
        code, text = _run(["metrics", "--duration-ms", "600", "--spans"])
        assert code == 0
        assert "chaos.run" in text

    def test_json_dump_parses(self, tmp_path):
        from repro.obs import parse_jsonl

        path = tmp_path / "dump.jsonl"
        code, text = _run(
            ["metrics", "--duration-ms", "600", "--json", str(path)]
        )
        assert code == 0
        records = parse_jsonl(path.read_text(encoding="utf-8"))
        assert records, "dump is empty"
        assert "wrote %d records" % len(records) in text
        assert any(r["kind"] == "span" for r in records)

    def test_no_scenario_runs_clean(self):
        code, text = _run(
            ["metrics", "--scenario", "none", "--duration-ms", "600"]
        )
        assert code == 0
        assert "consistent=yes" in text


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["testbed", "--scheme", "carrier-pigeon"])
