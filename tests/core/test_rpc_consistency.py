"""RPC bus + the section-4.3 consistency experiment.

The naive in-place key rotation loses data during the RPC skew window;
the controller's versioned update (new app-ID, grace period) does not.
"""

import random

import pytest

from repro.core.aggswitch import AggSwitch
from repro.core.larkswitch import LarkSwitch
from repro.core.rpc import RpcBus
from repro.core.schema import CookieSchema, Feature
from repro.core.stats import StatKind, StatSpec
from repro.core.transport_cookie import TransportCookieCodec

OLD_KEY = bytes(range(16))
NEW_KEY = bytes(range(16, 32))
APP = 0x42


def _schema():
    return CookieSchema(
        "ads", (Feature.categorical("gender", ["f", "m", "x"]),)
    )


def _specs():
    return [StatSpec("by_gender", StatKind.COUNT_BY_CLASS, "gender")]


class TestRpcBus:
    def test_calls_deliver_after_delay(self):
        bus = RpcBus(default_delay_ms=25)
        calls = []

        class Device:
            def ping(self, value):
                calls.append((bus.sim.now, value))

        bus.register_device("d", Device())
        record = bus.call("d", "ping", 7)
        assert bus.pending() == 1
        bus.quiesce()
        assert calls == [(25.0, 7)]
        assert record.completed
        assert bus.pending() == 0

    def test_per_device_delays(self):
        bus = RpcBus(default_delay_ms=10)
        order = []

        class Device:
            def __init__(self, name):
                self.name = name

            def mark(self):
                order.append((bus.sim.now, self.name))

        bus.register_device("near", Device("near"), delay_ms=5)
        bus.register_device("far", Device("far"), delay_ms=90)
        bus.call_all("mark")
        bus.quiesce()
        assert order == [(5.0, "near"), (90.0, "far")]

    def test_errors_captured_not_raised(self):
        bus = RpcBus(default_delay_ms=1)

        class Flaky:
            def boom(self):
                raise RuntimeError("nope")

        bus.register_device("f", Flaky())
        record = bus.call("f", "boom")
        bus.quiesce()
        assert record.error is not None and "nope" in record.error
        assert not record.completed

    def test_unknown_device(self):
        bus = RpcBus()
        with pytest.raises(KeyError):
            bus.call("ghost", "m")
        with pytest.raises(KeyError):
            bus.delay_to("ghost")

    def test_duplicate_device(self):
        bus = RpcBus()
        bus.register_device("d", object())
        with pytest.raises(ValueError):
            bus.register_device("d", object())


class TestConsistencyExperiment:
    """The paper's scenario, made executable."""

    def _deployment(self):
        lark = LarkSwitch("lark", random.Random(1))
        lark.register_application(APP, _schema(), OLD_KEY, _specs())
        agg = AggSwitch("agg", random.Random(2))
        agg.register_application(APP, _schema(), OLD_KEY, _specs())
        bus = RpcBus(default_delay_ms=10)
        # The LarkSwitch is a fast hop away; the AggSwitch's control
        # plane is across the WAN.
        bus.register_device("lark", lark, delay_ms=10)
        bus.register_device("agg", agg, delay_ms=120)
        return lark, agg, bus

    def _traffic(self, lark, agg, key, at_ms, bus):
        """One request at simulated time at_ms; returns merged?"""
        codec = TransportCookieCodec(APP, _schema(), key, random.Random(3))
        outcome = {}

        def fire():
            result = lark.process_quic_packet(codec.encode({"gender": "f"}))
            if result.aggregation_payload is None:
                outcome["merged"] = False
                return
            outcome["merged"] = agg.process_packet(
                result.aggregation_payload
            ).merged

        bus.sim.schedule_at(at_ms, fire)
        return outcome

    def test_naive_rekey_loses_data_in_the_skew_window(self):
        lark, agg, bus = self._deployment()
        # t=0: the controller broadcasts an in-place rekey.
        bus.call("lark", "rekey_application", APP, NEW_KEY)
        bus.call("agg", "rekey_application", APP, NEW_KEY)
        # t=50: the lark (rekeyed at t=10) emits NEW_KEY aggregation
        # packets, but the agg (rekeys at t=120) still expects OLD_KEY.
        during = self._traffic(lark, agg, NEW_KEY, at_ms=50, bus=bus)
        after = self._traffic(lark, agg, NEW_KEY, at_ms=200, bus=bus)
        bus.quiesce()
        assert during["merged"] is False   # data silently lost
        assert after["merged"] is True     # consistent again

    def test_versioned_update_never_loses_data(self):
        """The controller's actual scheme: a *new* app-ID is installed
        agg-first; the old version keeps running until retirement, so
        every instant has a fully-consistent pipeline for whichever
        cookie version the user holds."""
        lark, agg, bus = self._deployment()
        new_app = 0x43
        # Install order: AggSwitch first (its rules must exist before
        # any LarkSwitch can emit the new format).
        bus.call("agg", "register_application", new_app, _schema(),
                 NEW_KEY, _specs())

        def install_lark():
            bus.call("lark", "register_application", new_app, _schema(),
                     NEW_KEY, _specs())

        # Lark installation begins only after the agg's RPC landed.
        bus.sim.schedule_at(125, install_lark)

        outcomes = []
        # Old-version cookies flow throughout the update.
        for t in (50, 150, 300):
            outcomes.append(self._traffic(lark, agg, OLD_KEY, t, bus))
        bus.quiesce()
        assert all(o["merged"] for o in outcomes)
        # And new-version cookies work once both tiers know the app.
        lark_codec = TransportCookieCodec(
            new_app, _schema(), NEW_KEY, random.Random(4)
        )
        result = lark.process_quic_packet(lark_codec.encode({"gender": "m"}))
        assert agg.process_packet(result.aggregation_payload).merged
