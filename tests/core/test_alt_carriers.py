"""Alternative transport carriers (Appendix B.2)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alt_carriers import (
    Ipv6Carrier,
    QUIC_CARRIER_PROFILE,
    TcpTimestampCarrier,
    carrier_comparison,
)
from repro.core.schema import CookieSchema, Feature, FeatureValueError

KEY = bytes(range(16))


def _small_schema():
    return CookieSchema(
        "x",
        (
            Feature.categorical("g", ["a", "b", "c"]),
            Feature.number("n", 0, 100),
        ),
    )


class TestComparison:
    def test_only_quic_is_suitable(self):
        profiles = carrier_comparison()
        suitable = [p for p in profiles if p.suitable_for_snatch]
        assert [p.name for p in suitable] == ["quic-connection-id"]

    def test_bit_budgets_match_appendix(self):
        budgets = {p.name: p.cookie_bits for p in carrier_comparison()}
        assert budgets == {
            "ipv6-lsb": 64,
            "tcp-timestamp": 32,
            "quic-connection-id": 160,
        }

    def test_quic_needs_only_userspace_change(self):
        assert QUIC_CARRIER_PROFILE.client_modification == "userspace"
        assert all(
            p.client_modification == "root"
            for p in carrier_comparison()
            if p.name != "quic-connection-id"
        )


class TestIpv6Carrier:
    def test_roundtrip(self):
        carrier = Ipv6Carrier(_small_schema(), KEY, rng=random.Random(1))
        address = carrier.encode({"g": "b", "n": 42})
        assert carrier.decode(address) == {"g": "b", "n": 42}

    def test_prefix_preserved(self):
        carrier = Ipv6Carrier(
            _small_schema(), KEY, prefix=0xFD00 << 48, rng=random.Random(2)
        )
        address = carrier.encode({"g": "a"})
        assert address >> 64 == 0xFD00 << 48

    def test_values_masked_on_the_wire(self):
        """The low 64 bits must not expose the plaintext bit packing."""
        carrier = Ipv6Carrier(_small_schema(), KEY, rng=random.Random(3))
        address = carrier.encode({"g": "a", "n": 0})
        low = address & ((1 << 64) - 1)
        # Plaintext would start with bitmap 11 then zeros.
        assert low >> 56 != 0b11000000

    def test_capacity_enforced(self):
        wide = CookieSchema(
            "wide", tuple(Feature.number("f%d" % i, 0, 2**30) for i in range(3))
        )
        with pytest.raises(ValueError, match="64"):
            Ipv6Carrier(wide, KEY)

    def test_partial_values(self):
        carrier = Ipv6Carrier(_small_schema(), KEY, rng=random.Random(4))
        assert carrier.decode(carrier.encode({"n": 7})) == {"n": 7}

    @given(st.sampled_from(["a", "b", "c"]), st.integers(0, 100))
    @settings(max_examples=25)
    def test_roundtrip_property(self, g, n):
        carrier = Ipv6Carrier(_small_schema(), KEY, rng=random.Random(5))
        assert carrier.decode(carrier.encode({"g": g, "n": n})) == {
            "g": g, "n": n
        }


class TestTcpTimestampCarrier:
    def test_roundtrip_within_connection(self):
        carrier = TcpTimestampCarrier(_small_schema(), KEY,
                                      rng=random.Random(6))
        carrier.open_connection()
        tsval = carrier.encode({"g": "c", "n": 99})
        assert 0 <= tsval < (1 << 32)
        assert carrier.decode(tsval) == {"g": "c", "n": 99}

    def test_cookie_dies_with_the_connection(self):
        """The disqualifying property: no reuse across connections."""
        carrier = TcpTimestampCarrier(_small_schema(), KEY,
                                      rng=random.Random(7))
        carrier.open_connection()
        carrier.encode({"g": "a"})
        carrier.close_connection()
        with pytest.raises(RuntimeError, match="connection"):
            carrier.encode({"g": "a"})
        with pytest.raises(RuntimeError):
            carrier.decode(12345)

    def test_capacity_enforced(self):
        wide = CookieSchema(
            "wide", (Feature.number("big", 0, 2**40),)
        )
        with pytest.raises(ValueError, match="32"):
            TcpTimestampCarrier(wide, KEY)

    def test_unknown_feature_rejected(self):
        carrier = TcpTimestampCarrier(_small_schema(), KEY,
                                      rng=random.Random(8))
        carrier.open_connection()
        with pytest.raises(FeatureValueError):
            carrier.encode({"ghost": 1})
