"""Regional deployments: per-region keys, rotation, global merge."""

import random

import pytest

from repro.core.aggswitch import AggSwitch
from repro.core.larkswitch import LarkSwitch
from repro.core.regional import RegionalDeployment
from repro.core.schema import Feature
from repro.core.stats import StatKind, StatSpec
from repro.core.transport_cookie import TransportCookieCodec


def _features():
    return [Feature.categorical("gender", ["f", "m", "x"])]


def _specs():
    return [StatSpec("by_gender", StatKind.COUNT_BY_CLASS, "gender")]


def _deployment():
    deployment = RegionalDeployment(seed=5)
    agg = AggSwitch("agg", random.Random(1))
    deployment.attach_agg_switch(agg)
    larks = {}
    for region in ("us", "eu"):
        lark = LarkSwitch("lark-%s" % region, random.Random(hash(region) % 97))
        deployment.attach_lark_switch(lark, region)
        larks[region] = lark
    return deployment, agg, larks


class TestDeployment:
    def test_regions_get_distinct_keys_and_app_ids(self):
        deployment, _agg, _larks = _deployment()
        handle = deployment.deploy("ads", _features(), _specs())
        assert handle.key_for("us") != handle.key_for("eu")
        assert handle.app_id_for("us") != handle.app_id_for("eu")

    def test_keys_derive_from_one_master(self):
        """The developer holds one secret; regional keys are derived,
        deterministic, and labelled."""
        from repro.crypto.keys import derive_subkey
        deployment, _agg, _larks = _deployment()
        handle = deployment.deploy("ads", _features(), _specs())
        assert handle.key_for("us") == derive_subkey(
            handle.master_key, "region:us:epoch:0"
        )

    def test_regional_switch_only_decodes_own_region(self):
        deployment, _agg, larks = _deployment()
        handle = deployment.deploy("ads", _features(), _specs())
        us_codec = TransportCookieCodec(
            handle.app_id_for("us"), handle.transport_schema,
            handle.key_for("us"), random.Random(2),
        )
        cid = us_codec.encode({"gender": "f"})
        assert larks["us"].process_quic_packet(cid).matched
        # The EU switch has no entry for the US app-ID.
        assert not larks["eu"].process_quic_packet(cid).matched

    def test_no_devices_rejected(self):
        deployment = RegionalDeployment(seed=1)
        deployment.attach_agg_switch(AggSwitch("agg", random.Random(1)))
        with pytest.raises(RuntimeError, match="regional devices"):
            deployment.deploy("ads", _features(), _specs())

    def test_duplicate_name_rejected(self):
        deployment, _agg, _larks = _deployment()
        deployment.deploy("ads", _features(), _specs())
        with pytest.raises(ValueError, match="already"):
            deployment.deploy("ads", _features(), _specs())


class TestGlobalMerge:
    def test_combined_report_sums_regions(self):
        deployment, agg, larks = _deployment()
        handle = deployment.deploy("ads", _features(), _specs())
        for region, genders in (("us", ["f", "f", "m"]), ("eu", ["f", "x"])):
            codec = TransportCookieCodec(
                handle.app_id_for(region), handle.transport_schema,
                handle.key_for(region), random.Random(3),
            )
            for gender in genders:
                result = larks[region].process_quic_packet(
                    codec.encode({"gender": gender})
                )
                agg.process_packet(result.aggregation_payload)
        combined = deployment.combined_report("ads")
        assert combined["by_gender"]["f"] == 3
        assert combined["by_gender"]["m"] == 1
        assert combined["by_gender"]["x"] == 1


class TestRotation:
    def test_rotation_invalidates_old_epoch(self):
        deployment, _agg, larks = _deployment()
        handle = deployment.deploy("ads", _features(), _specs())
        old_codec = TransportCookieCodec(
            handle.app_id_for("us"), handle.transport_schema,
            handle.key_for("us"), random.Random(4),
        )
        state = deployment.rotate_region("ads", "us")
        assert state.epoch == 1
        # Old-epoch cookies no longer match (new app-ID).
        stale = larks["us"].process_quic_packet(
            old_codec.encode({"gender": "f"})
        )
        assert not stale.matched
        # New-epoch cookies work.
        new_codec = TransportCookieCodec(
            handle.app_id_for("us"), handle.transport_schema,
            handle.key_for("us"), random.Random(5),
        )
        fresh = larks["us"].process_quic_packet(
            new_codec.encode({"gender": "f"})
        )
        assert fresh.matched

    def test_rotation_scoped_to_one_region(self):
        deployment, _agg, larks = _deployment()
        handle = deployment.deploy("ads", _features(), _specs())
        eu_key_before = handle.key_for("eu")
        deployment.rotate_region("ads", "us")
        assert handle.key_for("eu") == eu_key_before
        eu_codec = TransportCookieCodec(
            handle.app_id_for("eu"), handle.transport_schema,
            handle.key_for("eu"), random.Random(6),
        )
        assert larks["eu"].process_quic_packet(
            eu_codec.encode({"gender": "m"})
        ).matched
