"""User engagement tracker: exact/sketch parity, merge, drain/absorb."""

import random

import pytest

from repro.core.user_stats import UserEngagementTracker, UserQuantileConfig
from repro.switch.registers import RegisterFile


def _feed(tracker, rng, n_users, events):
    for _ in range(events):
        tracker.observe(b"user-%06d" % rng.randrange(n_users))


class TestConfig:
    def test_mode_validated(self):
        with pytest.raises(ValueError):
            UserQuantileConfig(mode="approximate")

    def test_quantiles_validated(self):
        with pytest.raises(ValueError):
            UserQuantileConfig(quantiles=(0.5, 1.5))

    def test_capacity_override(self):
        assert UserQuantileConfig(capacity=64).sketch_capacity() == 64
        assert UserQuantileConfig(
            mode="sketch", epsilon=0.05, delta=0.01
        ).sketch_capacity() == 1060


class TestExactMode:
    def test_counts_and_quantiles(self):
        tracker = UserEngagementTracker(UserQuantileConfig(mode="exact"))
        for key, n in ((b"a", 1), (b"b", 2), (b"c", 3), (b"d", 4)):
            tracker.observe(key, n)
        report = tracker.report()
        assert report["mode"] == "exact"
        assert report["users"] == 4
        assert report["events"] == 10
        assert report["quantiles"] == {"p50": 2, "p90": 4, "p99": 4}
        assert "error_bound" not in report

    def test_observe_many_matches_observe(self):
        a = UserEngagementTracker(UserQuantileConfig(mode="exact"))
        b = UserEngagementTracker(UserQuantileConfig(mode="exact"))
        keys = [b"u%d" % (i % 7) for i in range(50)]
        counts = [(i % 3) for i in range(50)]
        for key, c in zip(keys, counts):
            a.observe(key, c)
        b.observe_many(keys, counts)
        assert a.snapshot() == b.snapshot()

    def test_snapshot_roundtrip_and_absorb(self):
        rng = random.Random(3)
        a = UserEngagementTracker(UserQuantileConfig(mode="exact"))
        b = UserEngagementTracker(UserQuantileConfig(mode="exact"))
        whole = UserEngagementTracker(UserQuantileConfig(mode="exact"))
        for _ in range(300):
            key = b"u%d" % rng.randrange(40)
            (a if rng.random() < 0.5 else b).observe(key)
            whole.observe(key)
        restored = UserEngagementTracker(UserQuantileConfig(mode="exact"))
        restored.load_snapshot(a.snapshot())
        assert restored.snapshot() == a.snapshot()
        a.absorb(b.drain())
        assert a.snapshot() == whole.snapshot()
        assert b.events == 0 and b.distinct_users() == 0

    def test_negative_count_rejected(self):
        tracker = UserEngagementTracker(UserQuantileConfig(mode="exact"))
        with pytest.raises(ValueError):
            tracker.observe(b"u", -1)
        with pytest.raises(ValueError):
            tracker.observe_many([b"u"], [-1])


class TestSketchMode:
    def _config(self, **kw):
        kw.setdefault("mode", "sketch")
        kw.setdefault("capacity", 256)
        return UserQuantileConfig(**kw)

    def test_memory_bounded(self):
        tracker = UserEngagementTracker(self._config(capacity=64))
        rng = random.Random(1)
        _feed(tracker, rng, n_users=50000, events=20000)
        report = tracker.report()
        assert report["sampled_users"] == 64
        assert report["mode"] == "sketch"
        assert report["error_bound"] > 0

    def test_register_accounting(self):
        registers = RegisterFile()
        tracker = UserEngagementTracker(
            self._config(capacity=128), name="app.users",
            registers=registers,
        )
        assert "app.users.values" in registers.names()
        assert tracker.bits == registers.used_bits > 0

    def test_quantiles_close_to_exact(self):
        config_s = self._config(capacity=1060)
        exact = UserEngagementTracker(UserQuantileConfig(mode="exact"))
        sketch = UserEngagementTracker(config_s)
        rng = random.Random(9)
        for _ in range(30000):
            key = b"user-%06d" % min(
                int(rng.paretovariate(1.3)) - 1, 3999
            )
            exact.observe(key)
            sketch.observe(key)
        exact_q = exact.report()["quantiles"]
        totals = sorted(
            c for _k, c in exact.snapshot()["counts"]
        )
        n = len(totals)
        for label in ("p50", "p90"):
            answer = sketch.report()["quantiles"][label]
            q = {"p50": 0.5, "p90": 0.9}[label]
            lo = sum(1 for v in totals if v < answer) / n
            hi = sum(1 for v in totals if v <= answer) / n
            assert lo - 0.08 <= q <= hi + 0.08, (label, answer, exact_q)

    def test_drain_absorb_equals_single_tracker(self):
        rng = random.Random(5)
        lark = UserEngagementTracker(self._config(capacity=96))
        agg = UserEngagementTracker(self._config(capacity=96))
        whole = UserEngagementTracker(self._config(capacity=96))
        for period in range(4):
            for _ in range(1500):
                key = b"u%d" % rng.randrange(800)
                lark.observe(key)
                whole.observe(key)
            agg.absorb(lark.drain())
        assert agg.snapshot()["entries"] == whole.snapshot()["entries"]
        assert agg.events == whole.events
        assert agg.report()["quantiles"] == whole.report()["quantiles"]

    def test_merge_equals_absorb(self):
        rng = random.Random(6)
        a1 = UserEngagementTracker(self._config(capacity=48))
        a2 = UserEngagementTracker(self._config(capacity=48))
        b = UserEngagementTracker(self._config(capacity=48))
        for _ in range(1000):
            key = b"u%d" % rng.randrange(300)
            a1.observe(key)
            a2.observe(key)
        _feed(b, rng, 300, 1000)
        a1.merge(b)
        a2.absorb(b.snapshot())
        assert a1.snapshot() == a2.snapshot()

    def test_mode_mismatch_rejected(self):
        exact = UserEngagementTracker(UserQuantileConfig(mode="exact"))
        sketch = UserEngagementTracker(self._config())
        with pytest.raises(ValueError):
            exact.absorb(sketch.snapshot())
        with pytest.raises(ValueError):
            sketch.load_snapshot(exact.snapshot())


class TestConventionParity:
    def test_same_nearest_rank_convention_below_capacity(self):
        """With fewer users than sketch capacity the two modes must
        report *identical* quantiles — this is what the differential
        harness leans on."""
        exact = UserEngagementTracker(
            UserQuantileConfig(mode="exact", quantiles=(0.1, 0.5, 0.9, 1.0))
        )
        sketch = UserEngagementTracker(
            UserQuantileConfig(
                mode="sketch", capacity=512,
                quantiles=(0.1, 0.5, 0.9, 1.0),
            )
        )
        rng = random.Random(11)
        for _ in range(5000):
            key = b"u%03d" % rng.randrange(400)
            exact.observe(key)
            sketch.observe(key)
        er = exact.report()
        sr = sketch.report()
        assert er["quantiles"] == sr["quantiles"]
        assert er["users"] == sr["users"]
