"""Key management: per-region provisioning, rotation, derivation."""

import pytest

from repro.crypto.keys import AES128_KEY_LEN, KeyRing, derive_subkey


class TestKeyRing:
    def test_create_region_is_idempotent(self):
        ring = KeyRing(seed=1)
        first = ring.create_region("us-east")
        second = ring.create_region("us-east")
        assert first is second

    def test_keys_differ_per_region(self):
        ring = KeyRing(seed=1)
        a = ring.create_region("us-east").key
        b = ring.create_region("eu-west").key
        assert a != b
        assert len(a) == len(b) == AES128_KEY_LEN

    def test_get_unknown_region(self):
        with pytest.raises(KeyError, match="no key provisioned"):
            KeyRing(seed=1).get("mars")

    def test_rotation_changes_key_and_keeps_previous(self):
        ring = KeyRing(seed=2)
        entry = ring.create_region("apac")
        old = entry.key
        ring.rotate("apac")
        assert entry.key != old
        assert entry.previous == old
        assert entry.version == 1
        assert entry.candidates() == [entry.key, old]

    def test_candidates_before_rotation(self):
        ring = KeyRing(seed=3)
        entry = ring.create_region("sa")
        assert entry.candidates() == [entry.key]

    def test_double_rotation_drops_oldest(self):
        ring = KeyRing(seed=4)
        entry = ring.create_region("af")
        first = entry.key
        ring.rotate("af")
        second = entry.key
        ring.rotate("af")
        assert entry.previous == second
        assert first not in entry.candidates()

    def test_regions_listing_sorted(self):
        ring = KeyRing(seed=5)
        for region in ("b", "a", "c"):
            ring.create_region(region)
        assert ring.regions() == ["a", "b", "c"]

    def test_export(self):
        ring = KeyRing(seed=6)
        entry = ring.create_region("na")
        key, version = ring.export("na")
        assert key == entry.key and version == 0

    def test_deterministic_with_seed(self):
        a = KeyRing(seed=42).create_region("x").key
        b = KeyRing(seed=42).create_region("x").key
        assert a == b


class TestDeriveSubkey:
    def test_length(self):
        assert len(derive_subkey(bytes(16), "cookie")) == AES128_KEY_LEN

    def test_label_separation(self):
        master = bytes(range(16))
        assert derive_subkey(master, "cookie") != derive_subkey(
            master, "aggregation"
        )

    def test_master_separation(self):
        assert derive_subkey(bytes(16), "x") != derive_subkey(
            bytes(range(16)), "x"
        )

    def test_deterministic(self):
        assert derive_subkey(b"k" * 16, "a") == derive_subkey(b"k" * 16, "a")
