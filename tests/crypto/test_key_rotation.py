"""Key-rotation edge cases, from the KeyRing up to the batch data plane.

The rotation story has sharp corners: only one previous key is kept,
versions must move monotonically, subkey derivation must separate both
master and label, and — since the batch fast path memoizes cookie
decodes — a rekey or revoke must invalidate that memo everywhere, or a
switch would keep decoding under a dead key.
"""

import random

import pytest

from repro.core.aggregation import ForwardingMode
from repro.core.transport_cookie import TransportCookieCodec
from repro.crypto.keys import AES128_KEY_LEN, KeyRing, RegionKey, derive_subkey

from tests.differential.workloads import APP_ID, DifferentialWorkload


class TestRotationEdges:
    def test_versions_monotonic_over_many_rotations(self):
        ring = KeyRing(seed=11)
        entry = ring.create_region("r")
        seen = {entry.key}
        for expected_version in range(1, 20):
            ring.rotate("r")
            assert entry.version == expected_version
            assert len(entry.candidates()) == 2
            assert entry.candidates()[0] == entry.key
            seen.add(entry.key)
        # Seeded RNG must not cycle keys within a short horizon.
        assert len(seen) == 20

    def test_only_immediate_previous_survives(self):
        entry = RegionKey("r", b"A" * 16)
        entry.rotate(b"B" * 16)
        entry.rotate(b"C" * 16)
        assert entry.candidates() == [b"C" * 16, b"B" * 16]
        assert b"A" * 16 not in entry.candidates()

    def test_rotate_to_identical_key_still_bumps_version(self):
        # Degenerate but legal: the controller may re-push the same
        # material; version (not key bytes) is the source of truth.
        entry = RegionKey("r", b"K" * 16)
        entry.rotate(b"K" * 16)
        assert entry.version == 1
        assert entry.candidates() == [b"K" * 16, b"K" * 16]

    def test_export_tracks_rotation(self):
        ring = KeyRing(seed=12)
        ring.create_region("r")
        before = ring.export("r")
        ring.rotate("r")
        after = ring.export("r")
        assert after[1] == before[1] + 1
        assert after[0] != before[0]

    def test_rotate_unknown_region_raises(self):
        with pytest.raises(KeyError):
            KeyRing(seed=13).rotate("nowhere")


class TestDeriveSubkeyEdges:
    def test_empty_master_and_label_still_distinct(self):
        assert derive_subkey(b"", "x") != derive_subkey(b"", "y")
        assert derive_subkey(b"", "") != derive_subkey(b"\x00" * 16, "")
        assert len(derive_subkey(b"", "")) == AES128_KEY_LEN

    def test_label_not_confusable_with_master_suffix(self):
        # (master + "|a", label "b") vs (master, label "a|b") must differ:
        # the separator byte cannot be forged from the label side alone.
        master = b"M" * 16
        assert derive_subkey(master + b"|a", "b") != derive_subkey(
            master, "a|b"
        )

    def test_unicode_label(self):
        assert len(derive_subkey(b"k" * 16, "région-ü")) == 16


class TestRotationOnTheDataPlane:
    """Rekeying a LarkSwitch must flush the batch decode memo: scalar
    and batch paths must agree before, across, and after the rekey."""

    def _setup(self):
        wl = DifferentialWorkload(seed=77, num_users=40)
        ring = KeyRing(seed=78)
        return wl, ring

    def test_old_key_cookies_rejected_after_rekey_scalar_and_batch(self):
        wl, _ = self._setup()
        old_cids = wl.cids("uniform", 60)
        scalar = wl.new_lark(mode=ForwardingMode.PER_PACKET)
        batch = wl.new_lark(mode=ForwardingMode.PER_PACKET)

        # Warm both switches (and the batch decode memo) on the old key.
        warm_scalar = [scalar.process_quic_packet(c) for c in old_cids]
        warm_batch = batch.process_quic_batch(old_cids)
        assert warm_batch == warm_scalar
        assert any(r.decoded_values for r in warm_batch)

        new_key = bytes(random.Random(79).getrandbits(8) for _ in range(16))
        scalar.rekey_application(APP_ID, new_key)
        batch.rekey_application(APP_ID, new_key)

        after_scalar = [scalar.process_quic_packet(c) for c in old_cids]
        after_batch = batch.process_quic_batch(old_cids)
        # Bit-identical even across the rekey — a stale memo would make
        # the batch switch keep decoding old-key cookies here.  (The
        # transport cookie has no MAC, so a wrong-key decrypt may yield
        # plausible garbage — but never the original values.)
        assert after_batch == after_scalar
        for warm, after in zip(warm_batch, after_batch):
            if warm.decoded_values:
                assert after.decoded_values != warm.decoded_values

        # New-key cookies decode on both paths.
        codec = TransportCookieCodec(
            APP_ID, wl.schema, new_key, random.Random(80)
        )
        user = wl.workload.users[0]
        fresh = [
            codec.encode(user.semantic_values("camp-0", "click"))
            for _ in range(10)
        ]
        fresh_scalar = [scalar.process_quic_packet(c) for c in fresh]
        fresh_batch = batch.process_quic_batch(fresh)
        assert fresh_batch == fresh_scalar
        assert all(r.decoded_values for r in fresh_batch)

    def test_revoke_after_batches_stops_matching(self):
        wl, _ = self._setup()
        cids = wl.cids("uniform", 30)
        lark = wl.new_lark()
        lark.process_quic_batch(cids)
        assert lark.revoke_application(APP_ID)
        results = lark.process_quic_batch(cids)
        assert not any(r.matched for r in results)
        # No stats registers survive the revoke.
        names = lark.pipeline.registers.names()
        assert not any("app%02x" % APP_ID in n for n in names)

    def test_keyring_rotation_round_trip_through_codec(self):
        """decode-with-candidates: in-flight cookies under the previous
        key stay readable for exactly one rotation."""
        wl, ring = self._setup()
        entry = ring.create_region("edge")
        user = wl.workload.users[0]
        values = user.semantic_values("camp-1", "view")

        def encode_under(key, seed):
            return TransportCookieCodec(
                APP_ID, wl.schema, key, random.Random(seed)
            ).encode(values)

        cid_v0 = encode_under(entry.key, 81)
        ring.rotate("edge")
        cid_v1 = encode_under(entry.key, 82)

        def recoverable(cid):
            # The cookie carries no MAC, so trial decryption under a
            # wrong key can emit plausible garbage; a candidate key
            # "works" only if it reproduces the original values.
            for key in entry.candidates():
                decoded = TransportCookieCodec(
                    APP_ID, wl.schema, key, random.Random(0)
                ).try_decode(cid)
                if decoded is not None and decoded.values == values:
                    return True
            return False

        assert recoverable(cid_v0)
        assert recoverable(cid_v1)
        ring.rotate("edge")
        # Two rotations later the v0 key is gone.
        assert recoverable(cid_v1)
        assert not recoverable(cid_v0)
