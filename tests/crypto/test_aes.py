"""AES correctness: FIPS-197 vectors, mode roundtrips, padding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import (
    AES,
    BLOCK_SIZE,
    decrypt_cbc,
    decrypt_ctr,
    decrypt_ecb,
    encrypt_cbc,
    encrypt_ctr,
    encrypt_ecb,
    pkcs7_pad,
    pkcs7_unpad,
    xor_bytes,
)

# FIPS-197 appendix C vectors: (key, plaintext, ciphertext).
FIPS_VECTORS = [
    (
        "000102030405060708090a0b0c0d0e0f",
        "00112233445566778899aabbccddeeff",
        "69c4e0d86a7b0430d8cdb78070b4c55a",
    ),
    (
        "000102030405060708090a0b0c0d0e0f1011121314151617",
        "00112233445566778899aabbccddeeff",
        "dda97ca4864cdfe06eaf70a0ec0d7191",
    ),
    (
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
        "00112233445566778899aabbccddeeff",
        "8ea2b7ca516745bfeafc49904b496089",
    ),
]


class TestBlockCipher:
    @pytest.mark.parametrize("key,plain,cipher", FIPS_VECTORS)
    def test_fips_encrypt(self, key, plain, cipher):
        aes = AES(bytes.fromhex(key))
        assert aes.encrypt_block(bytes.fromhex(plain)).hex() == cipher

    @pytest.mark.parametrize("key,plain,cipher", FIPS_VECTORS)
    def test_fips_decrypt(self, key, plain, cipher):
        aes = AES(bytes.fromhex(key))
        assert aes.decrypt_block(bytes.fromhex(cipher)).hex() == plain

    def test_sp800_38a_ecb_vector(self):
        # NIST SP 800-38A F.1.1 (AES-128-ECB, first block).
        aes = AES(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        out = aes.encrypt_block(
            bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        )
        assert out.hex() == "3ad77bb40d7a3660a89ecaf32466ef97"

    def test_rejects_bad_key_length(self):
        with pytest.raises(ValueError, match="16, 24 or 32"):
            AES(b"short")

    def test_rejects_bad_block_length(self):
        aes = AES(bytes(16))
        with pytest.raises(ValueError, match="16 bytes"):
            aes.encrypt_block(b"tiny")
        with pytest.raises(ValueError, match="16 bytes"):
            aes.decrypt_block(b"x" * 17)

    def test_rounds_by_key_size(self):
        assert AES(bytes(16)).rounds == 10
        assert AES(bytes(24)).rounds == 12
        assert AES(bytes(32)).rounds == 14

    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    def test_block_roundtrip(self, key, block):
        aes = AES(key)
        assert aes.decrypt_block(aes.encrypt_block(block)) == block

    def test_diffusion(self):
        """One flipped plaintext bit flips many ciphertext bits."""
        aes = AES(bytes(range(16)))
        a = aes.encrypt_block(bytes(16))
        b = aes.encrypt_block(bytes([1]) + bytes(15))
        distance = sum(bin(x ^ y).count("1") for x, y in zip(a, b))
        assert distance > 30


class TestPadding:
    @given(st.binary(max_size=100))
    def test_roundtrip(self, data):
        assert pkcs7_unpad(pkcs7_pad(data)) == data

    def test_always_adds_padding(self):
        assert len(pkcs7_pad(bytes(16))) == 32

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            pkcs7_unpad(b"")

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            pkcs7_unpad(b"x" * 15)

    def test_rejects_corrupt_padding(self):
        padded = pkcs7_pad(b"hello")
        corrupted = padded[:-2] + bytes([padded[-2] ^ 1]) + padded[-1:]
        with pytest.raises(ValueError, match="corrupt"):
            pkcs7_unpad(corrupted)

    def test_rejects_zero_pad_byte(self):
        with pytest.raises(ValueError):
            pkcs7_unpad(b"x" * 15 + b"\x00")

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            pkcs7_pad(b"x", block_size=0)


class TestModes:
    KEY = bytes(range(16))
    IV = bytes(range(16, 32))

    @given(st.binary(max_size=200))
    @settings(max_examples=30)
    def test_ecb_roundtrip(self, data):
        assert decrypt_ecb(self.KEY, encrypt_ecb(self.KEY, data)) == data

    @given(st.binary(max_size=200))
    @settings(max_examples=30)
    def test_cbc_roundtrip(self, data):
        ct = encrypt_cbc(self.KEY, self.IV, data)
        assert decrypt_cbc(self.KEY, self.IV, ct) == data

    @given(st.binary(max_size=200))
    @settings(max_examples=30)
    def test_ctr_roundtrip(self, data):
        ct = encrypt_ctr(self.KEY, self.IV, data)
        assert decrypt_ctr(self.KEY, self.IV, ct) == data

    def test_ctr_is_length_preserving(self):
        assert len(encrypt_ctr(self.KEY, self.IV, b"abc")) == 3

    def test_cbc_differs_from_ecb(self):
        data = bytes(32)
        assert encrypt_cbc(self.KEY, self.IV, data) != encrypt_ecb(
            self.KEY, data
        )

    def test_cbc_iv_matters(self):
        other_iv = bytes(16)
        a = encrypt_cbc(self.KEY, self.IV, b"data")
        b = encrypt_cbc(self.KEY, other_iv, b"data")
        assert a != b

    def test_cbc_rejects_bad_iv(self):
        with pytest.raises(ValueError, match="IV"):
            encrypt_cbc(self.KEY, b"short", b"data")
        with pytest.raises(ValueError, match="IV"):
            decrypt_cbc(self.KEY, b"short", bytes(16))

    def test_ecb_rejects_partial_blocks(self):
        with pytest.raises(ValueError):
            decrypt_ecb(self.KEY, b"x" * 20)

    def test_cbc_rejects_empty_ciphertext(self):
        with pytest.raises(ValueError):
            decrypt_cbc(self.KEY, self.IV, b"")

    def test_ctr_rejects_bad_nonce(self):
        with pytest.raises(ValueError, match="nonce"):
            encrypt_ctr(self.KEY, b"short", b"data")

    def test_wrong_key_fails_or_garbles(self):
        ct = encrypt_cbc(self.KEY, self.IV, b"secret semantic data")
        wrong = bytes(16)
        try:
            out = decrypt_cbc(wrong, self.IV, ct)
        except ValueError:
            return  # padding check caught it
        assert out != b"secret semantic data"


class TestXorBytes:
    def test_basic(self):
        assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            xor_bytes(b"a", b"ab")

    @given(st.binary(min_size=1, max_size=64))
    def test_self_inverse(self, data):
        mask = bytes(len(data))
        assert xor_bytes(data, mask) == data
