"""Public API surface: every documented name imports and the package
quickstart from the README actually runs."""

import importlib

import pytest

import repro

SUBPACKAGES = (
    "repro.crypto",
    "repro.quic",
    "repro.switch",
    "repro.net",
    "repro.obs",
    "repro.chaos",
    "repro.streaming",
    "repro.measurement",
    "repro.model",
    "repro.core",
    "repro.web",
    "repro.workloads",
    "repro.testbed",
    "repro.cli",
)


class TestImports:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_imports(self, module_name):
        module = importlib.import_module(module_name)
        assert module is not None

    @pytest.mark.parametrize("module_name", SUBPACKAGES[:-1])
    def test_all_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), "%s.%s" % (module_name, name)

    def test_top_level_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name)
        assert repro.__version__ == "1.0.0"


class TestReadmeQuickstart:
    def test_quickstart_snippet(self):
        from repro.testbed import Scheme, TestbedConfig, TestbedExperiment

        baseline = TestbedExperiment(
            TestbedConfig(scheme=Scheme.BASELINE, duration_ms=2000)
        ).run()
        snatch = TestbedExperiment(
            TestbedConfig(
                scheme=Scheme.TRANS_1RTT, insa=True, duration_ms=2000
            )
        ).run()
        assert 450 < baseline.median_latency_ms < 560
        assert 55 < snatch.median_latency_ms < 67
        assert snatch.counts_match_reference()
