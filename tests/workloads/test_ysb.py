"""Yahoo Streaming Benchmark on the micro-batch engine."""

import pytest

from repro.workloads.ysb import YsbPipeline, YsbWorkload


class TestWorkload:
    def test_campaign_table_shape(self):
        workload = YsbWorkload(num_campaigns=5, ads_per_campaign=4, seed=1)
        assert len(workload.campaigns) == 5
        assert len(workload.ad_to_campaign) == 20
        assert all(
            campaign in workload.campaigns
            for campaign in workload.ad_to_campaign.values()
        )

    def test_event_stream(self):
        workload = YsbWorkload(seed=2)
        events = workload.generate_events(100, 5000)
        assert 350 <= len(events) <= 650
        assert all(e.ad_id in workload.ad_to_campaign for e in events)
        times = [e.event_time_ms for e in events]
        assert times == sorted(times)

    def test_reference_only_counts_views(self):
        workload = YsbWorkload(seed=3)
        events = workload.generate_events(300, 2000)
        reference = workload.reference_window_counts(events, 1000)
        views = sum(1 for e in events if e.event_type == "view")
        assert sum(reference.values()) == views

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            YsbWorkload(num_campaigns=0)
        with pytest.raises(ValueError):
            YsbWorkload().generate_events(0, 100)


class TestPipeline:
    def test_matches_reference_exactly(self):
        workload = YsbWorkload(num_campaigns=5, ads_per_campaign=4, seed=1)
        events = workload.generate_events(200, 3000)
        pipeline = YsbPipeline(workload, window_ms=1000,
                               batch_interval_ms=500)
        pipeline.feed(events)
        pipeline.run(4000)
        assert pipeline.results() == workload.reference_window_counts(
            events, 1000
        )

    def test_window_equals_interval(self):
        workload = YsbWorkload(seed=4)
        events = workload.generate_events(100, 2000)
        pipeline = YsbPipeline(workload, window_ms=500)
        pipeline.feed(events)
        pipeline.run(2500)
        assert pipeline.results() == workload.reference_window_counts(
            events, 500
        )

    def test_non_view_events_excluded(self):
        workload = YsbWorkload(seed=5)
        events = [
            e for e in workload.generate_events(200, 1000)
            if e.event_type != "view"
        ]
        pipeline = YsbPipeline(workload, window_ms=1000)
        pipeline.feed(events)
        pipeline.run(2000)
        assert pipeline.results() == {}

    def test_window_must_align_with_interval(self):
        with pytest.raises(ValueError, match="multiple"):
            YsbPipeline(YsbWorkload(seed=6), window_ms=1000,
                        batch_interval_ms=300)
