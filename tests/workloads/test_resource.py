"""Resource-demand workload and the autoscaler."""

import pytest

from repro.workloads.resource import (
    Autoscaler,
    MAX_DEMAND_UNITS,
    ResourceDemandWorkload,
    SERVICE_TIERS,
)


class TestWorkload:
    def test_tenants_valid(self):
        workload = ResourceDemandWorkload(num_tenants=100, seed=1)
        for tenant in workload.tenants:
            assert tenant.tier in SERVICE_TIERS
            assert 1 <= tenant.demand_units <= MAX_DEMAND_UNITS

    def test_tier_distribution_skewed_to_free(self):
        workload = ResourceDemandWorkload(num_tenants=1000, seed=2)
        free = sum(1 for t in workload.tenants if t.tier == "free")
        premium = sum(1 for t in workload.tenants if t.tier == "premium")
        assert free > 3 * premium

    def test_schema_fits_transport(self):
        assert ResourceDemandWorkload(num_tenants=5).schema().fits_transport()

    def test_sessions_and_reference(self):
        workload = ResourceDemandWorkload(seed=3)
        sessions = workload.sessions(100, 2000)
        assert sessions
        reference = workload.reference_demand_sum(sessions)
        assert sum(reference.values()) == sum(
            t.demand_units for _ts, t in sessions
        )

    def test_invalid(self):
        with pytest.raises(ValueError):
            ResourceDemandWorkload(num_tenants=0)
        with pytest.raises(ValueError):
            ResourceDemandWorkload().sessions(0, 10)


class TestAutoscaler:
    def test_target_rounds_up(self):
        scaler = Autoscaler(units_per_replica=100, min_replicas=1,
                            max_replicas=10)
        assert scaler.target_for(0) == 1
        assert scaler.target_for(101) == 2
        assert scaler.target_for(10_000) == 10  # clamped

    def test_scales_up_on_demand(self):
        scaler = Autoscaler(units_per_replica=100, max_replicas=20)
        replicas = scaler.observe(0.0, 900)
        assert replicas == 9
        assert scaler.scaling_events == [(0.0, 9)]

    def test_hysteresis_suppresses_jitter(self):
        scaler = Autoscaler(units_per_replica=100, hysteresis=0.3,
                            max_replicas=30)
        scaler.observe(0.0, 1000)  # -> 10 replicas
        scaler.observe(1.0, 1050)  # target 11, within 30% band + <2 delta
        assert scaler.current_replicas == 10
        assert len(scaler.scaling_events) == 1

    def test_large_change_overrides_hysteresis(self):
        scaler = Autoscaler(units_per_replica=100, hysteresis=0.3,
                            max_replicas=50)
        scaler.observe(0.0, 1000)
        scaler.observe(1.0, 4000)
        assert scaler.current_replicas == 40

    def test_scales_down(self):
        scaler = Autoscaler(units_per_replica=100, max_replicas=30)
        scaler.observe(0.0, 2000)
        scaler.observe(1.0, 200)
        assert scaler.current_replicas == 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Autoscaler(units_per_replica=0)
        with pytest.raises(ValueError):
            Autoscaler(hysteresis=1.0)
        with pytest.raises(ValueError):
            Autoscaler(min_replicas=5, max_replicas=2)
