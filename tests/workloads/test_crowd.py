"""Crowd-analytics workload."""

import pytest

from repro.workloads.crowd import (
    CrowdWorkload,
    INTERESTS,
    REGIONS,
)


class TestPopulation:
    def test_members_valid(self):
        workload = CrowdWorkload(num_members=100, seed=1)
        for member in workload.members:
            assert member.region in REGIONS
            assert member.interest in INTERESTS
            assert 0 <= member.dwell_minutes <= 240

    def test_semantic_values_validate(self):
        workload = CrowdWorkload(num_members=10, seed=2)
        schema = workload.schema()
        for member in workload.members:
            schema.validate_values(member.semantic_values())

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            CrowdWorkload(num_members=0)


class TestSchema:
    def test_constant_cookie_fits_transport(self):
        """Crowd cookies are constant per user and must fit the
        transport layer (section 3.1)."""
        assert CrowdWorkload(num_members=5).schema().fits_transport()

    def test_specs(self):
        names = {s.name for s in CrowdWorkload(num_members=5).specs()}
        assert names == {"interest_by_region", "dwell_avg", "dwell_max"}


class TestArrivals:
    def test_rate(self):
        workload = CrowdWorkload(seed=3)
        arrivals = workload.arrivals(200, 5000)
        assert 750 <= len(arrivals) <= 1250

    def test_reference_counts_total(self):
        workload = CrowdWorkload(seed=4)
        arrivals = workload.arrivals(100, 2000)
        reference = workload.reference_interest_counts(arrivals)
        assert sum(reference.values()) == len(arrivals)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CrowdWorkload().arrivals(0, 100)
