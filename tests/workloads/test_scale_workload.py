"""Scale workload: procedural users, zipf-head + uniform-tail traffic."""

import pytest

from repro.workloads.adcampaign import AGE_BRACKETS, GENDERS, GEOS
from repro.workloads.scale import ScaleWorkload


class TestConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ScaleWorkload(num_users=0)
        with pytest.raises(ValueError):
            ScaleWorkload(num_campaigns=0)
        with pytest.raises(ValueError):
            ScaleWorkload(click_fraction=1.5)
        with pytest.raises(ValueError):
            ScaleWorkload(zipf_alpha=0.0)
        with pytest.raises(ValueError):
            ScaleWorkload(tail_fraction=-0.1)

    def test_no_per_user_table(self):
        # The whole point: constructing a million-user workload must
        # not materialize a million of anything.
        workload = ScaleWorkload(num_users=1_000_000)
        per_user_attrs = [
            v for v in vars(workload).values()
            if isinstance(v, (list, dict, set)) and len(v) >= 1000
        ]
        assert per_user_attrs == []


class TestDemographics:
    def test_valid_and_stable(self):
        workload = ScaleWorkload(num_users=1_000_000, seed=1)
        for user in (0, 1, 999_999, 123_456):
            gender, age, geo = workload.demographics(user)
            assert gender in GENDERS
            assert age in AGE_BRACKETS
            assert geo in GEOS
            assert workload.demographics(user) == (gender, age, geo)

    def test_independent_of_workload_seed(self):
        # Demographics are keyed by demo_seed only, so two runs with
        # different traffic seeds agree on who each user is.
        a = ScaleWorkload(num_users=1000, seed=1)
        b = ScaleWorkload(num_users=1000, seed=99)
        assert all(
            a.demographics(u) == b.demographics(u) for u in range(200)
        )

    def test_demo_seed_changes_population(self):
        a = ScaleWorkload(num_users=1000, demo_seed=1)
        b = ScaleWorkload(num_users=1000, demo_seed=2)
        assert any(
            a.demographics(u) != b.demographics(u) for u in range(200)
        )


class TestSchema:
    def test_fits_transport_at_one_million_users(self):
        assert ScaleWorkload(num_users=1_000_000).schema().fits_transport()

    def test_user_feature_covers_population(self):
        schema = ScaleWorkload(num_users=12_345).schema()
        feature = schema.feature("user")
        assert feature.min_value == 0
        assert feature.max_value == 12_344

    def test_specs_match_ad_workload_program(self):
        names = {spec.name for spec in ScaleWorkload().specs()}
        assert names == {
            "gender_by_campaign", "age_by_campaign", "geo_by_campaign"
        }

    def test_semantic_values_validate(self):
        workload = ScaleWorkload(num_users=1_000_000, seed=3)
        schema = workload.schema()
        assert schema.validate_values(workload.semantic_values(999_999, 2, 1))


class TestEventStream:
    def test_deterministic(self):
        a = ScaleWorkload(num_users=10_000, seed=5)
        b = ScaleWorkload(num_users=10_000, seed=5)
        batch_a = a.stream(1000, 2000).generate_batch(500)
        batch_b = b.stream(1000, 2000).generate_batch(500)
        assert batch_a.columns == batch_b.columns
        assert batch_a.time_ms == batch_b.time_ms

    def test_batched_matches_scalar_draws(self):
        scalar = ScaleWorkload(num_users=10_000, seed=6)
        batched = ScaleWorkload(num_users=10_000, seed=6)
        events = scalar.stream(500, 2000).drain()
        stream = batched.stream(500, 2000)
        rows = []
        while True:
            batch = stream.generate_batch(64)
            if not len(batch):
                break
            cols = batch.columns
            rows.extend(zip(cols["user"], cols["campaign"], cols["click"]))
        assert len(rows) == len(events)
        for event, (user, campaign, click) in zip(events, rows):
            assert event["values"]["user"] == user

    def test_tail_reaches_deep_users(self):
        # With a 50% uniform tail the distinct-user count must grow
        # with traffic instead of saturating at the zipf head.
        workload = ScaleWorkload(num_users=1_000_000, seed=7)
        batch = workload.stream(10_000, 1000).generate_batch(10_000)
        users = set(batch.columns["user"])
        assert len(users) > 0.4 * len(batch)
        assert max(users) > 500_000

    def test_pure_head_concentrates(self):
        workload = ScaleWorkload(
            num_users=1_000_000, seed=7, tail_fraction=0.0
        )
        batch = workload.stream(10_000, 1000).generate_batch(10_000)
        assert len(set(batch.columns["user"])) < 0.1 * len(batch)

    def test_user_ids_in_range(self):
        workload = ScaleWorkload(num_users=100, seed=8)
        batch = workload.stream(5000, 1000).generate_batch(2000)
        assert all(0 <= u < 100 for u in batch.columns["user"])


class TestReference:
    def test_reference_totals_consistent(self):
        workload = ScaleWorkload(num_users=10_000, seed=9)
        out = workload.new_reference()
        stream = workload.stream(2000, 2000)
        total = 0
        while True:
            batch = stream.generate_batch(256)
            if not len(batch):
                break
            total += len(batch)
            workload.accumulate_reference(batch, out)
        assert total > 0
        for stat in out.values():
            assert sum(stat.values()) == total

    def test_user_counts_ground_truth(self):
        workload = ScaleWorkload(num_users=1000, seed=10)
        batch = workload.stream(5000, 1000).generate_batch(3000)
        counts = {}
        workload.accumulate_user_counts(batch, counts)
        assert sum(counts.values()) == len(batch)
        assert set(counts) == set(batch.columns["user"])
