"""Determinism of the workload generators, scalar vs batched.

The end-to-end ingest fast path rests on one contract: for every
workload, ``generate_batch(n)`` consumes the RNG exactly like ``n``
scalar ``generate()`` calls, and the legacy list APIs are thin wrappers
over the same stream.  These tests pin that contract for all four
generators (ysb, adcampaign, crowd, resource):

* same seed -> identical event stream (and diverging seeds diverge);
* ``generate_batch(n)`` == ``n`` scalar ``generate()`` calls,
  including the final RNG state;
* any chunking of the stream produces the same columns;
* the legacy list APIs equal ``stream().drain()``.
"""

import pytest

from repro.workloads.adcampaign import AdCampaignWorkload
from repro.workloads.crowd import CrowdWorkload
from repro.workloads.resource import ResourceDemandWorkload
from repro.workloads.ysb import YsbWorkload

RATE = 2000.0
DURATION_MS = 400.0
WORKLOADS = ("ysb", "adcampaign", "crowd", "resource")


def _make(name, seed):
    if name == "ysb":
        return YsbWorkload(seed=seed)
    if name == "adcampaign":
        return AdCampaignWorkload(num_users=50, seed=seed)
    if name == "crowd":
        return CrowdWorkload(num_members=60, seed=seed)
    return ResourceDemandWorkload(num_tenants=40, seed=seed)


def _legacy_events(name, workload):
    if name == "ysb":
        return workload.generate_events(RATE, DURATION_MS)
    if name == "adcampaign":
        return workload.generate_events(RATE, DURATION_MS)
    if name == "crowd":
        return workload.arrivals(RATE, DURATION_MS)
    return workload.sessions(RATE, DURATION_MS)


def _batch_rows(columns):
    names = tuple(columns.columns)
    cols = [columns.columns[n] for n in names]
    return names, list(zip(*cols)) if cols else []


@pytest.mark.parametrize("name", WORKLOADS)
def test_same_seed_identical_stream(name):
    a = _make(name, 7).stream(RATE, DURATION_MS).drain()
    b = _make(name, 7).stream(RATE, DURATION_MS).drain()
    assert a == b
    assert len(a) > 0


@pytest.mark.parametrize("name", WORKLOADS)
def test_different_seeds_diverge(name):
    a = _make(name, 7).stream(RATE, DURATION_MS).drain()
    b = _make(name, 8).stream(RATE, DURATION_MS).drain()
    assert a != b


@pytest.mark.parametrize("name", WORKLOADS)
def test_generate_batch_equals_n_scalar_generates(name):
    wl_scalar = _make(name, 21)
    wl_batch = _make(name, 21)
    stream_s = wl_scalar.stream(RATE, DURATION_MS)
    stream_b = wl_batch.stream(RATE, DURATION_MS)

    scalar_events = stream_s.drain()
    cols = stream_b.generate_batch(10 * len(scalar_events) + 10)
    assert len(cols) == len(scalar_events)

    # Rebuild scalar events from the columns through the stream's own
    # wrap hook: identical rows => identical events.
    rebuilt = [
        stream_b._wrap(
            cols.time_ms[i],
            tuple(cols.columns[c][i] for c in stream_b.column_names),
        )
        for i in range(len(cols))
    ]
    assert rebuilt == scalar_events
    # The batched path consumed the RNG draw-for-draw identically.
    assert wl_batch._rng.getstate() == wl_scalar._rng.getstate()
    assert stream_b.exhausted and stream_s.exhausted
    assert len(stream_b.generate_batch(16)) == 0


@pytest.mark.parametrize("name", WORKLOADS)
@pytest.mark.parametrize("chunk", (1, 7, 64))
def test_chunked_batches_equal_whole(name, chunk):
    whole = _make(name, 33).stream(RATE, DURATION_MS).generate_batch(10_000)
    stream = _make(name, 33).stream(RATE, DURATION_MS)
    times, columns = [], {c: [] for c in stream.column_names}
    for batch in stream.batches(chunk):
        assert 0 < len(batch) <= chunk
        times.extend(batch.time_ms)
        for c in stream.column_names:
            columns[c].extend(batch.columns[c])
    assert times == whole.time_ms
    assert columns == whole.columns


@pytest.mark.parametrize("name", WORKLOADS)
def test_legacy_list_api_equals_stream_drain(name):
    legacy = _legacy_events(name, _make(name, 5))
    drained = _make(name, 5).stream(RATE, DURATION_MS).drain()
    assert legacy == drained
