"""Ad-campaign workload generator."""

import pytest

from repro.workloads.adcampaign import (
    AGE_BRACKETS,
    AdCampaignWorkload,
    EVENT_TYPES,
    GENDERS,
    GEOS,
)


class TestPopulation:
    def test_users_have_valid_demographics(self):
        workload = AdCampaignWorkload(num_users=100, seed=1)
        for user in workload.users:
            assert user.gender in GENDERS
            assert user.age in AGE_BRACKETS
            assert user.geo in GEOS

    def test_deterministic(self):
        a = AdCampaignWorkload(num_users=50, seed=2)
        b = AdCampaignWorkload(num_users=50, seed=2)
        assert a.users == b.users

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            AdCampaignWorkload(num_users=0)
        with pytest.raises(ValueError):
            AdCampaignWorkload(click_fraction=2.0)


class TestSchema:
    def test_schema_fits_transport(self):
        workload = AdCampaignWorkload(num_campaigns=8)
        assert workload.schema().fits_transport()

    def test_specs_cover_three_demographics(self):
        names = {spec.name for spec in AdCampaignWorkload().specs()}
        assert names == {
            "gender_by_campaign", "age_by_campaign", "geo_by_campaign"
        }

    def test_semantic_values_match_schema(self):
        workload = AdCampaignWorkload(num_users=10, seed=3)
        schema = workload.schema()
        values = workload.users[0].semantic_values("camp-0", "click")
        assert schema.validate_values(values)  # no FeatureValueError

    def test_event_filter(self):
        assert AdCampaignWorkload.event_filter({"event": "view"})
        assert AdCampaignWorkload.event_filter({"event": "click"})
        assert not AdCampaignWorkload.event_filter({"event": "purchase"})
        assert not AdCampaignWorkload.event_filter({})


class TestEventStream:
    def test_rate_approximately_honoured(self):
        workload = AdCampaignWorkload(seed=4)
        events = workload.generate_events(100, 10_000)
        assert 750 <= len(events) <= 1250

    def test_events_ordered_in_time(self):
        events = AdCampaignWorkload(seed=5).generate_events(50, 2000)
        times = [e.time_ms for e in events]
        assert times == sorted(times)
        assert all(0 <= t < 2000 for t in times)

    def test_click_fraction(self):
        workload = AdCampaignWorkload(seed=6, click_fraction=0.25)
        events = workload.generate_events(500, 10_000)
        clicks = sum(1 for e in events if e.event_type == "click")
        assert clicks / len(events) == pytest.approx(0.25, abs=0.05)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AdCampaignWorkload().generate_events(0, 1000)
        with pytest.raises(ValueError):
            AdCampaignWorkload().generate_events(10, 0)


class TestReferenceCounts:
    def test_totals_consistent(self):
        workload = AdCampaignWorkload(seed=7)
        events = workload.generate_events(100, 3000)
        reference = workload.reference_counts(events)
        for stat in reference.values():
            assert sum(stat.values()) == len(events)

    def test_keys_are_campaign_attribute_pairs(self):
        workload = AdCampaignWorkload(seed=8)
        events = workload.generate_events(50, 1000)
        reference = workload.reference_counts(events)
        for (campaign, gender) in reference["gender_by_campaign"]:
            assert campaign in workload.campaigns
            assert gender in GENDERS
