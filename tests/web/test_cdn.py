"""CDN edge + origin integration, including the Snatch page rule."""

import random

import pytest

from repro.core.app_cookie import ApplicationCookieCodec
from repro.core.edge_service import SnatchEdgeServer
from repro.core.schema import CookieSchema, Feature
from repro.core.stats import StatKind, StatSpec
from repro.core.web_server import SnatchWebServer
from repro.web.cdn import CdnEdge
from repro.web.http import HttpRequest, Method, Status
from repro.web.origin import OriginServer

KEY = bytes(range(16))
APP = 0x2A


def _schema():
    return CookieSchema(
        "ads",
        (
            Feature.categorical("event", ["view", "click"]),
            Feature.categorical("gender", ["f", "m", "x"]),
        ),
    )


def _origin(with_snatch=True):
    snatch = None
    if with_snatch:
        snatch = SnatchWebServer(
            APP, _schema(), KEY,
            lambda prev, req: {"event": "view", "gender": "f"},
            rng=random.Random(1),
        )
    origin = OriginServer(
        snatch=snatch,
        static_content={"/static/app.js": "console.log('hi')"},
    )
    return origin


def _edge(origin=None, with_rule=True):
    snatch_edge = None
    if with_rule:
        snatch_edge = SnatchEdgeServer("pop-1", random.Random(2))
        snatch_edge.register_application(
            APP, _schema(), KEY,
            [StatSpec("by_gender", StatKind.COUNT_BY_CLASS, "gender")],
        )
    return CdnEdge(origin or _origin(), snatch=snatch_edge)


class TestStaticPath:
    def test_miss_then_hit(self):
        edge = _edge()
        request = HttpRequest(Method.GET, "/static/app.js")
        first = edge.handle(request, now_ms=0)
        assert not first.cache_hit and first.went_to_origin
        second = edge.handle(request, now_ms=10)
        assert second.cache_hit and not second.went_to_origin
        assert second.response.body == "console.log('hi')"
        assert edge.origin_fetches == 1
        assert edge.hit_ratio == pytest.approx(0.5)

    def test_ttl_expiry_refetches(self):
        origin = _origin()
        origin.static_ttl_ms = 100
        edge = _edge(origin)
        request = HttpRequest(Method.GET, "/static/app.js")
        edge.handle(request, now_ms=0)
        stale = edge.handle(request, now_ms=200)
        assert not stale.cache_hit
        assert edge.origin_fetches == 2

    def test_missing_asset_404_not_cached(self):
        edge = _edge()
        request = HttpRequest(Method.GET, "/static/ghost.js")
        served = edge.handle(request, now_ms=0)
        assert served.response.status is Status.NOT_FOUND
        again = edge.handle(request, now_ms=1)
        assert again.went_to_origin  # 404s are not cached

    def test_purge(self):
        edge = _edge()
        request = HttpRequest(Method.GET, "/static/app.js")
        edge.handle(request, now_ms=0)
        assert edge.purge("/static/app.js")
        served = edge.handle(request, now_ms=1)
        assert served.went_to_origin


class TestDynamicPath:
    def test_forwarded_to_origin_with_cookie(self):
        edge = _edge()
        served = edge.handle(HttpRequest(Method.POST, "/click"), now_ms=0)
        assert served.went_to_origin
        assert served.response.body == "dynamic:/click"
        # The origin's Snatch server planted a semantic cookie.
        assert any(
            name.startswith("__sc_") for name in served.response.set_cookies
        )

    def test_dynamic_never_cached(self):
        edge = _edge()
        edge.handle(HttpRequest(Method.POST, "/click"), now_ms=0)
        edge.handle(HttpRequest(Method.POST, "/click"), now_ms=1)
        assert edge.origin_fetches == 2


class TestSnatchPageRule:
    def test_semantic_cookie_preaggregated_at_edge(self):
        edge = _edge()
        codec = ApplicationCookieCodec(APP, _schema(), KEY, random.Random(3))
        name, value = codec.encode({"event": "view", "gender": "m"})
        request = HttpRequest(
            Method.GET, "/landing",
            headers={"Cookie": "%s=%s" % (name, value)},
        )
        served = edge.handle(request, now_ms=0)
        assert served.semantic_matched
        assert served.aggregation_payload is not None
        assert edge.snatch.stats_report(APP)["by_gender"]["m"] == 1

    def test_plain_traffic_unaffected(self):
        edge = _edge()
        served = edge.handle(
            HttpRequest(Method.GET, "/landing",
                        headers={"Cookie": "session=xyz"}),
            now_ms=0,
        )
        assert not served.semantic_matched
        assert served.aggregation_payload is None

    def test_rule_free_edge(self):
        edge = _edge(with_rule=False)
        served = edge.handle(HttpRequest(Method.GET, "/landing"), now_ms=0)
        assert not served.semantic_matched


class TestFullLoop:
    def test_set_cookie_round_trips_to_edge_analytics(self):
        """Origin plants the cookie; the user's next request lets the
        edge pre-aggregate it — the complete app-layer Snatch story."""
        edge = _edge()
        first = edge.handle(HttpRequest(Method.GET, "/home"), now_ms=0)
        (name, value), = first.response.set_cookies.items()
        second = edge.handle(
            HttpRequest(Method.GET, "/home",
                        headers={"Cookie": "%s=%s" % (name, value)}),
            now_ms=100,
        )
        assert second.semantic_matched
        assert second.aggregation_payload is not None
        assert edge.snatch.stats_report(APP)["by_gender"]["f"] == 1
        # And nobody ever stored a user record.
        assert edge.origin.stored_user_records == 0
