"""LRU/TTL cache."""

import pytest

from repro.web.cache import LruTtlCache


class TestBasics:
    def test_put_get(self):
        cache = LruTtlCache(capacity=4)
        cache.put("/a", "A", now_ms=0)
        assert cache.get("/a", now_ms=10) == "A"
        assert cache.stats.hits == 1

    def test_miss_recorded(self):
        cache = LruTtlCache()
        assert cache.get("/nope", now_ms=0) is None
        assert cache.stats.misses == 1
        assert cache.stats.hit_ratio == 0.0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LruTtlCache(capacity=0)

    def test_invalidate(self):
        cache = LruTtlCache()
        cache.put("/a", "A", now_ms=0)
        assert cache.invalidate("/a")
        assert not cache.invalidate("/a")
        assert cache.get("/a", now_ms=0) is None

    def test_clear(self):
        cache = LruTtlCache()
        cache.put("/a", "A", now_ms=0)
        cache.clear()
        assert len(cache) == 0


class TestTtl:
    def test_expiry(self):
        cache = LruTtlCache()
        cache.put("/a", "A", now_ms=0, ttl_ms=100)
        assert cache.get("/a", now_ms=99) == "A"
        assert cache.get("/a", now_ms=100) is None
        assert cache.stats.expirations == 1

    def test_no_ttl_never_expires(self):
        cache = LruTtlCache()
        cache.put("/a", "A", now_ms=0)
        assert cache.get("/a", now_ms=1e12) == "A"

    def test_contains_fresh(self):
        cache = LruTtlCache()
        cache.put("/a", "A", now_ms=0, ttl_ms=50)
        assert cache.contains_fresh("/a", now_ms=10)
        assert not cache.contains_fresh("/a", now_ms=60)
        assert not cache.contains_fresh("/b", now_ms=0)

    def test_reput_refreshes_ttl(self):
        cache = LruTtlCache()
        cache.put("/a", "A", now_ms=0, ttl_ms=50)
        cache.put("/a", "A2", now_ms=40, ttl_ms=50)
        assert cache.get("/a", now_ms=80) == "A2"


class TestLru:
    def test_capacity_evicts_oldest(self):
        cache = LruTtlCache(capacity=2)
        cache.put("/a", "A", 0)
        cache.put("/b", "B", 0)
        cache.put("/c", "C", 0)
        assert cache.get("/a", 0) is None
        assert cache.get("/b", 0) == "B"
        assert cache.stats.evictions == 1

    def test_get_refreshes_recency(self):
        cache = LruTtlCache(capacity=2)
        cache.put("/a", "A", 0)
        cache.put("/b", "B", 0)
        cache.get("/a", 0)       # /a is now most recent
        cache.put("/c", "C", 0)  # evicts /b
        assert cache.get("/a", 0) == "A"
        assert cache.get("/b", 0) is None

    def test_hit_ratio(self):
        cache = LruTtlCache()
        cache.put("/a", "A", 0)
        cache.get("/a", 0)
        cache.get("/a", 0)
        cache.get("/x", 0)
        assert cache.stats.hit_ratio == pytest.approx(2 / 3)
