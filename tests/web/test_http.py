"""HTTP message model."""

import pytest

from repro.web.http import HttpRequest, HttpResponse, Method, Status


class TestHttpRequest:
    def test_path_validated(self):
        with pytest.raises(ValueError):
            HttpRequest(Method.GET, "no-slash")

    def test_header_names_normalized(self):
        request = HttpRequest(
            Method.GET, "/", headers={"cOOkie": "a=1", "x-event": "view"}
        )
        assert request.headers == {"Cookie": "a=1", "X-Event": "view"}

    def test_cookie_parsing(self):
        request = HttpRequest(
            Method.GET, "/", headers={"Cookie": "a=1; b=2"}
        )
        assert request.cookies == {"a": "1", "b": "2"}
        assert HttpRequest(Method.GET, "/").cookies == {}

    def test_with_cookie_is_immutable_add(self):
        request = HttpRequest(Method.GET, "/", headers={"Cookie": "a=1"})
        updated = request.with_cookie("b", "2")
        assert updated.cookies == {"a": "1", "b": "2"}
        assert request.cookies == {"a": "1"}

    @pytest.mark.parametrize(
        "path,static",
        [
            ("/static/app.bundle", True),
            ("/img/logo.png", True),
            ("/styles.css", True),
            ("/index.html", False),
            ("/api/clicks", False),
            ("/", False),
        ],
    )
    def test_static_detection(self, path, static):
        assert HttpRequest(Method.GET, path).is_static is static

    def test_post_is_never_static(self):
        assert not HttpRequest(Method.POST, "/static/x.css").is_static


class TestHttpResponse:
    def test_cacheable_requires_ttl_and_ok(self):
        assert HttpResponse(cache_ttl_ms=1000).cacheable
        assert not HttpResponse(cache_ttl_ms=None).cacheable
        assert not HttpResponse(cache_ttl_ms=0).cacheable
        assert not HttpResponse(
            status=Status.NOT_FOUND, cache_ttl_ms=1000
        ).cacheable

    def test_cookie_setting_responses_uncacheable(self):
        response = HttpResponse(
            cache_ttl_ms=1000, set_cookies={"__sc_01": "aabb"}
        )
        assert not response.cacheable

    def test_header_lines_include_set_cookie(self):
        response = HttpResponse(
            headers={"content-type": "text/html"},
            set_cookies={"__sc_01": "aabb"},
        )
        lines = response.header_lines()
        assert "Content-Type: text/html" in lines
        assert "Set-Cookie: __sc_01=aabb" in lines
