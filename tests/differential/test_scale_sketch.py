"""Differential proof for the scale path: exact vs sketch, per backend.

Three obligations:

* **Exact-mode transparency** — enabling per-user tracking must not
  perturb the registered statistics program: demographic reports stay
  bit-identical with tracking off, exact, or sketch.
* **Sketch fidelity** — the sampled tracker's quantiles must sit
  within the DKW rank bound of the exact tracker's on the same
  stream, and its distinct-user KMV estimate near the true count.
* **Backend / batch-shape invariance** — for a fixed mode, scalar,
  batch and columnar ingest must agree on the tracker's *sampled
  state* (entries, items, dropped) and the user report for every
  micro-batch size.  The ``evictions`` counter is excluded when the
  columnar path is involved: grouped observes fold duplicate keys
  before the sketch sees them, which changes how often the heap spills
  — an order-dependent cost metric, never the sampled state.
"""

import pytest

from repro.switch.columns import force_numpy
from repro.testbed.pipeline import BACKENDS, StreamingPipeline
from repro.workloads.scale import ScaleWorkload

RATE = 4000.0
DURATION_MS = 500.0
USERS = 5000
ONE_SHOT = 1 << 20
EPSILON = 0.05


def _run(mode, backend="columnar", batch_size=256, epsilon=EPSILON):
    pipe = StreamingPipeline(
        ScaleWorkload(num_users=USERS, seed=13),
        seed=13,
        backend=backend,
        batch_size=batch_size,
        user_stats=mode,
        quantile_epsilon=epsilon,
    )
    result = pipe.run(RATE, DURATION_MS)
    return pipe, result


def _tracker_state(pipe):
    """Order-insensitive tracker observables: the snapshot minus the
    eviction counter (see module docstring)."""
    snapshot = pipe.agg._apps[pipe.app_id].users.snapshot()
    snapshot.pop("evictions", None)
    return snapshot


@pytest.fixture
def no_numpy():
    force_numpy(False)
    try:
        yield
    finally:
        force_numpy(None)


class TestExactModeTransparency:
    def test_tracking_leaves_demographics_untouched(self):
        # The registered statistics program must be byte-identical
        # whether tracking is off, exact, or sketched; the report only
        # *gains* the user_engagement section.
        _, off = _run(None)
        _, exact = _run("exact")
        _, sketch = _run("sketch")
        for stat in off.report:
            assert off.report[stat] == exact.report[stat], stat
            assert off.report[stat] == sketch.report[stat], stat
        assert "user_engagement" not in off.report
        assert "user_engagement" in exact.report
        assert off.register_state == exact.register_state
        assert off.register_state == sketch.register_state
        assert off.counts_match_reference()
        assert off.user_report is None
        assert exact.user_report is not None

    def test_exact_and_sketch_see_same_stream(self):
        _, exact = _run("exact")
        _, sketch = _run("sketch")
        assert exact.events == sketch.events
        assert exact.user_report["events"] == sketch.user_report["events"]


class TestSketchFidelity:
    def test_quantiles_within_rank_bound(self):
        pipe, exact = _run("exact")
        _, sketch = _run("sketch")
        # Reconstruct the exact per-user count distribution from the
        # exact tracker, then check each sketch quantile lands within
        # the epsilon rank bracket of it (plus DKW's delta slack).
        counts = sorted(
            count for _, count in
            pipe.agg._apps[pipe.app_id].users.snapshot()["counts"]
        )
        m = len(counts)
        slack = EPSILON + 0.02
        for label, q in (("p50", 0.50), ("p90", 0.90), ("p99", 0.99)):
            got = sketch.user_report["quantiles"][label]
            lo_rank = max(int((q - slack) * m) - 1, 0)
            hi_rank = min(int((q + slack) * m) + 1, m - 1)
            assert counts[lo_rank] <= got <= counts[hi_rank], (
                label, got, counts[lo_rank], counts[hi_rank]
            )

    def test_distinct_estimate_close(self):
        _, exact = _run("exact")
        _, sketch = _run("sketch")
        true_users = exact.user_report["users"]
        est = sketch.user_report["users"]
        assert abs(est - true_users) / true_users < 0.13

    def test_sample_bounded_under_churn(self):
        # Long enough that distinct users overflow the sample: the
        # kept set must stay at capacity while the distinct estimate
        # keeps growing past it.
        pipe = StreamingPipeline(
            ScaleWorkload(num_users=USERS, seed=13),
            seed=13,
            backend="columnar",
            user_stats="sketch",
            quantile_epsilon=EPSILON,
        )
        result = pipe.run(8000.0, 1000.0)
        report = result.user_report
        assert report["sampled_users"] <= 1060  # capacity_for(0.05)
        assert report["users"] > report["sampled_users"]


class TestBackendInvariance:
    @pytest.mark.parametrize("mode", ["exact", "sketch"])
    def test_backends_agree_on_sampled_state(self, mode):
        states = {}
        reports = {}
        for backend in BACKENDS:
            pipe, result = _run(mode, backend=backend)
            states[backend] = _tracker_state(pipe)
            reports[backend] = result.user_report
        assert states["scalar"] == states["batch"] == states["columnar"]
        assert reports["scalar"] == reports["batch"] == reports["columnar"]

    @pytest.mark.parametrize("mode", ["exact", "sketch"])
    def test_batch_size_invariance(self, mode):
        _, one_shot = _run(mode, batch_size=ONE_SHOT)
        baseline = one_shot.user_report
        for batch_size in (1, 37, 512):
            _, streamed = _run(mode, batch_size=batch_size)
            assert streamed.user_report == baseline, batch_size
            assert streamed.report == one_shot.report

    def test_columnar_matches_without_numpy(self, no_numpy):
        pipe, result = _run("sketch")
        force_numpy(None)
        pipe_np, result_np = _run("sketch")
        assert result.user_report == result_np.user_report
        assert _tracker_state(pipe) == _tracker_state(pipe_np)
        assert result.report == result_np.report
