"""Seeded workload generators for the scalar-vs-batch differential suite.

Three shapes, all deterministic given a seed:

* ``uniform``     — every user equally likely; the common case.
* ``zipfian``     — heavy-tailed user popularity (Pareto ranks), so the
  batch decode memo sees a few hot cookies and a long cold tail.
* ``adversarial`` — engineered to stress the fast path's caches and
  fallbacks: distinct connection IDs that collide in the decode memo
  (same preserved cookie bytes, different random filler), cookies
  encrypted under the wrong key (decode-failure path), non-Snatch junk
  CIDs (app-table miss), and truncated CIDs.

Every generator returns plain :class:`ConnectionID` lists so the same
stream can be replayed through the scalar path and through
``process_quic_batch`` at any chunking.
"""

import random
from typing import List

from repro.core.aggregation import ForwardingMode
from repro.core.aggswitch import AggSwitch
from repro.core.larkswitch import LarkSwitch
from repro.core.transport_cookie import TransportCookieCodec
from repro.obs.registry import MetricsRegistry
from repro.quic.connection_id import ConnectionID
from repro.switch.hashing import crc32
from repro.workloads.adcampaign import AdCampaignWorkload

APP_ID = 0x3D
SHAPES = ("uniform", "zipfian", "adversarial")


def register_state(switch):
    """Full raw register-file contents of a switch pipeline — the
    strictest state comparison the differential suite makes."""
    registers = switch.pipeline.registers
    return {name: registers.get(name).snapshot() for name in registers.names()}


class DifferentialWorkload:
    """One seeded user population plus matched switch constructors.

    Paired switches are built with identical seeds but *private*
    metrics registries: same-named instruments in the global registry
    would otherwise be shared between the scalar and batch instances.
    """

    def __init__(self, seed: int, num_users: int = 300):
        self.seed = seed
        self.workload = AdCampaignWorkload(num_users=num_users, seed=seed)
        key_rng = random.Random(seed * 1000 + 17)
        self.key = bytes(key_rng.getrandbits(8) for _ in range(16))
        self.wrong_key = bytes(key_rng.getrandbits(8) for _ in range(16))
        self.schema = self.workload.schema()
        self.specs = self.workload.specs()

    # -- switches -----------------------------------------------------------

    def new_lark(self, mode: str = ForwardingMode.PERIODICAL) -> LarkSwitch:
        lark = LarkSwitch(
            "diff-lark",
            rng=random.Random(self.seed + 1),
            registry=MetricsRegistry(),
        )
        lark.register_application(
            APP_ID, self.schema, self.key, self.specs, mode=mode,
            period_ms=1000.0 if mode == ForwardingMode.PERIODICAL else 0.0,
        )
        return lark

    def new_agg(self, shards: int = 1) -> AggSwitch:
        agg = AggSwitch(
            "diff-agg",
            rng=random.Random(self.seed + 2),
            registry=MetricsRegistry(),
            shards=shards,
        )
        agg.register_application(APP_ID, self.schema, self.key, self.specs)
        return agg

    def _codec(self, key: bytes = None) -> TransportCookieCodec:
        return TransportCookieCodec(
            APP_ID, self.schema, key or self.key,
            random.Random(self.seed + 3),
        )

    # -- CID streams --------------------------------------------------------

    def _per_user_cids(self) -> List[ConnectionID]:
        codec = self._codec()
        rng = random.Random(self.seed + 4)
        return [
            codec.encode(
                user.semantic_values(
                    rng.choice(self.workload.campaigns),
                    rng.choice(("view", "click")),
                )
            )
            for user in self.workload.users
        ]

    def cids(self, shape: str, n: int) -> List[ConnectionID]:
        if shape == "uniform":
            return self._uniform(n)
        if shape == "zipfian":
            return self._zipfian(n)
        if shape == "adversarial":
            return self._adversarial(n)
        raise ValueError("unknown workload shape %r" % shape)

    def _uniform(self, n: int) -> List[ConnectionID]:
        per_user = self._per_user_cids()
        rng = random.Random(self.seed + 5)
        return [per_user[rng.randrange(len(per_user))] for _ in range(n)]

    def _zipfian(self, n: int) -> List[ConnectionID]:
        per_user = self._per_user_cids()
        rng = random.Random(self.seed + 6)
        out = []
        for _ in range(n):
            rank = min(int(rng.paretovariate(1.2)) - 1, len(per_user) - 1)
            out.append(per_user[rank])
        return out

    def _adversarial(self, n: int) -> List[ConnectionID]:
        rng = random.Random(self.seed + 7)
        codec = self._codec()
        wrong_codec = self._codec(self.wrong_key)
        hot_users = self.workload.users[:4]
        out: List[ConnectionID] = []
        for _ in range(n):
            kind = rng.randrange(8)
            user = rng.choice(hot_users)
            values = user.semantic_values(
                rng.choice(self.workload.campaigns),
                rng.choice(("view", "click")),
            )
            if kind < 4:
                # Fresh encode each time: the ECB cookie block repeats
                # but the filler bytes differ, so distinct CIDs share
                # one decode-memo key.
                out.append(codec.encode(values))
            elif kind < 6:
                # Right app-ID byte, wrong AES key: decode falls into
                # the failure/abort path (memoized as None).
                out.append(wrong_codec.encode(values))
            elif kind == 6:
                # Non-Snatch traffic: random first byte, app table miss.
                raw = bytes([0x80 | rng.getrandbits(7)]) + bytes(
                    rng.getrandbits(8) for _ in range(19)
                )
                out.append(ConnectionID(raw))
            else:
                # Truncated CID, shorter than one AES block.
                raw = bytes(codec.encode(values))[: rng.randrange(1, 8)]
                out.append(ConnectionID(raw))
        return out

    # -- aggregation payloads -----------------------------------------------

    def payloads(self, shape: str, n: int) -> List[bytes]:
        """Aggregation payloads produced by a per-packet-mode lark over
        the same shaped CID stream (the natural feed for AggSwitch)."""
        lark = self.new_lark(mode=ForwardingMode.PER_PACKET)
        results = lark.process_quic_batch(self.cids(shape, n))
        return [
            r.aggregation_payload for r in results
            if r.aggregation_payload is not None
        ]

    def skewed_payloads(self, n: int, shards: int) -> List[bytes]:
        """Payloads filtered so most land on one shard — the
        hash-collision adversary for the sharded register banks."""
        pool = self.payloads("uniform", n)
        hot = [p for p in pool if crc32(p) % shards == 0]
        rng = random.Random(self.seed + 8)
        out = list(pool)
        while len(out) < n and hot:
            out.append(hot[rng.randrange(len(hot))])
        return out[:n]
