"""Differential proof for the persistent ring-fed worker tier.

A long-lived shard worker fed over a shared-memory columnar ring is
only an optimization if it changes nothing observable: every run that
streams through :mod:`repro.testbed.worker` must equal the in-process
scalar / batch / columnar paths byte for byte — merged register
snapshots, rendered reports, per-shard packet/fold counters, streamed
pipeline observables — at five seeds, across the uniform / zipfian /
adversarial workload shapes, sharded and unsharded, for both switch
kinds, including mid-run rekey and forwarding-period boundaries.

The whole module skips where POSIX shared memory is unavailable.
"""

import pytest

from repro.core.aggregation import ForwardingMode
from repro.testbed.executor import ShardExecutor, ShardSpec
from repro.testbed.pipeline import StreamingPipeline
from repro.testbed.shm_ring import shared_memory_available
from repro.workloads.adcampaign import AdCampaignWorkload

from tests.differential.workloads import (
    APP_ID,
    SHAPES,
    DifferentialWorkload,
)

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="POSIX shared memory unavailable",
)

SEEDS = (11, 23, 37, 41, 59)
PACKETS = 400
INLINE_BACKENDS = ("scalar", "batch", "columnar")


def _agg_spec(wl: DifferentialWorkload) -> ShardSpec:
    return ShardSpec(
        kind="agg", app_id=APP_ID, schema=wl.schema, key=wl.key,
        specs=tuple(wl.specs), seed=7,
    )


def _lark_spec(wl: DifferentialWorkload) -> ShardSpec:
    # dedup off so results depend only on packet order, not arrival
    # timing — the property every backend must then agree on.
    return ShardSpec(
        kind="lark", app_id=APP_ID, schema=wl.schema, key=wl.key,
        specs=tuple(wl.specs), seed=7, dedup=False,
    )


def _observables(result):
    return (
        result.snapshot,
        result.report,
        result.shard_packets,
        result.shard_folded,
    )


def _inline(spec, packets, shards, backend):
    executor = ShardExecutor(
        spec, shards=shards, processes=1, backend=backend, chunk_size=96
    )
    return _observables(executor.run(packets))


class TestExecutorSharded:
    """Persistent fleet vs the in-process backends, 2-way sharded.

    One fleet per seed is reused across all three workload shapes
    (``drain(reset=True)`` returns every worker replica to pristine
    state between runs), which is exactly how long-lived deployments
    drive it — so shape N also proves run N-1 left no residue.
    """

    @pytest.mark.parametrize("seed", SEEDS)
    def test_agg_matches_every_inline_backend(self, seed):
        wl = DifferentialWorkload(seed=seed)
        spec = _agg_spec(wl)
        with ShardExecutor(
            spec, shards=2, backend="columnar", chunk_size=96,
            persistent=True,
        ) as executor:
            for shape in SHAPES:
                packets = wl.payloads(shape, PACKETS)
                result = executor.run(packets)
                assert result.used_workers, (shape, result.fallback_cause)
                got = _observables(result)
                for backend in INLINE_BACKENDS:
                    assert got == _inline(spec, packets, 2, backend), (
                        seed, shape, backend,
                    )

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_lark_cid_stream_matches(self, seed):
        wl = DifferentialWorkload(seed=seed)
        spec = _lark_spec(wl)
        with ShardExecutor(
            spec, shards=2, backend="columnar", chunk_size=96,
            persistent=True,
        ) as executor:
            for shape in SHAPES:
                packets = [bytes(c) for c in wl.cids(shape, PACKETS)]
                result = executor.run(packets)
                assert result.used_workers, (shape, result.fallback_cause)
                got = _observables(result)
                for backend in INLINE_BACKENDS:
                    assert got == _inline(spec, packets, 2, backend), (
                        seed, shape, backend,
                    )

    def test_skewed_partition_matches(self):
        """The hash-collision adversary: most packets land on one
        shard, so one ring saturates while the other idles."""
        wl = DifferentialWorkload(seed=SEEDS[0])
        spec = _agg_spec(wl)
        packets = wl.skewed_payloads(PACKETS, shards=2)
        with ShardExecutor(
            spec, shards=2, backend="columnar", chunk_size=32,
            persistent=True,
        ) as executor:
            result = executor.run(packets)
            assert result.used_workers, result.fallback_cause
            assert _observables(result) == _inline(
                spec, packets, 2, "columnar"
            )


class TestExecutorUnsharded:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_single_shard_matches_every_inline_backend(self, seed):
        wl = DifferentialWorkload(seed=seed)
        spec = _agg_spec(wl)
        with ShardExecutor(
            spec, shards=1, backend="columnar", chunk_size=96,
            persistent=True,
        ) as executor:
            for shape in SHAPES:
                packets = wl.payloads(shape, PACKETS)
                result = executor.run(packets)
                assert result.used_workers, (shape, result.fallback_cause)
                got = _observables(result)
                for backend in INLINE_BACKENDS:
                    assert got == _inline(spec, packets, 1, backend), (
                        seed, shape, backend,
                    )


class TestWorkerBackendSelection:
    """The worker honors non-columnar per-shard backends too: the ring
    transport is orthogonal to the compute tier it feeds."""

    @pytest.mark.parametrize("backend", ("scalar", "batch"))
    def test_worker_runs_requested_backend(self, backend):
        wl = DifferentialWorkload(seed=SEEDS[2])
        spec = _agg_spec(wl)
        packets = wl.payloads("zipfian", PACKETS)
        with ShardExecutor(
            spec, shards=2, backend=backend, chunk_size=96,
            persistent=True,
        ) as executor:
            result = executor.run(packets)
            assert result.used_workers, result.fallback_cause
            assert _observables(result) == _inline(
                spec, packets, 2, backend
            )


# -- streamed pipeline ------------------------------------------------------

RATE = 3000.0
DURATION_MS = 400.0
PERIOD_MS = 100.0  # four forwarding-period boundaries per run


def _pipeline_run(backend, seed, mode=ForwardingMode.PERIODICAL,
                  on_batch=None, **kw):
    workload = AdCampaignWorkload(num_users=80, seed=seed)
    pipe = StreamingPipeline(
        workload,
        seed=seed,
        mode=mode,
        period_ms=PERIOD_MS,
        backend=backend,
        batch_size=64,
        on_batch=on_batch,
        **kw,
    )
    try:
        result = pipe.run(RATE, DURATION_MS)
    finally:
        pipe.close()
    return (
        result.events,
        result.payloads,
        result.merged,
        result.periods,
        result.report,
        result.register_state,
        result.dead_letters,
        result.user_report,
    ), result


class TestPipelineDifferential:
    @pytest.mark.parametrize("seed", (SEEDS[0], SEEDS[3]))
    def test_periodical_matches_inline_backends(self, seed):
        """Periodical mode crosses four period boundaries; the
        persistent stream must flush and fold at the same instants."""
        got, result = _pipeline_run("persistent", seed)
        assert result.counts_match_reference()
        for backend in INLINE_BACKENDS:
            assert got == _pipeline_run(backend, seed)[0], (seed, backend)

    def test_per_packet_matches_inline_backends(self):
        got, result = _pipeline_run(
            "persistent", SEEDS[1], mode=ForwardingMode.PER_PACKET
        )
        assert result.counts_match_reference()
        for backend in INLINE_BACKENDS:
            assert got == _pipeline_run(
                backend, SEEDS[1], mode=ForwardingMode.PER_PACKET
            )[0], backend


class TestPipelineMidRunRekey:
    def test_rekey_mid_run_matches_columnar(self):
        """A controller rekey lands between micro-batches while agg
        batches are already queued on the ring; the worker must apply
        it at exactly the same stream position as the inline path."""
        new_key = bytes(range(16))

        def make_hook():
            seen = []

            def hook(pipe, cols):
                seen.append(True)
                if len(seen) == 3:
                    pipe.rekey(new_key)

            return hook

        got, result = _pipeline_run(
            "persistent", SEEDS[0], mode=ForwardingMode.PER_PACKET,
            on_batch=make_hook(),
        )
        assert result.counts_match_reference()
        assert got == _pipeline_run(
            "columnar", SEEDS[0], mode=ForwardingMode.PER_PACKET,
            on_batch=make_hook(),
        )[0]
