"""Differential proof that the batch fast path is bit-identical to the
scalar path.

The load-bearing invariant of the compiled batch path
(:meth:`SwitchPipeline.process_batch`, ``LarkSwitch.process_quic_batch``,
``AggSwitch.process_batch``) is that batching is *purely* a host-CPU
optimization: every observable — per-packet results, digests, decoded
values, raw register contents, statistics reports, merged shard state —
must equal the scalar path's, byte for byte.  This suite replays the
same seeded streams through both paths across three workload shapes
(uniform, zipfian, adversarial) and five seeds, at several chunk sizes.
"""

import pytest

from repro.core.aggregation import ForwardingMode
from repro.testbed.config import Scheme, TestbedConfig
from repro.testbed.network_testbed import NetworkTestbed
from repro.workloads.adcampaign import iter_batches

from tests.differential.workloads import (
    APP_ID,
    SHAPES,
    DifferentialWorkload,
    register_state,
)

SEEDS = (11, 23, 37, 41, 59)
# One chunking per seed, covering the degenerate single-packet batch,
# odd sizes that straddle stream boundaries, and an oversized batch.
BATCH_SIZES = {11: 1, 23: 7, 37: 64, 41: 113, 59: 4096}
PACKETS = 240


def _run_lark_pair(wl, shape, batch_size, mode):
    cids = wl.cids(shape, PACKETS)
    scalar = wl.new_lark(mode=mode)
    batch = wl.new_lark(mode=mode)
    scalar_results = [scalar.process_quic_packet(cid) for cid in cids]
    batch_results = []
    for chunk in iter_batches(cids, batch_size):
        batch_results.extend(batch.process_quic_batch(chunk))
    return scalar, batch, scalar_results, batch_results


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("shape", SHAPES)
def test_lark_batch_bit_identical(shape, seed):
    """LarkResults, digests, registers and reports all match."""
    wl = DifferentialWorkload(seed)
    scalar, batch, scalar_results, batch_results = _run_lark_pair(
        wl, shape, BATCH_SIZES[seed], ForwardingMode.PERIODICAL
    )
    assert len(batch_results) == len(scalar_results)
    for i, (s, b) in enumerate(zip(scalar_results, batch_results)):
        assert b == s, "packet %d diverged (%s, seed %d)" % (i, shape, seed)
        assert b.digests == s.digests
    assert register_state(batch) == register_state(scalar)
    assert batch.stats_report(APP_ID) == scalar.stats_report(APP_ID)


@pytest.mark.parametrize("seed", SEEDS[:2])
@pytest.mark.parametrize("shape", SHAPES)
def test_lark_batch_bit_identical_per_packet_mode(shape, seed):
    """Per-packet forwarding encodes a payload per match (fresh IV from
    the app RNG) — the RNG consumption order must also line up."""
    wl = DifferentialWorkload(seed)
    scalar, batch, scalar_results, batch_results = _run_lark_pair(
        wl, shape, BATCH_SIZES[seed], ForwardingMode.PER_PACKET
    )
    assert batch_results == scalar_results
    assert register_state(batch) == register_state(scalar)
    assert batch.stats_report(APP_ID) == scalar.stats_report(APP_ID)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("shape", SHAPES)
def test_agg_batch_bit_identical(shape, seed):
    """AggResults (including per-packet forward reports), registers and
    merged report all match between scalar and batch aggregation."""
    wl = DifferentialWorkload(seed)
    payloads = wl.payloads(shape, PACKETS)
    assert payloads, "workload produced no aggregation payloads"
    scalar = wl.new_agg()
    batch = wl.new_agg()
    scalar_results = [scalar.process_packet(p) for p in payloads]
    batch_results = []
    for chunk in iter_batches(payloads, BATCH_SIZES[seed]):
        batch_results.extend(batch.process_batch(chunk))
    assert batch_results == scalar_results
    assert register_state(batch) == register_state(scalar)
    assert batch.merge(APP_ID) == scalar.merge(APP_ID)
    assert batch.report(APP_ID) == scalar.report(APP_ID)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("shards", (2, 4, 7))
def test_sharded_agg_matches_unsharded(seed, shards):
    """Hash-partitioned register banks merge back to exactly the
    single-bank state, scalar and batch alike."""
    wl = DifferentialWorkload(seed)
    payloads = wl.payloads("uniform", PACKETS)
    flat = wl.new_agg(shards=1)
    sharded = wl.new_agg(shards=shards)
    for p in payloads:
        flat.process_packet(p)
    sharded.process_batch(payloads)
    assert sharded.merge(APP_ID) == flat.merge(APP_ID)
    assert sharded.report(APP_ID) == flat.report(APP_ID)


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_sharded_agg_under_hash_collision_skew(seed):
    """Adversarially skewed payloads (most hashing to one shard) still
    merge to the same report as the unsharded switch."""
    shards = 4
    wl = DifferentialWorkload(seed)
    payloads = wl.skewed_payloads(PACKETS, shards)
    flat = wl.new_agg(shards=1)
    skewed = wl.new_agg(shards=shards)
    scalar_results = [flat.process_packet(p) for p in payloads]
    batch_results = skewed.process_batch(payloads)
    assert skewed.report(APP_ID) == flat.report(APP_ID)
    # Per-packet forward reports are shard-independent too: the merge
    # action snapshots the *merged* state after every packet.
    assert [r.forward_report for r in batch_results] == [
        r.forward_report for r in scalar_results
    ]


def test_testbed_batched_matches_scalar_analytics():
    """End to end: a batched-data-plane testbed run reaches the same
    analytics report as the scalar run (latency differs only by the
    modeled batching window)."""
    config = TestbedConfig(
        scheme=Scheme.TRANS_1RTT,
        insa=True,
        requests_per_second=40.0,
        duration_ms=2000.0,
    )
    scalar = NetworkTestbed(config=config).run()
    batched = NetworkTestbed(
        config=config, batch_window_ms=5.0, batch_max=64, agg_shards=4
    ).run()
    assert scalar.counts_match_reference()
    assert batched.counts_match_reference()
    assert batched.report == scalar.report
    assert len(batched.latencies_ms) == len(scalar.latencies_ms)
    assert batched.aggregation_packets == scalar.aggregation_packets
