"""Differential proof for skew-aware elastic placement.

Moving virtual buckets between shards at epoch boundaries — or
resizing the shard fleet outright — is only an optimization if it
changes nothing observable: every elastic run must produce the same
merged register snapshot and rendered report as the static
``crc32 % shards`` runtime, byte for byte.  (Per-shard packet counts
intentionally differ once buckets move; the snapshot and report are
the cross-placement comparands.)

Covered here, at three seeds each: the inline supervised runtime
across the scalar and columnar backends, an aggressive rebalancer that
moves buckets every epoch, elastic fleet resizes (grow and shrink),
the persistent ring-fed supervisor, and the streaming pipeline's
placement fleet — plus the no-rebalance sanity check that a default
map reproduces the static per-shard packet counts exactly.
"""

import pytest

from repro.core.aggregation import ForwardingMode
from repro.obs.registry import MetricsRegistry
from repro.testbed.executor import ShardExecutor, ShardSpec
from repro.testbed.pipeline import StreamingPipeline
from repro.testbed.placement import PartitionMap, PlacementController
from repro.testbed.shm_ring import shared_memory_available
from repro.testbed.supervisor import ShardSupervisor
from repro.workloads.adcampaign import AdCampaignWorkload

from tests.differential.workloads import (
    APP_ID,
    DifferentialWorkload,
)

SEEDS = (11, 23, 37)
PACKETS = 400
BACKENDS = ("scalar", "columnar")

needs_shm = pytest.mark.skipif(
    not shared_memory_available(),
    reason="POSIX shared memory unavailable",
)


def _agg_spec(wl: DifferentialWorkload) -> ShardSpec:
    return ShardSpec(
        kind="agg", app_id=APP_ID, schema=wl.schema, key=wl.key,
        specs=tuple(wl.specs), seed=7,
    )


def _lark_spec(wl: DifferentialWorkload) -> ShardSpec:
    return ShardSpec(
        kind="lark", app_id=APP_ID, schema=wl.schema, key=wl.key,
        specs=tuple(wl.specs), seed=7, dedup=False,
    )


def _aggressive(shards, **kw):
    """A controller that rebalances at every barrier it legally can."""
    kw.setdefault("target_imbalance", 1.05)
    kw.setdefault("rebalance_margin", 0.05)
    kw.setdefault("cooldown_epochs", 0)
    return PlacementController(
        shards=shards, registry=MetricsRegistry(), **kw
    )


def _supervisor(spec, backend="columnar", placement=None, shards=2,
                persistent=False):
    return ShardSupervisor(
        spec,
        shards=shards,
        processes=0,
        backend=backend,
        chunk_size=32,
        checkpoint_batches=2,
        registry=MetricsRegistry(),
        backoff_base_s=0.0,
        sleep=lambda _s: None,
        persistent=persistent,
        placement=placement,
    )


class TestSupervisorElastic:
    """Inline elastic supervisor vs the static runtime."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_agg_rebalanced_matches_static(self, seed, backend):
        wl = DifferentialWorkload(seed=seed)
        spec = _agg_spec(wl)
        packets = wl.payloads("zipfian", PACKETS)
        static = _supervisor(spec, backend).run(packets)
        elastic = _supervisor(
            spec, backend, placement=_aggressive(2)
        ).run(packets)
        assert elastic.snapshot == static.snapshot, (seed, backend)
        assert elastic.report == static.report, (seed, backend)
        assert len(elastic.map_versions) >= 2

    @pytest.mark.parametrize("seed", SEEDS)
    def test_lark_rebalanced_matches_static(self, seed):
        wl = DifferentialWorkload(seed=seed)
        spec = _lark_spec(wl)
        packets = [bytes(c) for c in wl.cids("zipfian", PACKETS)]
        static = _supervisor(spec, "columnar").run(packets)
        elastic = _supervisor(
            spec, "columnar", placement=_aggressive(2)
        ).run(packets)
        assert elastic.snapshot == static.snapshot, seed
        assert elastic.report == static.report, seed

    @pytest.mark.parametrize("seed", SEEDS)
    def test_skewed_stream_rebalances_and_matches(self, seed):
        """The hash adversary pins most packets on one shard: the
        controller must actually move buckets, and still change
        nothing observable."""
        wl = DifferentialWorkload(seed=seed)
        spec = _agg_spec(wl)
        packets = wl.skewed_payloads(PACKETS, shards=2)
        static = _supervisor(spec, "columnar").run(packets)
        controller = _aggressive(2)
        elastic = _supervisor(
            spec, "columnar", placement=controller
        ).run(packets)
        assert elastic.snapshot == static.snapshot, seed
        assert elastic.report == static.report, seed
        assert controller.rebalances >= 1, seed

    def test_default_map_reproduces_static_partition(self):
        """With no rebalance pressure the elastic runtime routes every
        packet exactly like the legacy modulo — per-shard packet
        counts included."""
        wl = DifferentialWorkload(seed=SEEDS[0])
        spec = _agg_spec(wl)
        packets = wl.payloads("uniform", PACKETS)
        static = _supervisor(spec, "columnar").run(packets)
        calm = PlacementController(
            shards=2, target_imbalance=50.0, cooldown_epochs=0,
            registry=MetricsRegistry(),
        )
        elastic = _supervisor(
            spec, "columnar", placement=calm
        ).run(packets)
        assert elastic.shard_packets == static.shard_packets
        assert elastic.snapshot == static.snapshot
        assert elastic.report == static.report
        assert calm.map.version == 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_elastic_resize_matches_static(self, seed):
        """Mid-run fleet grow/shrink driven by target_shard_load: the
        windows land on different shard counts, the fold does not
        care."""
        wl = DifferentialWorkload(seed=seed)
        spec = _agg_spec(wl)
        packets = wl.payloads("uniform", PACKETS)
        static = _supervisor(spec, "columnar").run(packets)
        controller = PlacementController(
            shards=2, target_shard_load=40.0, max_shards=4,
            cooldown_epochs=0, registry=MetricsRegistry(),
        )
        elastic = _supervisor(
            spec, "columnar", placement=controller
        ).run(packets)
        assert elastic.snapshot == static.snapshot, seed
        assert elastic.report == static.report, seed
        assert controller.resizes >= 1, seed


@needs_shm
class TestSupervisorElasticPersistent:
    """The elastic runtime on real ring-fed worker processes."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_persistent_rebalanced_matches_static(self, seed):
        wl = DifferentialWorkload(seed=seed)
        spec = _agg_spec(wl)
        packets = wl.payloads("zipfian", PACKETS)
        static = _supervisor(spec, "columnar").run(packets)
        elastic = _supervisor(
            spec, "columnar", placement=_aggressive(2), persistent=True,
        ).run(packets)
        assert elastic.used_workers, elastic.fallback_cause
        assert elastic.snapshot == static.snapshot, seed
        assert elastic.report == static.report, seed


class TestExecutorPlacement:
    """Static executor with an explicit map vs the bare modulo."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_rebalanced_map_changes_nothing_observable(self, seed):
        wl = DifferentialWorkload(seed=seed)
        spec = _agg_spec(wl)
        packets = wl.payloads("zipfian", PACKETS)
        base = ShardExecutor(
            spec, shards=2, processes=1, backend="columnar",
            chunk_size=96,
        ).run(packets)
        pmap = PartitionMap(shards=2)
        executor = ShardExecutor(
            spec, processes=1, backend="columnar", chunk_size=96,
            placement=pmap,
        )
        default_map = executor.run(packets)
        assert default_map.shard_packets == base.shard_packets
        assert default_map.snapshot == base.snapshot
        counts = executor.last_bucket_counts
        moved = pmap.rebalanced(counts, target=1.02)
        executor.set_placement(moved)
        rebalanced = executor.run(packets)
        assert rebalanced.snapshot == base.snapshot, seed
        assert rebalanced.report == base.report, seed


RATE = 3000.0
DURATION_MS = 400.0
PERIOD_MS = 100.0


def _pipeline_run(backend, seed, placement=None,
                  mode=ForwardingMode.PERIODICAL):
    workload = AdCampaignWorkload(num_users=80, seed=seed)
    pipe = StreamingPipeline(
        workload,
        seed=seed,
        mode=mode,
        period_ms=PERIOD_MS,
        backend=backend,
        batch_size=64,
        registry=MetricsRegistry(),
        placement=placement,
    )
    try:
        result = pipe.run(RATE, DURATION_MS)
    finally:
        pipe.close()
    return (
        result.events,
        result.payloads,
        result.merged,
        result.periods,
        result.report,
        result.register_state,
        result.dead_letters,
    ), result


@needs_shm
class TestPipelinePlacement:
    """The streaming pipeline's elastic agg fleet vs the inline tiers."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fleet_matches_inline_backends(self, seed):
        controller = _aggressive(3)
        got, result = _pipeline_run(
            "persistent", seed, placement=controller,
            mode=ForwardingMode.PER_PACKET,
        )
        assert result.counts_match_reference()
        assert result.agg_shards == controller.map.shards
        assert sum(result.agg_shard_packets) == result.payloads
        for backend in BACKENDS:
            assert got == _pipeline_run(
                backend, seed, mode=ForwardingMode.PER_PACKET
            )[0], (seed, backend)

    def test_fleet_shrink_matches_columnar(self):
        """Periodical mode ticks the controller at period flushes; a
        harsh target_shard_load retires workers mid-run."""
        controller = PlacementController(
            shards=4, target_shard_load=10_000.0, min_shards=1,
            cooldown_epochs=0, registry=MetricsRegistry(),
        )
        got, result = _pipeline_run(
            "persistent", SEEDS[1], placement=controller
        )
        assert result.agg_shards == 1
        assert any(
            h["action"] == "resize" for h in result.placement_history
        )
        assert got == _pipeline_run("columnar", SEEDS[1])[0]

    def test_placement_requires_persistent_backend(self):
        workload = AdCampaignWorkload(num_users=8, seed=1)
        with pytest.raises(ValueError):
            StreamingPipeline(
                workload, backend="columnar",
                placement=_aggressive(2),
            )
