"""Differential proof that all three execution backends are bit-identical.

Extends ``test_scalar_vs_batch`` with the columnar axis: every workload
shape runs through the scalar loop, the compiled batch path AND the
vectorized columnar kernels, at five seeds, and every observable —
per-packet results, digests, decoded values, raw register contents,
statistics reports — must match byte for byte.  The same streams are
then replayed with numpy force-disabled (:func:`force_numpy`), proving
the pure-Python fallback is the semantic reference, and through the
multiprocess :class:`ShardExecutor`, proving the partition/fold algebra
reconstructs single-switch state exactly.
"""

import pytest

from repro.core.aggregation import ForwardingMode
from repro.switch.columns import force_numpy, numpy_enabled
from repro.testbed.executor import AdaptiveBackend, ShardExecutor, ShardSpec
from repro.workloads.adcampaign import iter_batches

from tests.differential.workloads import (
    APP_ID,
    SHAPES,
    DifferentialWorkload,
    register_state,
)

SEEDS = (11, 23, 37, 41, 59)
BATCH_SIZES = {11: 1, 23: 7, 37: 64, 41: 113, 59: 4096}
PACKETS = 240
FAST_BACKENDS = ("batch", "columnar")


@pytest.fixture
def no_numpy():
    """Force the pure-Python kernels for the duration of a test."""
    force_numpy(False)
    try:
        yield
    finally:
        force_numpy(None)


def _run_lark(switch, cids, backend, batch_size):
    if backend == "scalar":
        return [switch.process_quic_packet(cid) for cid in cids]
    process = (
        switch.process_quic_batch if backend == "batch"
        else switch.process_quic_columnar
    )
    results = []
    for chunk in iter_batches(cids, batch_size):
        results.extend(process(chunk))
    return results


def _run_agg(switch, payloads, backend, batch_size):
    if backend == "scalar":
        return [switch.process_packet(p) for p in payloads]
    process = (
        switch.process_batch if backend == "batch"
        else switch.process_columnar
    )
    results = []
    for chunk in iter_batches(payloads, batch_size):
        results.extend(process(chunk))
    return results


def _assert_lark_identical(wl, shape, seed, mode):
    cids = wl.cids(shape, PACKETS)
    scalar = wl.new_lark(mode=mode)
    scalar_results = _run_lark(scalar, cids, "scalar", 0)
    for backend in FAST_BACKENDS:
        fast = wl.new_lark(mode=mode)
        fast_results = _run_lark(fast, cids, backend, BATCH_SIZES[seed])
        assert len(fast_results) == len(scalar_results)
        for i, (s, f) in enumerate(zip(scalar_results, fast_results)):
            assert f == s, "packet %d diverged (%s, seed %d, %s)" % (
                i, shape, seed, backend
            )
        assert register_state(fast) == register_state(scalar), backend
        assert fast.stats_report(APP_ID) == scalar.stats_report(APP_ID)


def _assert_agg_identical(wl, shape, seed, shards=1):
    payloads = wl.payloads(shape, PACKETS)
    assert payloads, "workload produced no aggregation payloads"
    scalar = wl.new_agg(shards=shards)
    scalar_results = _run_agg(scalar, payloads, "scalar", 0)
    for backend in FAST_BACKENDS:
        fast = wl.new_agg(shards=shards)
        fast_results = _run_agg(fast, payloads, backend, BATCH_SIZES[seed])
        assert fast_results == scalar_results, backend
        assert register_state(fast) == register_state(scalar), backend
        assert fast.merge(APP_ID) == scalar.merge(APP_ID)
        assert fast.report(APP_ID) == scalar.report(APP_ID)


# -- three-way backend identity ---------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("shape", SHAPES)
def test_lark_backends_bit_identical(shape, seed):
    """Periodical lark: scalar == batch == columnar on every shape."""
    _assert_lark_identical(
        DifferentialWorkload(seed), shape, seed, ForwardingMode.PERIODICAL
    )


@pytest.mark.parametrize("seed", SEEDS[:2])
@pytest.mark.parametrize("shape", SHAPES)
def test_lark_backends_per_packet_mode(shape, seed):
    """Per-packet mode encodes a payload per match (fresh IV from the
    app RNG); all backends must consume the RNG in global packet order."""
    _assert_lark_identical(
        DifferentialWorkload(seed), shape, seed, ForwardingMode.PER_PACKET
    )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("shape", SHAPES)
def test_agg_backends_bit_identical(shape, seed):
    """AggSwitch: scalar == batch == columnar, single bank."""
    _assert_agg_identical(DifferentialWorkload(seed), shape, seed)


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_agg_backends_bit_identical_sharded(seed):
    """Same, with hash-partitioned register banks."""
    _assert_agg_identical(
        DifferentialWorkload(seed), "zipfian", seed, shards=3
    )


# -- numpy-disabled fallback -------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS[:2])
@pytest.mark.parametrize("shape", SHAPES)
def test_backends_identical_without_numpy(no_numpy, shape, seed):
    """With the numpy gate closed the columnar entry points fall back
    to the batch path — identity must hold on the pure-Python kernels."""
    assert not numpy_enabled()
    wl = DifferentialWorkload(seed)
    _assert_lark_identical(wl, shape, seed, ForwardingMode.PERIODICAL)
    _assert_agg_identical(wl, shape, seed)


@pytest.mark.parametrize("seed", SEEDS[:1])
def test_numpy_and_fallback_agree(seed):
    """The vectorized and pure-Python kernels produce identical state
    on the same stream (only meaningful when numpy is importable)."""
    if not numpy_enabled():
        pytest.skip("numpy unavailable")
    wl = DifferentialWorkload(seed)
    cids = wl.cids("adversarial", PACKETS)
    vec = wl.new_lark()
    _run_lark(vec, cids, "columnar", 64)
    force_numpy(False)
    try:
        plain = wl.new_lark()
        _run_lark(plain, cids, "columnar", 64)
    finally:
        force_numpy(None)
    assert register_state(vec) == register_state(plain)
    assert vec.stats_report(APP_ID) == plain.stats_report(APP_ID)


# -- multiprocess shard executor --------------------------------------------


def _agg_spec(wl):
    return ShardSpec(
        kind="agg",
        app_id=APP_ID,
        schema=wl.schema,
        key=wl.key,
        specs=tuple(wl.specs),
        seed=wl.seed,
    )


def _lark_spec(wl):
    return ShardSpec(
        kind="lark",
        app_id=APP_ID,
        schema=wl.schema,
        key=wl.key,
        specs=tuple(wl.specs),
        seed=wl.seed,
        mode=ForwardingMode.PERIODICAL,
        period_ms=1000.0,
        dedup=False,
    )


@pytest.mark.parametrize("seed", SEEDS[:3])
@pytest.mark.parametrize("backend", ("scalar", "batch", "columnar"))
def test_shard_executor_agg_matches_single_switch(seed, backend):
    """Sequential sharded execution folds back to the single-switch
    snapshot and report, whatever the per-shard backend."""
    wl = DifferentialWorkload(seed)
    payloads = wl.payloads("zipfian", PACKETS)
    single = wl.new_agg(shards=1)
    for p in payloads:
        single.process_packet(p)
    executor = ShardExecutor(
        _agg_spec(wl), shards=3, processes=1, backend=backend
    )
    result = executor.run(payloads)
    assert not result.used_pool
    assert result.total_packets == len(payloads)
    assert result.snapshot == single.merge(APP_ID)
    assert result.report == single.report(APP_ID)


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_shard_executor_lark_matches_single_switch(seed):
    """Lark partition keeps each user's packets on one shard; the
    merged snapshot equals the single-switch register state."""
    wl = DifferentialWorkload(seed)
    cids = [bytes(c) for c in wl.cids("zipfian", PACKETS)]
    single = wl.new_lark()
    for cid in wl.cids("zipfian", PACKETS):
        single.process_quic_packet(cid)
    executor = ShardExecutor(
        _lark_spec(wl), shards=4, processes=1, backend="columnar"
    )
    result = executor.run(cids)
    stats = single._apps[APP_ID].stats
    assert result.snapshot == stats.snapshot()
    assert result.report == single.stats_report(APP_ID)


def test_shard_executor_pool_matches_sequential():
    """A real spawn pool produces exactly the sequential result; when
    the pool cannot be created the executor falls back transparently."""
    wl = DifferentialWorkload(23)
    payloads = wl.payloads("uniform", PACKETS)
    spec = _agg_spec(wl)
    sequential = ShardExecutor(spec, shards=2, processes=1).run(payloads)
    pooled = ShardExecutor(
        spec, shards=2, processes=2, pool_timeout_s=120.0
    ).run(payloads)
    if pooled.used_pool:
        assert pooled.snapshot == sequential.snapshot
        assert pooled.report == sequential.report
        assert pooled.shard_packets == sequential.shard_packets
    else:
        # Pool unavailable in this environment: the fallback must have
        # recorded why and still produced the sequential result.
        assert pooled.snapshot == sequential.snapshot


def test_shard_executor_falls_back_when_pool_creation_fails(monkeypatch):
    """Any pool-creation failure degrades to in-process execution."""
    import multiprocessing

    def boom(method):
        raise OSError("no process spawning here")

    monkeypatch.setattr(multiprocessing, "get_context", boom)
    wl = DifferentialWorkload(37)
    payloads = wl.payloads("uniform", 120)
    spec = _agg_spec(wl)
    executor = ShardExecutor(spec, shards=2, processes=2)
    result = executor.run(payloads)
    assert not result.used_pool
    assert executor.last_error is not None
    reference = ShardExecutor(spec, shards=2, processes=1).run(payloads)
    assert result.snapshot == reference.snapshot


# -- testbed adaptive backend ------------------------------------------------


def test_adaptive_backend_auto_picks_and_sticks():
    """Auto mode times batch and scalar probes, then locks the winner;
    every item is processed exactly once through a bit-identical path."""
    calls = {"scalar": 0, "batch": 0}

    def scalar_fn(items):
        calls["scalar"] += 1
        return list(items)

    def slow_batch(items):
        calls["batch"] += 1
        for _ in range(20000):
            pass
        return list(items)

    chooser = AdaptiveBackend(scalar_fn, slow_batch, mode="auto")
    out = []
    for _ in range(8):
        out.extend(chooser.run([1, 2, 3]))
    # 4 calibration probes (2 per candidate), then the faster scalar
    # path takes every remaining flush.
    assert chooser.chosen == "scalar"
    assert calls["batch"] == 2
    assert len(out) == 8 * 3
    with pytest.raises(ValueError):
        AdaptiveBackend(scalar_fn, slow_batch, mode="gpu")


def test_adaptive_backend_fixed_modes_dispatch_directly():
    tagged = {
        "scalar": lambda items: ["s"] * len(items),
        "batch": lambda items: ["b"] * len(items),
        "columnar": lambda items: ["c"] * len(items),
    }
    for mode, tag in (("scalar", "s"), ("batch", "b"), ("columnar", "c")):
        chooser = AdaptiveBackend(
            tagged["scalar"], tagged["batch"], tagged["columnar"], mode=mode
        )
        assert chooser.run([0, 0]) == [tag, tag]
        assert chooser.chosen == mode
