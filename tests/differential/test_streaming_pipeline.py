"""Differential proof for the streaming ingest pipeline.

The e2e fast path only counts if it changes nothing observable: a
streamed micro-batch run must equal a one-shot run bit-identically —
aggregation report, merged register arrays, per-payload results —
for every backend, every micro-batch size, with and without reordering
fault injection, and with numpy force-disabled.  A mid-run controller
rekey must stay exact on every tier at once.
"""

import pytest

from repro.core.aggregation import ForwardingMode
from repro.switch.columns import force_numpy
from repro.testbed.pipeline import BACKENDS, StreamingPipeline
from repro.workloads.adcampaign import AdCampaignWorkload
from repro.workloads.crowd import CrowdWorkload

RATE = 3000.0
DURATION_MS = 400.0
PERIOD_MS = 100.0
ONE_SHOT = 1 << 20  # batch larger than any stream: a one-shot run
BATCH_SIZES = (1, 7, 64, ONE_SHOT)


def _run(backend, batch_size, reorder=0.0, mode=ForwardingMode.PERIODICAL,
         workload=None, on_batch=None):
    workload = workload or AdCampaignWorkload(num_users=80, seed=11)
    pipe = StreamingPipeline(
        workload,
        seed=11,
        mode=mode,
        period_ms=PERIOD_MS,
        backend=backend,
        batch_size=batch_size,
        reorder_probability=reorder,
        on_batch=on_batch,
    )
    return pipe, pipe.run(RATE, DURATION_MS, collect_results=True)


def _observables(result):
    return (
        result.report,
        result.register_state,
        result.payloads,
        result.merged,
        result.periods,
        result.agg_results,
    )


@pytest.fixture
def no_numpy():
    force_numpy(False)
    try:
        yield
    finally:
        force_numpy(None)


class TestBatchSizeInvariance:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_micro_batched_equals_one_shot(self, backend):
        _, one_shot = _run(backend, ONE_SHOT)
        assert one_shot.counts_match_reference()
        for batch_size in BATCH_SIZES[:-1]:
            _, streamed = _run(backend, batch_size)
            assert _observables(streamed) == _observables(one_shot), (
                backend, batch_size
            )

    @pytest.mark.parametrize("backend", ("batch", "columnar"))
    def test_micro_batched_equals_one_shot_with_reordering(self, backend):
        _, one_shot = _run(backend, ONE_SHOT, reorder=0.3)
        assert one_shot.counts_match_reference()
        for batch_size in (3, 61):
            _, streamed = _run(backend, batch_size, reorder=0.3)
            assert _observables(streamed) == _observables(one_shot), (
                backend, batch_size
            )


class TestBackendIdentity:
    def _assert_backends_agree(self, mode, workload_factory):
        reference = None
        for backend in BACKENDS:
            _, result = _run(
                backend, 64, mode=mode, workload=workload_factory()
            )
            assert result.counts_match_reference(), backend
            key = (result.report, result.register_state, result.payloads,
                   result.merged, result.periods)
            if reference is None:
                reference = key
            assert key == reference, backend

    def test_periodical_adcampaign(self):
        self._assert_backends_agree(
            ForwardingMode.PERIODICAL,
            lambda: AdCampaignWorkload(num_users=80, seed=11),
        )

    def test_per_packet_adcampaign(self):
        self._assert_backends_agree(
            ForwardingMode.PER_PACKET,
            lambda: AdCampaignWorkload(num_users=80, seed=11),
        )

    def test_periodical_crowd(self):
        self._assert_backends_agree(
            ForwardingMode.PERIODICAL,
            lambda: CrowdWorkload(num_members=90, seed=11),
        )

    def test_fast_backends_match_scalar_without_numpy(self, no_numpy):
        _, scalar = _run("scalar", 64)
        for backend in ("batch", "columnar"):
            _, fast = _run(backend, 64)
            assert fast.report == scalar.report, backend
            assert fast.register_state == scalar.register_state, backend
            assert fast.counts_match_reference(), backend


class TestMidRunRekey:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_rekey_mid_run_stays_exact(self, backend):
        new_key = bytes(range(16))
        fired = []

        def push_rekey(pipe, cols):
            if not fired:
                fired.append(True)
                pipe.rekey(new_key)

        seen = []

        def push_late(pipe, cols):
            seen.append(cols)
            if len(seen) == 3:
                pipe.rekey(new_key)

        for hook in (push_rekey, push_late):
            seen.clear()
            fired.clear()
            pipe, result = _run(backend, 64, on_batch=hook)
            # Every tier rekeyed atomically between micro-batches, so
            # no cookie or aggregation payload was ever decoded under
            # the wrong key.
            assert result.counts_match_reference(), backend
            assert pipe.cache.epoch == 1
            if backend != "scalar":
                # Re-populated after the invalidation.
                assert pipe.cache.stats()["size"] > 0
