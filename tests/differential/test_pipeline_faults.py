"""Fault stages of the streaming pipeline: dead letters, bounded
in-flight prefetch, and period-boundary checkpoints.

Extends the streaming differential suite with the robustness contract:
corrupted aggregation payloads become counted **dead letters** instead
of aborting or silently skewing the fold; the bounded in-flight
prefetch changes stage overlap but not one observable bit; and the
period checkpoints the pipeline takes are exactly the snapshots a
crashed replica would restore.
"""

import pytest

from repro.core.aggregation import ForwardingMode
from repro.obs.registry import MetricsRegistry
from repro.testbed.pipeline import BACKENDS, StreamingPipeline
from repro.workloads.adcampaign import AdCampaignWorkload

RATE = 3000.0
DURATION_MS = 400.0
PERIOD_MS = 100.0
ONE_SHOT = 1 << 20


def _pipe(backend, **kwargs):
    workload = AdCampaignWorkload(num_users=80, seed=11)
    defaults = dict(
        seed=11,
        mode=ForwardingMode.PERIODICAL,
        period_ms=PERIOD_MS,
        backend=backend,
        batch_size=64,
        registry=MetricsRegistry(),
    )
    defaults.update(kwargs)
    return StreamingPipeline(workload, **defaults)


def _observables(result):
    return (
        result.report,
        result.register_state,
        result.payloads,
        result.merged,
        result.periods,
    )


class TestDeadLetters:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_corrupted_payloads_become_dead_letters(self, backend):
        pipe = _pipe(backend, corrupt_probability=0.3)
        result = pipe.run(RATE, DURATION_MS)
        assert pipe.corrupted > 0  # the fault stage actually fired
        assert result.dead_letters > 0
        assert result.dead_letters <= pipe.corrupted
        assert (
            pipe.registry.value("pipeline.dead_letters")
            == result.dead_letters
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_surviving_payloads_still_fold_correctly(self, backend):
        """Dead letters are dropped, never double-counted: the merged
        total is exactly (payloads - dead letters)."""
        result = _pipe(backend, corrupt_probability=0.3).run(RATE, DURATION_MS)
        assert result.merged == result.payloads - result.dead_letters

    def test_corruption_is_batch_shape_invariant(self):
        one_shot = _pipe(
            "batch", corrupt_probability=0.3, batch_size=ONE_SHOT
        ).run(RATE, DURATION_MS)
        for batch_size in (5, 64):
            streamed = _pipe(
                "batch", corrupt_probability=0.3, batch_size=batch_size
            ).run(RATE, DURATION_MS)
            assert _observables(streamed) == _observables(one_shot)
            assert streamed.dead_letters == one_shot.dead_letters

    def test_no_corruption_no_dead_letters(self):
        result = _pipe("batch").run(RATE, DURATION_MS)
        assert result.dead_letters == 0
        assert result.counts_match_reference()


class TestBoundedInflight:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_prefetch_depth_never_changes_results(self, backend):
        reference = _pipe(backend, max_inflight=1).run(RATE, DURATION_MS)
        for depth in (2, 4, 16):
            result = _pipe(backend, max_inflight=depth).run(
                RATE, DURATION_MS
            )
            assert _observables(result) == _observables(reference), depth

    def test_inflight_peak_gauge_reflects_bound(self):
        pipe = _pipe("batch", max_inflight=3, batch_size=16)
        pipe.run(RATE, DURATION_MS)
        peak = pipe.registry.value("pipeline.inflight_peak")
        assert 1 <= peak <= 3

    def test_on_batch_hook_forces_lockstep(self):
        pipe = _pipe(
            "batch", max_inflight=8, on_batch=lambda _p, _c: None
        )
        assert pipe.max_inflight == 1

    def test_invalid_inflight_rejected(self):
        with pytest.raises(ValueError):
            _pipe("batch", max_inflight=0)


class TestPeriodCheckpoints:
    def test_checkpoints_taken_every_n_periods(self):
        pipe = _pipe("batch", checkpoint_every_periods=2)
        result = pipe.run(RATE, DURATION_MS)
        assert result.periods >= 4
        assert result.checkpoints == result.periods // 2
        assert (
            pipe.registry.value("pipeline.checkpoints")
            == result.checkpoints
        )

    def test_last_checkpoint_restores_into_fresh_switches(self):
        """The pipeline's period checkpoint is a real recovery point:
        restoring it into fresh switches reproduces the registers."""
        pipe = _pipe("batch", checkpoint_every_periods=1)
        pipe.run(RATE, DURATION_MS)
        checkpoint = pipe.last_checkpoint
        assert checkpoint is not None
        assert checkpoint["period"] == pipe.periods

        clone = _pipe("batch")
        clone.lark.restore(clone.app_id, checkpoint["lark"])
        clone.agg.restore(clone.app_id, checkpoint["agg"])
        assert (
            clone.lark.checkpoint(clone.app_id) == checkpoint["lark"]
        )
        assert clone.agg.checkpoint(clone.app_id) == checkpoint["agg"]

    def test_zero_means_no_checkpoints(self):
        pipe = _pipe("batch")
        result = pipe.run(RATE, DURATION_MS)
        assert result.checkpoints == 0
        assert pipe.last_checkpoint is None
