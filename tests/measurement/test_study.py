"""The measurement campaign: per-site records and paper-level medians."""

import pytest

from repro.measurement.sites import generate_sites
from repro.measurement.study import (
    ITERATIONS_PER_SITE,
    MeasurementStudy,
    StudyResult,
)


def _result(n=500, seed=7):
    return MeasurementStudy(seed=seed).run(max_sites=n)


class TestCampaign:
    def test_discards_non_residential(self):
        census = generate_sites(non_residential_rate=0.3, seed=2)
        result = MeasurementStudy(census).run(max_sites=300)
        assert result.discarded_sites > 0
        assert len(result.measurements) + result.discarded_sites == 300

    def test_medians_near_paper(self):
        summary = _result().summary()
        paper = {
            "d_ci": 1.4, "d_ce": 6.7, "d_cc": 13.1, "d_cw": 60.1,
            "d_ew": 43.6, "t_edge": 136.6, "t_web": 241.6,
        }
        for key, expected in paper.items():
            assert summary[key] == pytest.approx(expected, rel=0.35), key

    def test_per_provider_delays_present(self):
        result = _result(100)
        for record in result.measurements:
            assert record.d_ce == min(record.d_ce_per_provider.values())

    def test_iterations_constant_matches_paper(self):
        assert ITERATIONS_PER_SITE == 10


class TestStudyResult:
    def test_percentile_accessor(self):
        result = _result(300)
        assert result.percentile("d_ce", 0) <= result.percentile("d_ce", 50)
        assert result.percentile("d_ce", 50) <= result.percentile("d_ce", 100)

    def test_median_equals_percentile_50(self):
        result = _result(301)
        assert result.median("d_ci") == pytest.approx(
            result.percentile("d_ci", 50), rel=0.05
        )

    def test_empirical_curve(self):
        result = _result(200)
        curve = result.empirical_curve("d_ew")
        assert curve.minimum == min(result.metric("d_ew"))
        assert curve.maximum == max(result.metric("d_ew"))

    def test_empty_result_raises(self):
        empty = StudyResult(measurements=[], discarded_sites=0)
        with pytest.raises(ValueError):
            empty.percentile("d_ci", 50)

    def test_deterministic(self):
        a = MeasurementStudy(seed=9).run(max_sites=50).summary()
        b = MeasurementStudy(seed=9).run(max_sites=50).summary()
        assert a == b
