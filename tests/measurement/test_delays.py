"""Delay curves are anchored at the paper's reported medians."""

import pytest

from repro.measurement.delays import (
    MEDIANS,
    all_delay_curves,
    client_to_closest_cloud,
    client_to_edge,
    client_to_isp,
    client_to_web_server,
    edge_to_cloud,
    inter_dc,
)


class TestPaperAnchors:
    @pytest.mark.parametrize(
        "curve_fn,median_key",
        [
            (client_to_isp, "d_CI"),
            (client_to_edge, "d_CE"),
            (client_to_closest_cloud, "d_CC"),
            (client_to_web_server, "d_CW"),
            (edge_to_cloud, "d_EW"),
            (inter_dc, "d_WA"),
        ],
    )
    def test_median_matches_paper(self, curve_fn, median_key):
        assert curve_fn().median == pytest.approx(MEDIANS[median_key])

    def test_ordering_client_side(self):
        """client->ISP < client->edge < client->closest cloud,
        the layering of Figure 5(a)."""
        assert client_to_isp().median < client_to_edge().median
        assert client_to_edge().median < client_to_closest_cloud().median
        assert client_to_closest_cloud().median < client_to_web_server().median

    def test_inter_dc_range(self):
        curve = inter_dc()
        assert curve.minimum == pytest.approx(4.7)
        assert curve.maximum == pytest.approx(206.0)

    def test_tail_inflation_for_testbed_p100(self):
        """The 100th percentile must 'drastically increase' d_CE
        (Figure 6(a)'s worst case)."""
        curve = client_to_edge()
        assert curve.maximum > 20 * curve.median

    def test_all_curves_listing(self):
        curves = all_delay_curves()
        assert set(curves) == {
            "client-isp", "client-edge", "client-cloud-closest",
            "client-web", "edge-cloud", "inter-dc",
        }
        for curve in curves.values():
            assert curve.minimum >= 0

    def test_medians_table_complete(self):
        for key in ("d_CI", "d_CE", "d_EW", "d_WA", "T_trans", "T_E",
                    "T_W", "T_A"):
            assert key in MEDIANS
