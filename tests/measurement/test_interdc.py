"""Inter-DC matrix: paper anchors, symmetry, US subset."""

import pytest

from repro.measurement.interdc import (
    AWS_REGIONS,
    US_REGIONS,
    delay_matrix,
    haversine_km,
    matrix_stats,
    region_delay_ms,
)


class TestHaversine:
    def test_zero_distance(self):
        point = (40.0, -75.0)
        assert haversine_km(point, point) == 0.0

    def test_known_distance(self):
        # London <-> New York is ~5,570 km.
        dist = haversine_km((51.5, -0.1), (40.7, -74.0))
        assert 5400 < dist < 5750

    def test_symmetry(self):
        a, b = (10.0, 20.0), (-30.0, 140.0)
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a))


class TestDelayMatrix:
    def test_paper_anchors(self):
        stats = matrix_stats()
        assert stats["min"] == pytest.approx(4.7)
        assert stats["max"] == pytest.approx(206.0)
        assert stats["median"] == pytest.approx(75.5, abs=2.0)

    def test_us_median_near_paper(self):
        # Paper: US inter-DC median 26.3 ms.
        stats = matrix_stats(US_REGIONS)
        assert 20.0 < stats["median"] < 35.0

    def test_intra_dc(self):
        assert region_delay_ms("us-east-1", "us-east-1") == pytest.approx(0.8)

    def test_symmetry(self):
        assert region_delay_ms("eu-west-1", "ap-south-1") == region_delay_ms(
            "ap-south-1", "eu-west-1"
        )

    def test_unknown_region(self):
        with pytest.raises(KeyError):
            region_delay_ms("us-east-1", "moon-base-1")

    def test_matrix_shape(self):
        matrix = delay_matrix(("us-east-1", "eu-west-1"))
        assert len(matrix) == 4
        assert matrix[("us-east-1", "us-east-1")] == pytest.approx(0.8)

    def test_all_pairs_within_calibrated_range(self):
        names = tuple(sorted(AWS_REGIONS))
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                assert 4.7 <= region_delay_ms(a, b) <= 206.0

    def test_monotone_in_distance(self):
        """Closer region pairs never have larger delays."""
        close = region_delay_ms("eu-west-2", "eu-west-3")  # London-Paris
        far = region_delay_ms("eu-west-2", "ap-southeast-2")
        assert close < far

    def test_stats_needs_regions(self):
        with pytest.raises(ValueError):
            matrix_stats(("us-east-1",))
