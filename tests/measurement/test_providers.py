"""Edge providers: off-net coverage and the provider ordering of
Figure 9(b)."""

import statistics

from repro.measurement.providers import (
    OFFNET_COVERAGE,
    PROVIDERS,
    best_edge_delay,
    provider_curves,
    site_edge_delays,
)
from repro.measurement.sites import generate_sites


def _sites(n=600):
    return generate_sites().sites[:n]


class TestProviderCurves:
    def test_three_providers(self):
        assert {p.name for p in PROVIDERS} == {
            "offnet", "cloudfront", "cloudflare"
        }

    def test_figure9b_ordering(self):
        """Off-net closest, CloudFront beats Cloudflare."""
        curves = provider_curves()
        assert curves["offnet"].median < curves["cloudfront"].median
        assert curves["cloudfront"].median < curves["cloudflare"].median


class TestPerSiteSelection:
    def test_offnet_coverage_fraction(self):
        sites = _sites()
        with_offnet = sum(
            1 for site in sites if "offnet" in site_edge_delays(site)
        )
        fraction = with_offnet / len(sites)
        assert abs(fraction - OFFNET_COVERAGE) < 0.07

    def test_cdns_always_available(self):
        for site in _sites(50):
            delays = site_edge_delays(site)
            assert "cloudfront" in delays and "cloudflare" in delays

    def test_best_is_minimum(self):
        for site in _sites(50):
            assert best_edge_delay(site) == min(site_edge_delays(site).values())

    def test_deterministic_per_site(self):
        site = _sites(1)[0]
        assert site_edge_delays(site) == site_edge_delays(site)

    def test_population_median_near_paper(self):
        """Best-of-providers median should be in the ballpark of the
        paper's 6.7 ms client->edge median."""
        best = [best_edge_delay(site) for site in _sites()]
        assert 3.0 < statistics.median(best) < 10.0

    def test_remote_sites_have_larger_delays(self):
        sites = sorted(_sites(), key=lambda s: s.remoteness)
        near = statistics.median(best_edge_delay(s) for s in sites[:100])
        far = statistics.median(best_edge_delay(s) for s in sites[-100:])
        assert near < far
