"""Quantile curves: interpolation, sampling, empirical construction."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.measurement.quantiles import QuantileCurve


def _curve():
    return QuantileCurve([(0, 1.0), (50, 10.0), (100, 100.0)], name="x")


class TestInterpolation:
    def test_anchor_values(self):
        curve = _curve()
        assert curve.percentile(0) == 1.0
        assert curve.percentile(50) == 10.0
        assert curve.percentile(100) == 100.0
        assert curve.median == 10.0
        assert curve.minimum == 1.0
        assert curve.maximum == 100.0

    def test_linear_between_anchors(self):
        curve = _curve()
        assert curve.percentile(25) == pytest.approx(5.5)
        assert curve.percentile(75) == pytest.approx(55.0)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            _curve().percentile(101)
        with pytest.raises(ValueError):
            _curve().percentile(-1)

    @given(st.floats(min_value=0, max_value=100))
    def test_monotone(self, p):
        curve = _curve()
        assert curve.percentile(p) <= curve.percentile(min(100.0, p + 5))


class TestValidation:
    def test_must_span_0_to_100(self):
        with pytest.raises(ValueError, match="span"):
            QuantileCurve([(10, 1), (100, 2)])

    def test_values_must_be_non_decreasing(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            QuantileCurve([(0, 5), (50, 3), (100, 10)])

    def test_duplicate_percentiles_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            QuantileCurve([(0, 1), (0, 2), (100, 3)])

    def test_needs_two_anchors(self):
        with pytest.raises(ValueError):
            QuantileCurve([(0, 1)])


class TestSampling:
    def test_sample_within_range(self):
        curve = _curve()
        rng = random.Random(1)
        for _ in range(200):
            assert 1.0 <= curve.sample(rng) <= 100.0

    def test_sample_at(self):
        curve = _curve()
        assert curve.sample_at(0.5) == 10.0
        with pytest.raises(ValueError):
            curve.sample_at(1.5)

    def test_sample_median_near_curve_median(self):
        curve = _curve()
        rng = random.Random(2)
        samples = sorted(curve.sample(rng) for _ in range(2001))
        assert abs(samples[1000] - curve.median) < 2.0


class TestSamplingDeterminism:
    """The bugfix regression: ``sample()`` with no rng must never fall
    back to the process-global ``random`` module."""

    def test_no_rng_sampling_is_reproducible(self):
        first, second = _curve(), _curve()
        assert [first.sample() for _ in range(10)] == \
            [second.sample() for _ in range(10)]

    def test_no_rng_sampling_leaves_global_random_untouched(self):
        random.seed(123)
        expected = random.random()
        random.seed(123)
        for _ in range(5):
            _curve().sample()
            _curve()
        assert random.random() == expected

    def test_default_streams_derive_from_curve_name(self):
        anchors = [(0, 1.0), (50, 10.0), (100, 100.0)]
        a = QuantileCurve(anchors, name="a")
        b = QuantileCurve(anchors, name="b")
        assert [a.sample() for _ in range(5)] != \
            [b.sample() for _ in range(5)]

    def test_explicit_rng_still_honoured(self):
        draws = [_curve().sample(random.Random(1)) for _ in range(2)]
        assert draws[0] == draws[1]


class TestCdfPoints:
    def test_shape(self):
        points = _curve().cdf_points(steps=10)
        assert len(points) == 11
        assert points[0] == (1.0, 0.0)
        assert points[-1] == (100.0, 1.0)
        values = [v for v, _f in points]
        assert values == sorted(values)

    def test_invalid_steps(self):
        with pytest.raises(ValueError):
            _curve().cdf_points(1)


class TestFromSamples:
    def test_reconstructs_order_statistics(self):
        samples = [5.0, 1.0, 3.0]
        curve = QuantileCurve.from_samples(samples)
        assert curve.minimum == 1.0
        assert curve.maximum == 5.0
        assert curve.median == 3.0

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            QuantileCurve.from_samples([1.0])

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=2,
                    max_size=50))
    @settings(max_examples=30)
    def test_range_preserved(self, samples):
        curve = QuantileCurve.from_samples(samples)
        assert curve.minimum == min(samples)
        assert curve.maximum == max(samples)
