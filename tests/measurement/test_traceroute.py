"""Traceroute simulation and the ISP-hop derivation (Appendix D.1)."""

import random

import pytest

from repro.measurement.traceroute import (
    Hop,
    MAX_PROBED_HOPS,
    Traceroute,
    first_public_hop,
    is_private_ip,
    simulate_traceroute,
)


class TestPrivateIpDetection:
    @pytest.mark.parametrize(
        "address", ["10.0.0.1", "192.168.1.1", "172.16.0.1", "172.31.255.1",
                    "100.64.0.1", "169.254.1.1"]
    )
    def test_private(self, address):
        assert is_private_ip(address)

    @pytest.mark.parametrize(
        "address", ["8.8.8.8", "172.32.0.1", "172.15.0.1", "94.23.1.1",
                    "1.1.1.1"]
    )
    def test_public(self, address):
        assert not is_private_ip(address)

    def test_malformed_172(self):
        assert not is_private_ip("172.notanumber.0.1")


class TestFirstPublicHop:
    def test_finds_first_public(self):
        hops = [
            Hop(1, "10.8.0.1", 40.0),
            Hop(2, "192.168.1.1", 40.5),
            Hop(3, "94.23.0.1", 44.0),
            Hop(4, "8.8.8.8", 50.0),
        ]
        assert first_public_hop(hops).address == "94.23.0.1"

    def test_silent_hops_skipped(self):
        hops = [Hop(1, None, None), Hop(2, "94.23.0.1", 44.0)]
        assert first_public_hop(hops).ttl == 2

    def test_respects_probe_budget(self):
        hops = [Hop(i, "10.0.0.%d" % i, 1.0) for i in range(1, 12)]
        hops.append(Hop(12, "94.23.0.1", 44.0))  # beyond budget
        assert first_public_hop(hops) is None

    def test_empty(self):
        assert first_public_hop([]) is None


class TestIspDelayDerivation:
    def test_subtracts_tunnel_and_halves(self):
        trace = Traceroute(
            hops=[
                Hop(1, "10.8.0.1", 40.0),
                Hop(2, "94.23.0.1", 44.0),
            ]
        )
        # (44 - 40) / 2 = 2 ms one-way.
        assert trace.isp_delay_ms() == pytest.approx(2.0)

    def test_no_public_hop_gives_none(self):
        trace = Traceroute(hops=[Hop(1, "10.8.0.1", 40.0)])
        assert trace.isp_delay_ms() is None

    def test_floor_at_small_positive(self):
        trace = Traceroute(
            hops=[Hop(1, "10.8.0.1", 40.0), Hop(2, "94.23.0.1", 39.9)]
        )
        assert trace.isp_delay_ms() == pytest.approx(0.05)


class TestSimulation:
    def test_residential_recovers_d_ci(self):
        rng = random.Random(3)
        trace = simulate_traceroute(
            residential=True, d_ci_ms=1.4, tunnel_rtt_ms=40.0, rng=rng
        )
        assert trace.isp_delay_ms() == pytest.approx(1.4, abs=0.01)

    def test_residential_first_hop_is_proxy(self):
        trace = simulate_traceroute(True, 1.4, rng=random.Random(4))
        assert trace.hops[0].address == "10.8.0.1"
        assert is_private_ip(trace.hops[0].address)

    def test_non_residential_discarded(self):
        for seed in range(10):
            trace = simulate_traceroute(
                residential=False, d_ci_ms=1.4, rng=random.Random(seed)
            )
            assert trace.isp_delay_ms() is None

    def test_hop_count_bounded(self):
        trace = simulate_traceroute(False, 1.0, rng=random.Random(5))
        assert len(trace.hops) <= MAX_PROBED_HOPS + 2
