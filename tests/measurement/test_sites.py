"""Site census: totals, country ranking, residential filtering."""

import pytest

from repro.measurement.sites import (
    COUNTRY_CONTINENTS,
    TOTAL_COUNTRIES,
    TOTAL_SITES,
    generate_sites,
)


class TestCensusShape:
    def test_totals_match_paper(self):
        census = generate_sites()
        assert len(census.sites) == TOTAL_SITES == 2253
        assert census.countries() == TOTAL_COUNTRIES == 87

    def test_us_uk_de_lead(self):
        top = generate_sites().top_countries(3)
        assert [country for country, _n in top] == ["US", "GB", "DE"]

    def test_every_country_has_a_site(self):
        counts = generate_sites().per_country()
        assert all(n >= 1 for n in counts.values())

    def test_zipf_like_decay(self):
        top = generate_sites().top_countries(10)
        counts = [n for _c, n in top]
        assert counts == sorted(counts, reverse=True)
        assert counts[0] > 3 * counts[9]

    def test_named_countries_have_fixed_continents(self):
        census = generate_sites()
        by_country = {}
        for site in census.sites:
            by_country.setdefault(site.country, site.continent)
        for country, (continent, _region) in COUNTRY_CONTINENTS.items():
            assert by_country[country] == continent

    def test_remoteness_in_unit_interval(self):
        assert all(
            0.0 <= site.remoteness <= 1.0
            for site in generate_sites().sites
        )


class TestResidentialFilter:
    def test_some_sites_non_residential(self):
        census = generate_sites(non_residential_rate=0.2, seed=3)
        residential = census.residential_sites()
        assert 0 < len(residential) < len(census.sites)

    def test_zero_rate(self):
        census = generate_sites(non_residential_rate=0.0)
        assert len(census.residential_sites()) == len(census.sites)


class TestDeterminism:
    def test_same_seed_same_census(self):
        a = generate_sites(seed=5)
        b = generate_sites(seed=5)
        assert a.per_country() == b.per_country()
        assert [s.remoteness for s in a.sites[:20]] == [
            s.remoteness for s in b.sites[:20]
        ]

    def test_custom_sizes(self):
        census = generate_sites(total_sites=200, total_countries=10)
        assert len(census.sites) == 200
        assert census.countries() == 10

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            generate_sites(total_sites=5, total_countries=10)
