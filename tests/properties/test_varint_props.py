"""Property tests for QUIC varints (RFC 9000 section 16).

Pure stdlib ``random``: seeded generators sweep the encoding widths,
and explicit cases pin every boundary where the width changes.
"""

import random

import pytest

from repro.quic.varint import (
    MAX_VARINT,
    decode_varint,
    encode_varint,
    varint_length,
)

# Every width-transition boundary: (value, expected encoded length).
BOUNDARIES = [
    (0, 1),
    ((1 << 6) - 1, 1),
    (1 << 6, 2),
    ((1 << 14) - 1, 2),
    (1 << 14, 4),
    ((1 << 30) - 1, 4),
    (1 << 30, 8),
    (MAX_VARINT, 8),
]


@pytest.mark.parametrize("value,length", BOUNDARIES)
def test_boundary_roundtrip_and_length(value, length):
    encoded = encode_varint(value)
    assert len(encoded) == length == varint_length(value)
    decoded, end = decode_varint(encoded)
    assert decoded == value
    assert end == length


@pytest.mark.parametrize("value", [-1, MAX_VARINT + 1, 1 << 62, 1 << 70])
def test_out_of_range_rejected(value):
    with pytest.raises(ValueError):
        varint_length(value)
    with pytest.raises(ValueError):
        encode_varint(value)


@pytest.mark.parametrize("seed", range(5))
def test_random_roundtrip(seed):
    rng = random.Random(seed)
    for _ in range(500):
        # Log-uniform over the full 62-bit range so every width is hit.
        value = rng.randrange(1 << rng.randrange(63)) if rng.random() < 0.9 \
            else rng.choice([v for v, _ in BOUNDARIES])
        encoded = encode_varint(value)
        assert len(encoded) == varint_length(value)
        decoded, end = decode_varint(encoded)
        assert (decoded, end) == (value, len(encoded))


@pytest.mark.parametrize("seed", range(3))
def test_concatenated_stream_decodes_sequentially(seed):
    rng = random.Random(100 + seed)
    values = [rng.randrange(1 << rng.randrange(63)) for _ in range(64)]
    blob = b"".join(encode_varint(v) for v in values)
    offset = 0
    for expected in values:
        value, offset = decode_varint(blob, offset)
        assert value == expected
    assert offset == len(blob)


@pytest.mark.parametrize("seed", range(3))
def test_truncation_always_detected(seed):
    rng = random.Random(200 + seed)
    for _ in range(100):
        value = rng.randrange(1 << rng.randrange(63))
        encoded = encode_varint(value)
        for cut in range(len(encoded)):
            with pytest.raises(ValueError):
                decode_varint(encoded[:cut])
