"""Properties of the sampled quantile sketch (SQUID-style bottom-k).

Two families:

* **Error bounds** — the DKW sizing must hold up empirically: for any
  quantile, the exact rank of the sketch's answer stays within the
  configured epsilon (plus a small allowance for the delta tail) of
  the requested rank, across seeds and skews.
* **Merge algebra** — the sample is a pure function of the update
  multiset, so ``merge(feed(A), feed(B))`` must be *state-identical*
  to ``feed(A ++ B)`` for any split and any interleaving, and
  ``absorb(snapshot)`` must equal ``merge``.  This is what lets the
  sketch ride the AggSwitch shard folds and epoch checkpoints.
"""

import random

import pytest

from repro.switch.columns import force_numpy
from repro.switch.quantile_sketch import (
    SampledQuantileSketch,
    capacity_for,
    epsilon_for,
)

QUANTILES = (0.1, 0.25, 0.5, 0.75, 0.9, 0.99)


def _zipf_counts(rng, n_keys, updates):
    """Per-key totals drawn from a heavy-tailed engagement profile."""
    counts = {}
    for _ in range(updates):
        key = min(int(rng.paretovariate(1.2)) - 1, n_keys - 1)
        counts[key] = counts.get(key, 0) + 1
    return counts


def _key(i):
    return b"user-%08d" % i


def _feed(sketch, updates):
    for key, delta in updates:
        sketch.add(key, delta)


def _exact_rank_bracket(values, answer):
    """(P(X < answer), P(X <= answer)) over the exact distribution."""
    n = len(values)
    below = sum(1 for v in values if v < answer)
    at_or_below = sum(1 for v in values if v <= answer)
    return below / n, at_or_below / n


class TestErrorBound:
    @pytest.mark.parametrize("seed", [1, 7, 23, 101])
    def test_rank_error_within_epsilon(self, seed):
        epsilon = 0.05
        rng = random.Random(seed)
        counts = _zipf_counts(rng, n_keys=4000, updates=20000)
        sketch = SampledQuantileSketch(epsilon=epsilon, delta=0.01)
        updates = [(_key(k), c) for k, c in counts.items()]
        rng.shuffle(updates)
        # Split each key's total into several interleaved updates so
        # admission happens mid-stream, not on final totals.
        pieces = []
        for key, total in updates:
            while total > 1:
                half = total // 2
                pieces.append((key, half))
                total -= half
            if total:
                pieces.append((key, total))
        rng.shuffle(pieces)
        _feed(sketch, pieces)
        exact = list(counts.values())
        # delta=0.01 per sketch; the seeds are fixed, so a small slack
        # above epsilon keeps the test deterministic-by-construction
        # without weakening the bound being exercised.
        slack = epsilon + 0.02
        for q in QUANTILES:
            answer = sketch.quantile(q)
            assert answer is not None
            lo, hi = _exact_rank_bracket(exact, answer)
            assert lo - slack <= q <= hi + slack, (
                "q=%.2f answer=%d bracket=(%.3f, %.3f)" % (q, answer, lo, hi)
            )

    def test_exact_below_capacity(self):
        # With fewer distinct keys than capacity nothing is sampled
        # away: quantiles are exact.
        sketch = SampledQuantileSketch(capacity=256)
        values = {_key(i): (i * 13) % 97 + 1 for i in range(200)}
        for key, v in values.items():
            sketch.add(key, v)
        ordered = sorted(values.values())
        assert sketch.sampled_values() == ordered
        assert sketch.distinct_estimate() == 200
        assert sketch.quantile(0.5) == ordered[len(ordered) // 2 - 1 + len(ordered) % 2]

    @pytest.mark.parametrize("seed", [3, 17])
    def test_distinct_estimate_within_bound(self, seed):
        rng = random.Random(seed)
        n_keys = 5000
        sketch = SampledQuantileSketch(capacity=1024)
        keys = [_key(i) for i in range(n_keys)]
        rng.shuffle(keys)
        for key in keys:
            sketch.add(key)
        estimate = sketch.distinct_estimate()
        # KMV relative error ~ 1/sqrt(k-1) ≈ 3.1%; allow 4 sigma.
        assert abs(estimate - n_keys) / n_keys < 0.13

    def test_capacity_for_matches_dkw(self):
        assert capacity_for(0.05, 0.01) == 1060
        assert capacity_for(0.1, 0.01) == 265
        # Round-trip: the epsilon of the sized capacity never exceeds
        # the requested epsilon.
        for eps in (0.01, 0.05, 0.1, 0.2):
            assert epsilon_for(capacity_for(eps, 0.01), 0.01) <= eps + 1e-12


def _random_stream(rng, n_keys, updates):
    return [
        (_key(rng.randrange(n_keys)), rng.randrange(1, 5))
        for _ in range(updates)
    ]


def _state(sketch):
    snap = sketch.snapshot()
    # Sample state only: items/dropped are order-dependent diagnostics.
    return snap["entries"]


class TestMergeAlgebra:
    @pytest.mark.parametrize("seed", [1, 9, 42])
    @pytest.mark.parametrize("split", [0.1, 0.5, 0.9])
    def test_merge_equals_concatenated_stream(self, seed, split):
        rng = random.Random(seed)
        stream = _random_stream(rng, n_keys=900, updates=4000)
        cut = int(len(stream) * split)
        a = SampledQuantileSketch(capacity=128)
        b = SampledQuantileSketch(capacity=128)
        union = SampledQuantileSketch(capacity=128)
        _feed(a, stream[:cut])
        _feed(b, stream[cut:])
        _feed(union, stream)
        a.merge(b)
        assert _state(a) == _state(union)
        assert a.quantiles(QUANTILES) == union.quantiles(QUANTILES)
        assert a.distinct_estimate() == union.distinct_estimate()

    @pytest.mark.parametrize("seed", [5, 33])
    def test_merge_order_insensitive(self, seed):
        rng = random.Random(seed)
        stream = _random_stream(rng, n_keys=600, updates=3000)
        thirds = [stream[0::3], stream[1::3], stream[2::3]]
        forward = SampledQuantileSketch(capacity=96)
        backward = SampledQuantileSketch(capacity=96)
        parts = []
        for part in thirds:
            s = SampledQuantileSketch(capacity=96)
            _feed(s, part)
            parts.append(s)
        _feed(forward, stream)
        for s in parts:
            backward.merge(s)
        assert _state(backward) == _state(forward)

    @pytest.mark.parametrize("seed", [2, 71])
    def test_absorb_snapshot_equals_merge(self, seed):
        rng = random.Random(seed)
        stream = _random_stream(rng, n_keys=500, updates=2500)
        a1 = SampledQuantileSketch(capacity=64)
        a2 = SampledQuantileSketch(capacity=64)
        b = SampledQuantileSketch(capacity=64)
        _feed(a1, stream[:1200])
        _feed(a2, stream[:1200])
        _feed(b, stream[1200:])
        a1.merge(b)
        a2.absorb(b.snapshot())
        assert _state(a1) == _state(a2)

    def test_merge_rejects_mismatched_parameters(self):
        a = SampledQuantileSketch(capacity=32)
        with pytest.raises(ValueError):
            a.merge(SampledQuantileSketch(capacity=64))
        with pytest.raises(ValueError):
            a.merge(SampledQuantileSketch(capacity=32, seed=0xBEEF))


class TestSnapshotRoundTrip:
    @pytest.mark.parametrize("seed", [4, 19])
    def test_snapshot_roundtrip(self, seed):
        rng = random.Random(seed)
        sketch = SampledQuantileSketch(capacity=80)
        _feed(sketch, _random_stream(rng, n_keys=400, updates=2000))
        snap = sketch.snapshot()
        fresh = SampledQuantileSketch(capacity=80)
        fresh.load_snapshot(snap)
        assert fresh.snapshot() == snap
        assert fresh.quantiles(QUANTILES) == sketch.quantiles(QUANTILES)
        # The restored sketch keeps evolving identically.
        tail = _random_stream(rng, n_keys=400, updates=500)
        _feed(sketch, tail)
        _feed(fresh, tail)
        assert _state(fresh) == _state(sketch)

    def test_load_rejects_wrong_capacity(self):
        sketch = SampledQuantileSketch(capacity=16)
        donor = SampledQuantileSketch(capacity=32)
        with pytest.raises(ValueError):
            sketch.load_snapshot(donor.snapshot())


class TestBackendParity:
    @pytest.mark.parametrize("numpy_on", [True, False])
    def test_add_many_matches_scalar_adds(self, numpy_on):
        force_numpy(numpy_on if numpy_on else False)
        try:
            rng = random.Random(13)
            stream = _random_stream(rng, n_keys=700, updates=3000)
            scalar = SampledQuantileSketch(capacity=128)
            batched = SampledQuantileSketch(capacity=128)
            _feed(scalar, stream)
            for lo in range(0, len(stream), 257):
                chunk = stream[lo:lo + 257]
                batched.add_many(
                    [k for k, _ in chunk], [d for _, d in chunk]
                )
            assert batched.snapshot() == scalar.snapshot()
        finally:
            force_numpy(None)

    def test_numpy_and_fallback_priorities_agree(self):
        keys = [_key(i) for i in range(64)]
        force_numpy(True)
        try:
            on = SampledQuantileSketch(capacity=8)._priorities_many(keys)
        finally:
            force_numpy(None)
        force_numpy(False)
        try:
            off = SampledQuantileSketch(capacity=8)._priorities_many(keys)
        finally:
            force_numpy(None)
        assert list(on) == list(off)
