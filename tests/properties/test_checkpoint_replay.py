"""Checkpoint -> restore -> replay-tail == uninterrupted, for every
register kind.

The supervised shard runtime's recovery path is exactly this identity:
a crash restores the last epoch checkpoint into a fresh switch replica
and replays only the tail.  Here it is proven at every layer that
holds fold state:

* the switch statistics registers — additive counters
  (count-by-class, sum, avg) and the non-additive min/max folds —
  via ``LarkSwitch.checkpoint``/``restore`` and the AggSwitch bank
  equivalents;
* the Bloom filter (period dedup) via ``snapshot``/``load_snapshot``;
* the count-min sketch via ``snapshot``/``load_snapshot``.

Each case runs the same seeded stream uninterrupted and interrupted at
several cut points, across three seeds, and requires bit-identical end
state — not approximately equal, identical.
"""

import random

import pytest

from repro.core.aggregation import ForwardingMode
from repro.core.larkswitch import LarkSwitch
from repro.core.schema import CookieSchema, Feature
from repro.core.stats import StatKind, StatSpec
from repro.core.transport_cookie import TransportCookieCodec
from repro.obs.registry import MetricsRegistry
from repro.switch.bloom import BloomFilter
from repro.switch.sketch import CountMinSketch

SEEDS = (2, 29, 83)
APP_ID = 0x44

SCHEMA = CookieSchema(
    "checkpoint-props",
    (
        Feature.categorical("bucket", ("a", "b", "c", "d")),
        Feature.number("value", 0, 200),
    ),
)

# One spec per register fold kind the stats layer implements.
SPECS = (
    StatSpec("count_by_bucket", StatKind.COUNT_BY_CLASS, "bucket"),
    StatSpec("sum_value", StatKind.SUM, "value"),
    StatSpec("min_value", StatKind.MIN, "value"),
    StatSpec("max_value", StatKind.MAX, "value"),
    StatSpec("avg_value", StatKind.AVG, "value", group_by="bucket"),
)


def _key(seed):
    rng = random.Random(seed * 7919 + 5)
    return bytes(rng.getrandbits(8) for _ in range(16))


def _cids(seed, n=240):
    codec = TransportCookieCodec(
        APP_ID, SCHEMA, _key(seed), random.Random(seed + 3)
    )
    rng = random.Random(seed + 4)
    return [
        codec.encode(
            {"bucket": rng.choice("abcd"), "value": rng.randrange(201)}
        )
        for _ in range(n)
    ]


def _lark(seed):
    lark = LarkSwitch(
        "chk-lark",
        rng=random.Random(seed + 1),
        registry=MetricsRegistry(),
    )
    lark.register_application(
        APP_ID, SCHEMA, _key(seed), list(SPECS),
        mode=ForwardingMode.PERIODICAL, period_ms=1000.0,
    )
    return lark


class TestStatsRegisterReplay:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("cut", [1, 97, 239])
    def test_restore_and_replay_tail_is_bit_identical(self, seed, cut):
        cids = _cids(seed)

        uninterrupted = _lark(seed)
        for cid in cids:
            uninterrupted.process_quic_packet(cid)

        # prefix on one replica, checkpoint at the cut...
        first = _lark(seed)
        for cid in cids[:cut]:
            first.process_quic_packet(cid)
        checkpoint = first.checkpoint(APP_ID)

        # ...restore into a *fresh* replica, replay only the tail
        recovered = _lark(seed)
        recovered.restore(APP_ID, checkpoint)
        for cid in cids[cut:]:
            recovered.process_quic_packet(cid)

        assert (
            recovered.checkpoint(APP_ID)
            == uninterrupted.checkpoint(APP_ID)
        )
        assert (
            recovered.stats_report(APP_ID)
            == uninterrupted.stats_report(APP_ID)
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_checkpoint_roundtrip_without_replay(self, seed):
        lark = _lark(seed)
        for cid in _cids(seed, n=100):
            lark.process_quic_packet(cid)
        checkpoint = lark.checkpoint(APP_ID)
        clone = _lark(seed)
        clone.restore(APP_ID, checkpoint)
        assert clone.checkpoint(APP_ID) == checkpoint
        assert clone.stats_report(APP_ID) == lark.stats_report(APP_ID)

    def test_checkpoint_of_unknown_app_raises(self):
        with pytest.raises(KeyError):
            _lark(0).checkpoint(0x99)


class TestBloomReplay:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_restore_and_replay_tail_matches(self, seed):
        rng = random.Random(seed)
        keys = [
            rng.getrandbits(64).to_bytes(8, "big") for _ in range(300)
        ]
        cut = rng.randrange(1, len(keys))

        uninterrupted = BloomFilter(size_bits=2048, num_hashes=3)
        answers = [uninterrupted.add(k) for k in keys]

        first = BloomFilter(size_bits=2048, num_hashes=3)
        for k in keys[:cut]:
            first.add(k)
        snapshot = first.snapshot()

        recovered = BloomFilter(size_bits=2048, num_hashes=3)
        recovered.load_snapshot(snapshot)
        tail_answers = [recovered.add(k) for k in keys[cut:]]

        assert recovered.snapshot() == uninterrupted.snapshot()
        assert recovered.items_added == uninterrupted.items_added
        # membership answers on the tail are also unchanged
        assert tail_answers == answers[cut:]

    def test_shape_mismatch_rejected(self):
        small = BloomFilter(size_bits=64, num_hashes=2)
        big = BloomFilter(size_bits=128, num_hashes=2)
        with pytest.raises(ValueError):
            big.load_snapshot(small.snapshot())


class TestSketchReplay:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_restore_and_replay_tail_matches(self, seed):
        rng = random.Random(seed + 100)
        keys = [
            rng.getrandbits(32).to_bytes(4, "big") for _ in range(400)
        ]
        cut = rng.randrange(1, len(keys))

        uninterrupted = CountMinSketch(width=128, depth=3)
        for k in keys:
            uninterrupted.add(k)

        first = CountMinSketch(width=128, depth=3)
        for k in keys[:cut]:
            first.add(k)
        rows = first.snapshot()

        recovered = CountMinSketch(width=128, depth=3)
        recovered.load_snapshot(rows, total=first.total)
        for k in keys[cut:]:
            recovered.add(k)

        assert recovered.snapshot() == uninterrupted.snapshot()
        assert recovered.total == uninterrupted.total
        for k in keys[:20]:
            assert recovered.estimate(k) == uninterrupted.estimate(k)

    def test_total_recovered_from_first_row_when_omitted(self):
        sketch = CountMinSketch(width=64, depth=2)
        for i in range(50):
            sketch.add(b"%d" % i)
        clone = CountMinSketch(width=64, depth=2)
        clone.load_snapshot(sketch.snapshot())
        assert clone.total == sketch.total

    def test_shape_mismatch_rejected(self):
        sketch = CountMinSketch(width=64, depth=2)
        other = CountMinSketch(width=32, depth=2)
        with pytest.raises(ValueError):
            sketch.load_snapshot(other.snapshot())
