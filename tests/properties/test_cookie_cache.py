"""Properties of the client-side cookie encode cache.

The cache is only admissible because the Snatch CID policy preserves
bytes [1, 18) across connections — so a cached encrypted block must be
indistinguishable (to every decoder) from a freshly encoded one, and a
controller rekey or version push must atomically drop every block
minted under the superseded parameters.
"""

import random

import pytest

from repro.core.controller import SnatchController
from repro.core.cookie_cache import CookieEncodeCache
from repro.core.schema import Feature
from repro.core.stats import StatKind, StatSpec
from repro.core.transport_cookie import TransportCookieCodec
from repro.switch.columns import force_numpy

APP_ID = 0x5C
KEY = bytes(range(16))

REGIONS = ("north", "south", "east", "west")
INTERESTS = ("music", "sport", "food")


def _schema():
    from repro.core.schema import CookieSchema

    return CookieSchema(
        "crowd",
        (
            Feature.categorical("region", REGIONS),
            Feature.categorical("interest", INTERESTS),
            Feature.number("dwell", 0, 240),
        ),
    )


def _values(i):
    return {
        "region": REGIONS[i % len(REGIONS)],
        "interest": INTERESTS[i % len(INTERESTS)],
        "dwell": (i * 37) % 241,
    }


def _cache(capacity=4096, seed=3):
    codec = TransportCookieCodec(APP_ID, _schema(), KEY, random.Random(seed))
    return CookieEncodeCache(codec, capacity=capacity)


@pytest.fixture
def no_numpy():
    force_numpy(False)
    try:
        yield
    finally:
        force_numpy(None)


class TestDecodeIdentity:
    def test_cached_and_fresh_cookies_decode_identically(self):
        cache = _cache()
        decoder = TransportCookieCodec(
            APP_ID, _schema(), KEY, random.Random(99)
        )
        miss = cache.encode(7, lambda: _values(7))
        hit = cache.encode(7, lambda: _values(7))
        fresh = decoder.encode(_values(7))
        assert cache.hits == 1 and cache.misses == 1
        # The semantic region is byte-identical between hit and miss...
        assert bytes(miss)[1:18] == bytes(hit)[1:18]
        # ...and all three decode to the same feature vector.
        for cid in (miss, hit, fresh):
            assert decoder.decode(cid).values == _values(7)

    def test_batch_decodes_to_expected_values(self):
        cache = _cache()
        decoder = TransportCookieCodec(
            APP_ID, _schema(), KEY, random.Random(98)
        )
        keys = [i % 9 for i in range(120)]
        cids = cache.encode_batch(keys, lambda i: _values(keys[i]))
        for key, cid in zip(keys, cids):
            assert decoder.decode(cid).values == _values(key)
        assert cache.misses == 9
        # All 111 repeats land in the same batch as their first
        # occurrence: they ride the queued AES pass, and are counted
        # apart from true warm-cache hits.
        assert cache.hits == 0
        assert cache.queued_hits == 120 - 9


class TestEntryPointEquivalence:
    def _assert_batch_equals_columns(self):
        keys = [i % 17 for i in range(150)]
        cache_a = _cache(seed=7)
        cache_b = _cache(seed=7)
        cids = cache_a.encode_batch(keys, lambda i: _values(keys[i]))
        cols = cache_b.encode_columns(keys, lambda i: _values(keys[i]))
        assert [bytes(c) for c in cids] == list(cols.raw)
        assert cache_a.stats() == cache_b.stats()

    def test_batch_equals_columns_bytes(self):
        self._assert_batch_equals_columns()

    def test_batch_equals_columns_bytes_no_numpy(self, no_numpy):
        self._assert_batch_equals_columns()

    def test_warm_batch_equals_sequential_encode(self):
        cache = _cache(seed=11)
        keys = [i % 6 for i in range(6)]
        cache.encode_batch(keys, lambda i: _values(keys[i]))  # warm
        state = cache.codec.rng.getstate()
        batched = cache.encode_batch(keys, lambda i: _values(keys[i]))
        cache.codec.rng.setstate(state)
        sequential = [
            cache.encode(k, lambda k=k: _values(k)) for k in keys
        ]
        assert [bytes(a) for a in batched] == [bytes(b) for b in sequential]


class TestBoundsAndInvalidation:
    def test_lru_bound_and_evictions(self):
        cache = _cache(capacity=8)
        keys = list(range(50))
        cache.encode_batch(keys, lambda i: _values(keys[i]))
        assert len(cache) <= 8
        assert cache.evictions == 50 - 8
        # The most recently stored keys survived.
        cache.encode(49, lambda: _values(49))
        assert cache.hits == 1

    def test_rekey_drops_every_block_and_reencodes(self):
        cache = _cache()
        cache.encode_batch(list(range(10)), lambda i: _values(i))
        assert len(cache) == 10 and cache.misses == 10
        new_key = bytes(reversed(range(16)))
        cache.rekey(new_key)
        assert len(cache) == 0
        assert cache.epoch == 1 and cache.invalidations == 1
        # Same user key after the rekey: a miss (no stale serve), and
        # the fresh cookie decodes under the *new* key.
        cid = cache.encode(3, lambda: _values(3))
        assert cache.misses == 11
        decoder = TransportCookieCodec(
            APP_ID, _schema(), new_key, random.Random(1)
        )
        assert decoder.decode(cid).values == _values(3)

    def test_rekey_preserves_rng_stream(self):
        cache = _cache(seed=13)
        before = cache.codec.rng
        cache.rekey(bytes(16))
        assert cache.codec.rng is before


class TestControllerClientHooks:
    def _controller_and_cache(self):
        controller = SnatchController(seed=5)
        handle = controller.add_application(
            "crowd",
            list(_schema().features),
            [StatSpec("interest_by_region", StatKind.COUNT_BY_CLASS,
                      "interest", group_by="region")],
        )
        codec = TransportCookieCodec(
            handle.app_id, handle.transport_schema, handle.key,
            random.Random(3),
        )
        cache = CookieEncodeCache(codec)
        controller.attach_client(cache)
        return controller, cache, handle

    def test_version_push_invalidates_and_adopts_parameters(self):
        controller, cache, handle = self._controller_and_cache()
        cache.encode_batch(list(range(12)), lambda i: _values(i))
        assert len(cache) == 12
        new_handle = controller.update_application("crowd")
        assert cache.epoch == 1 and len(cache) == 0
        assert cache.app_id == new_handle.app_id
        # Cookies minted after the push decode under the new version.
        cid = cache.encode(0, lambda: _values(0))
        decoder = TransportCookieCodec(
            new_handle.app_id, new_handle.transport_schema,
            new_handle.key, random.Random(1),
        )
        assert decoder.decode(cid).values == _values(0)

    def test_revoke_invalidates(self):
        controller, cache, handle = self._controller_and_cache()
        cache.encode(0, lambda: _values(0))
        controller.remove_application("crowd")
        assert cache.epoch == 1 and len(cache) == 0

    def test_unrelated_push_is_ignored(self):
        controller, cache, handle = self._controller_and_cache()
        cache.encode(0, lambda: _values(0))
        controller.add_application(
            "other",
            [Feature.categorical("tier", ("a", "b"))],
            [StatSpec("sessions", StatKind.COUNT_BY_CLASS, "tier")],
        )
        assert cache.epoch == 0 and len(cache) == 1


class TestAdmissionPolicy:
    def _zipf_keys(self, seed, n_keys, accesses, alpha=1.1):
        rng = random.Random(seed)
        return [
            min(int(rng.paretovariate(alpha)) - 1, n_keys - 1)
            for _ in range(accesses)
        ]

    def _hit_rate(self, cache, keys, batch=64):
        for lo in range(0, len(keys), batch):
            chunk = keys[lo:lo + batch]
            cache.encode_batch(chunk, lambda i: _values(chunk[i]))
        stats = cache.stats()
        return stats["hits"] / (stats["hits"] + stats["misses"])

    def test_invalid_policy_rejected(self):
        codec = TransportCookieCodec(
            APP_ID, _schema(), KEY, random.Random(1)
        )
        with pytest.raises(ValueError):
            CookieEncodeCache(codec, admission="lfu")

    def test_tinylfu_beats_lru_on_zipfian_keys(self):
        """ROADMAP item 1: plain LRU churns the whole cache through
        the zipfian tail; frequency-aware admission must keep the
        popular head resident.  alpha is low so the working set dwarfs
        the capacity — the regime where LRU degrades."""
        keys = self._zipf_keys(
            seed=17, n_keys=20000, accesses=8000, alpha=0.2
        )
        codec_a = TransportCookieCodec(
            APP_ID, _schema(), KEY, random.Random(5)
        )
        codec_b = TransportCookieCodec(
            APP_ID, _schema(), KEY, random.Random(5)
        )
        lru = CookieEncodeCache(codec_a, capacity=64)
        tinylfu = CookieEncodeCache(codec_b, capacity=64, admission="tinylfu")
        lru_rate = self._hit_rate(lru, keys)
        tinylfu_rate = self._hit_rate(tinylfu, keys)
        assert tinylfu.admission_rejections > 0
        assert tinylfu_rate > lru_rate + 0.04, (lru_rate, tinylfu_rate)

    def test_tinylfu_serves_correct_cookies(self):
        """Admission only changes *what is cached*, never the bytes
        served: every cookie still decodes to the right values."""
        codec = TransportCookieCodec(
            APP_ID, _schema(), KEY, random.Random(23)
        )
        cache = CookieEncodeCache(codec, capacity=8, admission="tinylfu")
        decoder = TransportCookieCodec(
            APP_ID, _schema(), KEY, random.Random(97)
        )
        keys = self._zipf_keys(seed=29, n_keys=100, accesses=300)
        for lo in range(0, len(keys), 32):
            chunk = keys[lo:lo + 32]
            cids = cache.encode_batch(chunk, lambda i: _values(chunk[i]))
            for key, cid in zip(chunk, cids):
                assert decoder.decode(cid).values == _values(key)
        assert len(cache) <= 8

    def test_default_lru_pays_no_admission_machinery(self):
        cache = _cache(capacity=16)
        assert cache._freq is None
        cache.encode_batch(list(range(40)), lambda i: _values(i))
        assert cache.admission_rejections == 0
        assert cache.evictions == 40 - 16
