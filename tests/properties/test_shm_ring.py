"""Property suite for the shared-memory columnar ring.

:mod:`repro.testbed.shm_ring` is the transport under every persistent
shard worker, so its invariants are load-bearing for the whole
persistent tier:

* **FIFO byte-exactness** — rows come out in push order, byte for
  byte, through any interleaving of pushes and pops, across slot
  wraparound, transparent batch splitting and ragged spill blobs;
* **full/empty boundary** — ``try_push`` refuses exactly when all
  ``capacity`` slots are unreleased, ``try_pop`` refuses exactly when
  the ring is drained, and slots are reusable immediately after
  ``release`` — for many consecutive laps around the seqlock;
* **metadata snapshot/restore** — ``snapshot()`` captures cursors,
  sequence words and counters such that ``load_snapshot`` on a fresh
  mapping of the same segment resumes mid-stream;
* **reset** — returns any half-consumed ring to its pristine state.

All cases are randomized with shrinkable hypothesis strategies.  The
whole module skips where POSIX shared memory is unavailable (some
sandboxes mount no /dev/shm).
"""

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.testbed.shm_ring import (
    KIND_CONTROL,
    KIND_DATA,
    ColumnRing,
    shared_memory_available,
)

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="POSIX shared memory unavailable",
)

# Small geometry so wraparound, splitting and spill all trigger within
# a handful of batches.
CAPACITY = 4
ROW_CAPACITY = 8
ROW_WIDTH = 16
SPILL_BYTES = 256


def _ring(**overrides) -> ColumnRing:
    geometry = dict(
        capacity=CAPACITY,
        row_capacity=ROW_CAPACITY,
        row_width=ROW_WIDTH,
        spill_bytes=SPILL_BYTES,
    )
    geometry.update(overrides)
    return ColumnRing.create(**geometry)


def _drain_one(ring, out) -> bool:
    view = ring.try_pop()
    if view is None:
        return False
    out.extend(view.rows())
    ring.release()
    return True


def _stream_through(ring, batches):
    """Push every batch through ``ring`` against a real consumer
    thread (the ring is SPSC: blocking ``push`` needs an independent
    consumer to make progress on a full ring).  Returns the popped
    rows in arrival order."""
    popped = []
    produced = threading.Event()
    failures = []

    def consume():
        try:
            while True:
                if not _drain_one(ring, popped):
                    if produced.is_set() and ring.try_pop() is None:
                        return
                    time.sleep(0.0002)
        except Exception as exc:  # pragma: no cover - surfacing only
            failures.append(exc)

    consumer = threading.Thread(target=consume)
    consumer.start()
    try:
        for batch in batches:
            ring.push(batch, timeout=30.0)
    finally:
        produced.set()
        consumer.join(timeout=60.0)
    assert not failures, failures
    assert not consumer.is_alive(), "consumer failed to drain"
    return popped


# Rows up to 2x the slot lane width: > ROW_WIDTH forces the ragged
# spill path, <= ROW_WIDTH exercises the uniform fast path, and the
# mix inside one stream exercises their interleaving.
_rows = st.lists(
    st.binary(min_size=0, max_size=2 * ROW_WIDTH),
    min_size=0,
    max_size=3 * ROW_CAPACITY,  # > slot capacity forces splitting
)
_batches = st.lists(_rows, min_size=1, max_size=12)


class TestFifoByteExactness:
    @settings(max_examples=40, deadline=None)
    @given(batches=_batches)
    def test_concurrent_stream_preserves_rows(self, batches):
        """Rows survive any producer/consumer interleaving byte for
        byte and in order, through slot wraparound, transparent batch
        splitting (> row_capacity) and ragged spill (> row_width)."""
        with _ring() as ring:
            popped = _stream_through(ring, batches)
        expected = [bytes(r) for batch in batches for r in batch]
        assert popped == expected

    @settings(max_examples=20, deadline=None)
    @given(batches=_batches)
    def test_drain_then_reuse_is_stateless(self, batches):
        """A drained ring behaves like a fresh one: the same stream
        pushed twice round-trips identically both times."""
        with _ring() as ring:
            expected = [bytes(r) for batch in batches for r in batch]
            for _lap in range(2):
                assert _stream_through(ring, batches) == expected


class TestFullEmptyBoundary:
    @settings(max_examples=20, deadline=None)
    @given(laps=st.integers(min_value=1, max_value=6))
    def test_slot_accounting_across_wraparound(self, laps):
        """Exactly ``capacity`` one-row batches fit; the next push is
        refused until a release; repeat for several laps so the
        sequence words wrap the ring multiple times."""
        with _ring() as ring:
            for lap in range(laps):
                for i in range(CAPACITY):
                    row = b"%d:%d" % (lap, i)
                    assert ring.try_push([row])
                assert not ring.try_push([b"overflow"])
                for i in range(CAPACITY):
                    view = ring.pop(timeout=1.0)
                    assert view is not None
                    assert view.rows() == [b"%d:%d" % (lap, i)]
                    ring.release()
                assert ring.try_pop() is None

    def test_empty_ring_pops_nothing(self):
        with _ring() as ring:
            assert ring.try_pop() is None
            assert ring.pop(timeout=0.01) is None

    @settings(max_examples=20, deadline=None)
    @given(
        blobs=st.lists(
            st.binary(min_size=ROW_WIDTH + 1, max_size=SPILL_BYTES // 2),
            min_size=1,
            max_size=10,
        )
    )
    def test_spill_arena_wraps_and_recycles(self, blobs):
        """Ragged blobs allocate modularly from the side arena; each
        release retires its reservation so a long stream cannot wedge
        the arena (the bump-allocator bug the modular design fixed)."""
        with _ring() as ring:
            popped = _stream_through(ring, [[blob] for blob in blobs])
            assert popped == blobs
            assert ring.spills >= len(blobs)
            # Arena is fully recycled: cursors meet after a full drain.
            meta = ring.snapshot()
            assert meta["spill_head"] == meta["spill_tail"]


class TestControlSlots:
    @settings(max_examples=20, deadline=None)
    @given(
        payloads=st.lists(st.binary(min_size=1, max_size=ROW_WIDTH),
                          min_size=1, max_size=6)
    )
    def test_kind_rides_the_slot(self, payloads):
        with _ring() as ring:
            for i, payload in enumerate(payloads):
                kind = KIND_CONTROL if i % 2 else KIND_DATA
                ring.push([payload], kind=kind)
                view = ring.pop(timeout=1.0)
                assert view.kind == kind
                assert view.body() == payload
                ring.release()


class TestSnapshotRestore:
    @settings(max_examples=25, deadline=None)
    @given(
        batches=st.lists(
            st.lists(st.binary(min_size=0, max_size=ROW_WIDTH),
                     min_size=1, max_size=ROW_CAPACITY),
            min_size=1, max_size=3,
        ),
        consume=st.integers(min_value=0, max_value=3),
    )
    def test_metadata_roundtrip_resumes_midstream(self, batches, consume):
        """Snapshot cursors/seqs mid-stream, clobber them, restore —
        the remaining slots pop exactly as they would have."""
        batches = batches[:CAPACITY - 1]  # keep everything in-slot
        with _ring() as ring:
            for batch in batches:
                ring.push(batch)
            drained = []
            for _ in range(min(consume, len(batches))):
                _drain_one(ring, drained)
            meta = ring.snapshot()
            # Reload through a *separate mapping* of the same segment,
            # as a respawned supervisor would.
            other = ColumnRing.attach(ring.descriptor)
            try:
                other.load_snapshot(meta)
                assert other.snapshot() == meta
                remaining = []
                while _drain_one(other, remaining):
                    pass
                flat = [bytes(r) for batch in batches for r in batch]
                assert drained + remaining == flat
            finally:
                other.close()

    def test_reset_restores_pristine_state(self):
        with _ring() as ring:
            pristine = ring.snapshot()
            ring.push([b"abc", b"def"])
            ring.push([b"x" * (ROW_WIDTH + 3)])  # leaves spill state
            view = ring.pop(timeout=1.0)
            assert view is not None
            ring.release()
            ring.reset()
            meta = ring.snapshot()
            assert meta["head"] == pristine["head"] == 0
            assert meta["tail"] == pristine["tail"] == 0
            assert meta["seqs"] == pristine["seqs"]
            assert meta["spill_head"] == meta["spill_tail"] == 0
            assert ring.try_pop() is None
            # and the ring still works
            ring.push([b"after-reset"])
            view = ring.pop(timeout=1.0)
            assert view.rows() == [b"after-reset"]
            ring.release()

    def test_snapshot_capacity_mismatch_rejected(self):
        with _ring() as ring, _ring(capacity=8) as bigger:
            with pytest.raises(ValueError):
                bigger.load_snapshot(ring.snapshot())
