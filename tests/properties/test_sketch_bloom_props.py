"""Property tests for the approximate switch structures.

Count-min sketches must never underestimate and must respect their
analytic error bound; Bloom filters must never produce false negatives
and must keep false positives near the analytic rate.  Streams are
seeded stdlib ``random``, so every assertion is deterministic.
"""

import math
import random

import pytest

from repro.switch.bloom import BloomFilter, bloom_parameters
from repro.switch.sketch import CountMinSketch, dimensions_for


def _zipf_stream(rng, keys, total):
    """A heavy-tailed stream over ``keys`` summing to ``total``."""
    counts = {}
    for _ in range(total):
        rank = min(int(rng.paretovariate(1.1)) - 1, len(keys) - 1)
        key = keys[rank]
        counts[key] = counts.get(key, 0) + 1
    return counts


@pytest.mark.parametrize("seed", range(5))
def test_sketch_never_underestimates(seed):
    rng = random.Random(seed)
    keys = [("key-%d" % i).encode() for i in range(300)]
    counts = _zipf_stream(rng, keys, 5000)
    sketch = CountMinSketch(width=256, depth=4)
    for key, count in counts.items():
        sketch.add(key, count)
    for key, count in counts.items():
        assert sketch.estimate(key) >= count
    # Absent keys may collide into a positive estimate but never a
    # negative one.
    for i in range(100):
        assert sketch.estimate(("absent-%d" % i).encode()) >= 0


@pytest.mark.parametrize("seed", range(5))
def test_sketch_error_bound_mostly_holds(seed):
    """Estimates exceed truth by more than eps*N for at most ~delta of
    keys (the standard count-min guarantee is per-key probabilistic)."""
    epsilon, delta = 0.02, 0.01
    width, depth = dimensions_for(epsilon, delta)
    rng = random.Random(100 + seed)
    keys = [("key-%d" % i).encode() for i in range(400)]
    counts = _zipf_stream(rng, keys, 8000)
    sketch = CountMinSketch(width=width, depth=depth)
    for key, count in counts.items():
        sketch.add(key, count)
    bound = sketch.error_bound()
    assert bound == pytest.approx(math.e / width * sketch.total)
    violations = sum(
        1 for key, count in counts.items()
        if sketch.estimate(key) - count > bound
    )
    # Allow 5x the analytic failure probability as seed slack.
    assert violations <= max(1, int(5 * delta * len(counts)))


@pytest.mark.parametrize("seed", range(3))
def test_sketch_merge_equals_union_stream(seed):
    rng = random.Random(200 + seed)
    keys = [("key-%d" % i).encode() for i in range(200)]
    left = _zipf_stream(rng, keys, 2000)
    right = _zipf_stream(rng, keys, 2000)
    a = CountMinSketch(width=128, depth=3, name="a")
    b = CountMinSketch(width=128, depth=3, name="b")
    union = CountMinSketch(width=128, depth=3, name="u")
    for key, count in left.items():
        a.add(key, count)
        union.add(key, count)
    for key, count in right.items():
        b.add(key, count)
        union.add(key, count)
    a.merge(b)
    assert a.snapshot() == union.snapshot()
    assert a.total == union.total
    for key in keys:
        assert a.estimate(key) == union.estimate(key)


@pytest.mark.parametrize("seed", range(5))
def test_bloom_no_false_negatives(seed):
    rng = random.Random(300 + seed)
    bloom = BloomFilter.for_expected_items(500, target_fp_rate=0.01)
    inserted = [
        bytes(rng.getrandbits(8) for _ in range(12)) for _ in range(500)
    ]
    for key in inserted:
        bloom.add(key)
    for key in inserted:
        assert bloom.contains(key)
        assert bloom.add(key)  # re-insert reports "already present"


@pytest.mark.parametrize("seed", range(5))
def test_bloom_false_positive_rate_near_analytic(seed):
    rng = random.Random(400 + seed)
    expected_items, target = 500, 0.01
    size_bits, num_hashes = bloom_parameters(expected_items, target)
    bloom = BloomFilter(size_bits=size_bits, num_hashes=num_hashes)
    for _ in range(expected_items):
        bloom.add(bytes(rng.getrandbits(8) for _ in range(12)))
    probes = 4000
    false_positives = sum(
        1 for _ in range(probes)
        if bloom.contains(bytes(rng.getrandbits(8) for _ in range(16)))
    )
    analytic = bloom.false_positive_rate()
    assert analytic <= 3 * target
    # Measured FPR within 3x analytic plus absolute slack for small
    # samples; still sharp enough to catch a broken hash or index bug.
    assert false_positives / probes <= 3 * analytic + 0.01
