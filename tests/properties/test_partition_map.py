"""Property suite for the virtual-bucket placement layer.

Pins the invariants the elastic runtimes lean on:

* every bucket is always owned by exactly one live shard, through any
  sequence of rebalances and resizes;
* plans are deterministic — same loads, same map, in this process and
  in a fresh interpreter (the supervisor and its crash-replay must
  agree on placement without communicating);
* the default map reproduces the legacy ``crc32 % shards`` partition
  bit for bit whenever ``shards`` divides ``buckets``;
* resizing moves the minimum: growing touches only buckets that land
  on the *new* shards (bounded by the per-shard quota), shrinking
  touches only the retired shards' buckets;
* the vectorized ``partition_columns`` gather is byte-identical to the
  scalar ``partition_packets`` loop, bucket counts included, with the
  numpy gate open or closed.
"""

import random
import subprocess
import sys

import pytest

from repro.switch.columns import PacketColumns, force_numpy, get_numpy
from repro.switch.hashing import crc32
from repro.testbed.executor import (
    ShardSpec,
    partition_columns,
    partition_packets,
)
from repro.testbed.placement import (
    DEFAULT_BUCKETS,
    PartitionMap,
    PlacementController,
)
from repro.obs.registry import MetricsRegistry

from tests.differential.workloads import APP_ID, DifferentialWorkload

SEEDS = (3, 17, 4)
BUCKETS = DEFAULT_BUCKETS


def _loads(seed, buckets=BUCKETS, users=200):
    """Deterministic zipf(1) user population scattered over buckets:
    skewed enough that the static map sits well above the 1.15 bar,
    granular enough (hottest user ~17% of traffic) that bucket moves
    can rebalance it — the same shape the placement bench uses."""
    harmonic = sum(1.0 / rank for rank in range(1, users + 1))
    rng = random.Random(seed)
    loads = [0.0] * buckets
    for user in range(users):
        weight = 10_000.0 / ((user + 1) * harmonic)
        loads[rng.randrange(buckets)] += weight
    return loads


def _owned(pmap):
    assert len(pmap.assignment) == pmap.buckets
    assert all(0 <= s < pmap.shards for s in pmap.assignment)
    # No shard is ever left bucket-less by construction or planning.
    assert set(pmap.assignment) == set(range(pmap.shards))


class TestPartitionMapInvariants:
    @pytest.mark.parametrize("shards", (1, 2, 4, 5, 7))
    def test_every_bucket_owned(self, shards):
        _owned(PartitionMap(shards=shards))

    def test_default_map_is_legacy_modulo(self):
        """``shards`` dividing ``buckets`` makes the default table the
        literal ``crc32 % shards``: map-aware and map-less callers
        agree on every key."""
        keys = [("key-%d" % i).encode() for i in range(500)]
        for shards in (1, 2, 4):
            pmap = PartitionMap(shards=shards, buckets=BUCKETS)
            for key in keys:
                assert pmap.shard_for(key) == crc32(key) % shards

    def test_bad_assignment_rejected(self):
        with pytest.raises(ValueError):
            PartitionMap(shards=2, buckets=8, assignment=(0,) * 7)
        with pytest.raises(ValueError):
            PartitionMap(shards=2, buckets=8, assignment=(0, 2) * 4)
        with pytest.raises(ValueError):
            PartitionMap(shards=0)
        with pytest.raises(ValueError):
            PartitionMap(shards=9, buckets=8)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_rebalance_keeps_coverage_and_improves(self, seed):
        loads = _loads(seed)
        pmap = PartitionMap(shards=4)
        after = pmap.rebalanced(loads, target=1.05)
        _owned(after)
        assert after.imbalance(loads) <= pmap.imbalance(loads)
        if after is not pmap:
            assert after.version == pmap.version + 1

    def test_rebalance_noop_below_target(self):
        loads = [1.0] * BUCKETS  # perfectly even
        pmap = PartitionMap(shards=4)
        assert pmap.rebalanced(loads, target=1.05) is pmap

    @pytest.mark.parametrize("seed", SEEDS)
    def test_rebalance_deterministic_same_process(self, seed):
        loads = _loads(seed)
        pmap = PartitionMap(shards=4)
        first = pmap.rebalanced(loads, target=1.02)
        second = pmap.rebalanced(loads, target=1.02)
        assert first.assignment == second.assignment

    def test_rebalance_deterministic_across_processes(self):
        """A fresh interpreter plans the identical assignment — the
        property crash replay and multi-process supervision rest on."""
        loads = _loads(SEEDS[0])
        local = PartitionMap(shards=4).rebalanced(loads, target=1.02)
        script = (
            "import sys\n"
            "sys.path.insert(0, 'src')\n"
            "from tests.properties.test_partition_map import "
            "_loads, SEEDS\n"
            "from repro.testbed.placement import PartitionMap\n"
            "pmap = PartitionMap(shards=4).rebalanced("
            "_loads(SEEDS[0]), target=1.02)\n"
            "print(','.join(map(str, pmap.assignment)))\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, cwd=".",
        )
        assert proc.returncode == 0, proc.stderr
        remote = tuple(
            int(s) for s in proc.stdout.strip().split(",")
        )
        assert remote == local.assignment

    @pytest.mark.parametrize("old,new", ((4, 5), (4, 6), (2, 8), (8, 3),
                                         (4, 1), (5, 4)))
    def test_resize_minimal_movement(self, old, new):
        pmap = PartitionMap(shards=old)
        resized = pmap.resized(new)
        _owned(resized)
        assert resized.shards == new
        assert resized.version == pmap.version + 1
        moved = [
            (bucket, was, now)
            for bucket, (was, now) in enumerate(
                zip(pmap.assignment, resized.assignment)
            )
            if was != now
        ]
        quota = BUCKETS // new
        if new > old:
            # Growing: every move lands on a new shard, each filled to
            # at most its quota — so the total movement is bounded by
            # (new - old) * ceil(buckets / new).
            assert all(now >= old for _b, _was, now in moved)
            assert len(moved) <= (new - old) * (quota + 1)
            for shard in range(old, new):
                assert 0 < len(resized.shard_buckets(shard)) <= quota + 1
        else:
            # Shrinking: exactly the retired shards' buckets move.
            assert all(was >= new for _b, was, _now in moved)
            assert len(moved) == sum(
                1 for s in pmap.assignment if s >= new
            )

    def test_resize_same_size_is_identity(self):
        pmap = PartitionMap(shards=4)
        assert pmap.resized(4) is pmap

    def test_moved_buckets_counts(self):
        pmap = PartitionMap(shards=4)
        assert pmap.moved_buckets(pmap) == 0
        loads = _loads(SEEDS[1])
        after = pmap.rebalanced(loads, target=1.02)
        assert pmap.moved_buckets(after) == sum(
            1 for a, b in zip(pmap.assignment, after.assignment)
            if a != b
        )


class TestPlacementController:
    def _controller(self, **kw):
        kw.setdefault("shards", 4)
        kw.setdefault("registry", MetricsRegistry())
        return PlacementController(**kw)

    def test_hysteresis_leaves_balanced_loads_alone(self):
        controller = self._controller(cooldown_epochs=0)
        for _ in range(4):
            controller.observe([1.0] * BUCKETS)
            assert controller.end_epoch().version == 0
        assert controller.history == []

    def test_skew_triggers_one_rebalance_then_settles(self):
        controller = self._controller(cooldown_epochs=0)
        loads = _loads(SEEDS[0])
        before = controller.map.imbalance(loads)
        for _ in range(6):
            controller.observe(loads)
            controller.end_epoch()
        assert controller.rebalances >= 1
        assert controller.map.imbalance(loads) <= 1.15 < before
        # Settled: the same loads stop producing new versions.
        version = controller.map.version
        controller.observe(loads)
        assert controller.end_epoch().version == version

    def test_cooldown_blocks_back_to_back_changes(self):
        controller = self._controller(cooldown_epochs=3)
        hot = _loads(SEEDS[2])
        cold = _loads(SEEDS[2] + 1)
        controller.observe(hot)
        controller.end_epoch()
        changed_at = controller.map.version
        assert changed_at >= 1
        for _ in range(3):  # within the cooldown window
            controller.observe(cold)
            assert controller.end_epoch().version == changed_at

    def test_elastic_resize_tracks_epoch_load(self):
        controller = self._controller(
            shards=2, target_shard_load=100.0, max_shards=6,
            cooldown_epochs=0,
        )
        heavy = [2.0] * BUCKETS  # 512 packets -> wants 6 shards
        controller.observe(heavy)
        grown = controller.end_epoch()
        assert grown.shards == 6
        _owned(grown)
        light = [0.1] * BUCKETS  # 25 packets -> wants min_shards
        controller.observe(light)
        shrunk = controller.end_epoch()
        assert shrunk.shards == 1
        _owned(shrunk)
        assert controller.resizes == 2
        assert [h["action"] for h in controller.history] == [
            "resize", "resize",
        ]

    def test_observe_validates_width(self):
        controller = self._controller()
        with pytest.raises(ValueError):
            controller.observe([1.0] * (BUCKETS - 1))


class TestVectorizedPartition:
    """``partition_columns`` == ``partition_packets``, gate open or
    closed, for both partition-key kinds."""

    def _specs(self, wl):
        agg = ShardSpec(
            kind="agg", app_id=APP_ID, schema=wl.schema, key=wl.key,
            specs=tuple(wl.specs), seed=7,
        )
        lark = ShardSpec(
            kind="lark", app_id=APP_ID, schema=wl.schema, key=wl.key,
            specs=tuple(wl.specs), seed=7, dedup=False,
        )
        return {"agg": agg, "lark": lark}

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("kind", ("agg", "lark"))
    def test_matches_scalar_loop(self, seed, kind):
        wl = DifferentialWorkload(seed=seed)
        spec = self._specs(wl)[kind]
        if kind == "agg":
            packets = wl.payloads("zipfian", 300)
        else:
            packets = [bytes(c) for c in wl.cids("zipfian", 300)]
        pmap = PartitionMap(shards=3).rebalanced(
            _loads(seed), target=1.02
        )
        counts = [0] * pmap.buckets
        scalar = partition_packets(
            spec, pmap.shards, packets, pmap, counts
        )
        parts, vec_counts = partition_columns(spec, pmap, packets)
        assert [part.raw for part in parts] == scalar
        assert vec_counts == counts
        assert sum(vec_counts) == len(packets)

    def test_matches_with_numpy_gate_closed(self):
        wl = DifferentialWorkload(seed=SEEDS[0])
        spec = self._specs(wl)["agg"]
        packets = wl.payloads("uniform", 200)
        pmap = PartitionMap(shards=4)
        open_parts, open_counts = partition_columns(spec, pmap, packets)
        force_numpy(False)
        try:
            closed_parts, closed_counts = partition_columns(
                spec, pmap, packets
            )
        finally:
            force_numpy(None)
        assert [p.raw for p in closed_parts] == [
            p.raw for p in open_parts
        ]
        assert closed_counts == open_counts

    def test_columns_input_accepted(self):
        if get_numpy() is None:
            pytest.skip("numpy unavailable")
        wl = DifferentialWorkload(seed=SEEDS[1])
        spec = self._specs(wl)["lark"]
        packets = [bytes(c) for c in wl.cids("uniform", 150)]
        pmap = PartitionMap(shards=2)
        from_list, counts_list = partition_columns(spec, pmap, packets)
        from_cols, counts_cols = partition_columns(
            spec, pmap, PacketColumns(packets)
        )
        assert [p.raw for p in from_cols] == [p.raw for p in from_list]
        assert counts_cols == counts_list
