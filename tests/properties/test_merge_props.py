"""Property tests: snapshot merge is associative, commutative, and
shard-split-invariant.

The sharded AggSwitch relies on :func:`repro.core.stats.merge_snapshots`
being a proper commutative monoid fold over register snapshots: counts
and sums add, minima take min, maxima take max, and a freshly allocated
statistics program is the identity element.  These tests drive random
record streams through every statistic kind and check the algebra over
random shard splits.
"""

import random

import pytest

from repro.core.schema import CookieSchema, Feature
from repro.core.stats import (
    StatKind,
    StatSpec,
    SwitchStatistics,
    merge_snapshots,
)
from repro.switch.registers import RegisterFile

SCHEMA = CookieSchema(
    "merge-prop",
    (
        Feature.categorical("cls", ("a", "b", "c", "d")),
        Feature.categorical("grp", ("g0", "g1", "g2")),
        Feature.number("val", 0, 1000),
    ),
)

SPECS = [
    StatSpec("cls_by_grp", StatKind.COUNT_BY_CLASS, "cls", group_by="grp"),
    StatSpec("val_sum", StatKind.SUM, "val"),
    StatSpec("val_min", StatKind.MIN, "val"),
    StatSpec("val_max", StatKind.MAX, "val"),
    StatSpec("val_avg", StatKind.AVG, "val", group_by="grp"),
]


def make_stats():
    return SwitchStatistics(SCHEMA, SPECS, RegisterFile(), prefix="prop")


def random_record(rng):
    return {
        "cls": rng.choice(SCHEMA.feature("cls").classes),
        "grp": rng.choice(SCHEMA.feature("grp").classes),
        "val": rng.randrange(0, 1001),
    }


def snapshot_of(records):
    stats = make_stats()
    for record in records:
        stats.update(record)
    return stats.snapshot()


@pytest.mark.parametrize("seed", range(6))
def test_merge_commutative(seed):
    rng = random.Random(seed)
    a = snapshot_of([random_record(rng) for _ in range(50)])
    b = snapshot_of([random_record(rng) for _ in range(50)])
    assert merge_snapshots(SPECS, a, b) == merge_snapshots(SPECS, b, a)


@pytest.mark.parametrize("seed", range(6))
def test_merge_associative(seed):
    rng = random.Random(100 + seed)
    a = snapshot_of([random_record(rng) for _ in range(30)])
    b = snapshot_of([random_record(rng) for _ in range(30)])
    c = snapshot_of([random_record(rng) for _ in range(30)])
    assert merge_snapshots(SPECS, merge_snapshots(SPECS, a, b), c) == \
        merge_snapshots(SPECS, a, merge_snapshots(SPECS, b, c))


@pytest.mark.parametrize("seed", range(6))
def test_empty_stats_is_identity(seed):
    rng = random.Random(200 + seed)
    a = snapshot_of([random_record(rng) for _ in range(40)])
    empty = make_stats().snapshot()
    assert merge_snapshots(SPECS, a, empty) == a
    assert merge_snapshots(SPECS, empty, a) == a


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("shards", (2, 3, 5, 8))
def test_random_shard_split_merges_to_whole(seed, shards):
    """Partition one stream across N shards at random; the fold of the
    shard snapshots equals the unsharded snapshot, in any fold order."""
    rng = random.Random(300 + seed)
    records = [random_record(rng) for _ in range(120)]
    whole = snapshot_of(records)

    banks = [make_stats() for _ in range(shards)]
    for record in records:
        banks[rng.randrange(shards)].update(record)
    snapshots = [bank.snapshot() for bank in banks]

    order = list(range(shards))
    rng.shuffle(order)
    merged = snapshots[order[0]]
    for index in order[1:]:
        merged = merge_snapshots(SPECS, merged, snapshots[index])
    assert merged == whole

    # Rendering a merged snapshot equals rendering the whole.
    renderer = make_stats()
    assert renderer.report_from_snapshot(merged) == \
        renderer.report_from_snapshot(whole)
