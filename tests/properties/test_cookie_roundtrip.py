"""Property tests: cookie encode -> encrypt -> decrypt -> decode is the
identity, for random schemas and random value sets.

Covers both carriers: the transport cookie (AES-ECB block inside the
connection ID, 128-bit budget) and the application cookie (AES-CBC HTTP
cookie, unconstrained widths).  Schemas, keys and values are all drawn
from seeded stdlib ``random``.
"""

import random

import pytest

from repro.core.app_cookie import ApplicationCookieCodec
from repro.core.schema import CookieSchema, Feature, TRANSPORT_COOKIE_BITS
from repro.core.transport_cookie import TransportCookieCodec


def random_feature(rng, index, max_number_span):
    if rng.random() < 0.6:
        cardinality = rng.randrange(2, 9)
        return Feature.categorical(
            "f%d" % index,
            tuple("f%d-c%d" % (index, j) for j in range(cardinality)),
        )
    low = rng.randrange(-100, 100)
    return Feature.number("f%d" % index, low, low + rng.randrange(max_number_span))


def random_transport_schema(rng):
    """A random schema guaranteed to fit the 128-bit transport budget."""
    features = []
    bits = 0
    for index in range(rng.randrange(1, 8)):
        feature = random_feature(rng, index, max_number_span=1000)
        if bits + 1 + feature.bits > TRANSPORT_COOKIE_BITS:
            break
        bits += 1 + feature.bits
        features.append(feature)
    if not features:
        features = [Feature.categorical("f0", ("a", "b"))]
    return CookieSchema("prop-app", tuple(features))


def random_app_schema(rng):
    """Application-layer cookies have no 128-bit cap: allow wide ranges."""
    features = tuple(
        random_feature(rng, index, max_number_span=10**9)
        for index in range(rng.randrange(1, 10))
    )
    return CookieSchema("prop-app", features)


def random_value(feature, rng):
    if feature.classes:
        return rng.choice(feature.classes)
    return rng.randrange(feature.min_value, feature.max_value + 1)


def random_values(schema, rng, partial):
    names = list(schema.feature_names())
    if partial:
        rng.shuffle(names)
        names = names[: rng.randrange(1, len(names) + 1)]
    return {
        name: random_value(schema.feature(name), rng) for name in names
    }


@pytest.mark.parametrize("seed", range(8))
def test_transport_cookie_roundtrip(seed):
    rng = random.Random(seed)
    for trial in range(20):
        schema = random_transport_schema(rng)
        app_id = rng.randrange(256)
        key = bytes(rng.getrandbits(8) for _ in range(16))
        codec = TransportCookieCodec(
            app_id, schema, key, random.Random(rng.getrandbits(32))
        )
        values = random_values(schema, rng, partial=trial % 2 == 0)
        cid = codec.encode(values)
        assert codec.matches(cid)
        decoded = codec.decode(cid)
        assert decoded.app_id == app_id
        assert decoded.values == values
        for name in schema.feature_names():
            assert decoded.present(name) == (name in values)


@pytest.mark.parametrize("seed", range(8))
def test_transport_cookie_unlinkable_but_stable(seed):
    """Re-encoding the same values yields a distinct CID (random filler)
    whose preserved cookie bytes decode identically — the property the
    batch decode memo relies on."""
    rng = random.Random(1000 + seed)
    schema = random_transport_schema(rng)
    key = bytes(rng.getrandbits(8) for _ in range(16))
    codec = TransportCookieCodec(0x42, schema, key, random.Random(7))
    values = random_values(schema, rng, partial=False)
    first = codec.encode(values)
    second = codec.encode(values)
    assert codec.decode(first).values == codec.decode(second).values == values


@pytest.mark.parametrize("seed", range(8))
def test_app_cookie_roundtrip(seed):
    rng = random.Random(2000 + seed)
    for trial in range(20):
        schema = random_app_schema(rng)
        app_id = rng.randrange(256)
        key = bytes(rng.getrandbits(8) for _ in range(16))
        codec = ApplicationCookieCodec(
            app_id, schema, key, random.Random(rng.getrandbits(32))
        )
        values = random_values(schema, rng, partial=trial % 2 == 0)
        name, cookie_value = codec.encode(values)
        assert name == codec.cookie_name
        decoded = codec.decode(cookie_value)
        assert decoded.app_id == app_id
        assert decoded.values == values
