"""Match-action tables: match kinds, priorities, capacity."""

import pytest

from repro.switch.tables import (
    MatchActionTable,
    MatchKey,
    MatchKind,
    TableEntry,
    TableFullError,
)


def _table(kind, width=32, **kwargs):
    return MatchActionTable(
        "t", [MatchKey("f", kind, width)], **kwargs
    )


class TestExactMatch:
    def test_hit_and_miss(self):
        table = _table(MatchKind.EXACT)
        table.insert(TableEntry((7,), "act", {"x": 1}))
        action, params, hit = table.lookup([7])
        assert (action, params, hit) == ("act", {"x": 1}, True)
        action, _params, hit = table.lookup([8])
        assert (action, hit) == ("NoAction", False)

    def test_default_action_params(self):
        table = _table(
            MatchKind.EXACT, default_action="drop", default_params={"why": 1}
        )
        action, params, hit = table.lookup([1])
        assert (action, params["why"], hit) == ("drop", 1, False)

    def test_hit_counters(self):
        table = _table(MatchKind.EXACT)
        table.insert(TableEntry((1,), "a"))
        table.lookup([1])
        table.lookup([2])
        assert (table.lookups, table.hits) == (2, 1)


class TestTernaryMatch:
    def test_mask_applies(self):
        table = _table(MatchKind.TERNARY)
        table.insert(TableEntry(((0xA0, 0xF0),), "hi"))
        assert table.lookup([0xAF])[0] == "hi"
        assert table.lookup([0xBF])[0] == "NoAction"

    def test_priority_orders_overlaps(self):
        table = _table(MatchKind.TERNARY)
        table.insert(TableEntry(((0x00, 0x00),), "wildcard", priority=0))
        table.insert(TableEntry(((0xA0, 0xF0),), "specific", priority=10))
        assert table.lookup([0xA5])[0] == "specific"
        assert table.lookup([0x15])[0] == "wildcard"


class TestLpmMatch:
    def test_prefix(self):
        table = _table(MatchKind.LPM, width=32)
        table.insert(TableEntry(((0x0A000000, 8),), "net10"))
        assert table.lookup([0x0A0B0C0D])[0] == "net10"
        assert table.lookup([0x0B000001])[0] == "NoAction"


class TestRangeMatch:
    def test_inclusive_bounds(self):
        table = _table(MatchKind.RANGE)
        table.insert(TableEntry(((10, 20),), "mid"))
        assert table.lookup([10])[0] == "mid"
        assert table.lookup([20])[0] == "mid"
        assert table.lookup([21])[0] == "NoAction"


class TestMultiKey:
    def test_all_keys_must_match(self):
        table = MatchActionTable(
            "t",
            [
                MatchKey("sid", MatchKind.EXACT, 16),
                MatchKey("app", MatchKind.EXACT, 8),
            ],
        )
        table.insert(TableEntry((0x5A4E, 7), "merge"))
        assert table.lookup([0x5A4E, 7])[0] == "merge"
        assert table.lookup([0x5A4E, 8])[0] == "NoAction"
        assert table.lookup([0x0000, 7])[0] == "NoAction"

    def test_arity_checked(self):
        table = _table(MatchKind.EXACT)
        with pytest.raises(ValueError, match="keys"):
            table.insert(TableEntry((1, 2), "a"))
        with pytest.raises(ValueError):
            table.lookup([1, 2])


class TestCapacityAndRemoval:
    def test_capacity(self):
        table = _table(MatchKind.EXACT, max_entries=2)
        table.insert(TableEntry((1,), "a"))
        table.insert(TableEntry((2,), "a"))
        with pytest.raises(TableFullError):
            table.insert(TableEntry((3,), "a"))

    def test_remove(self):
        table = _table(MatchKind.EXACT)
        table.insert(TableEntry((1,), "a"))
        assert table.remove((1,))
        assert not table.remove((1,))
        assert table.lookup([1])[0] == "NoAction"

    def test_len_and_entries(self):
        table = _table(MatchKind.EXACT)
        table.insert(TableEntry((1,), "a"))
        assert len(table) == 1
        assert table.entries()[0].action == "a"

    def test_needs_keys(self):
        with pytest.raises(ValueError):
            MatchActionTable("t", [])
