"""Register arrays and the SRAM budget."""

import pytest

from repro.switch.registers import (
    RegisterArray,
    RegisterFile,
    SramExhaustedError,
)


class TestRegisterArray:
    def test_read_write(self):
        array = RegisterArray("r", 4)
        array.write(2, 99)
        assert array.read(2) == 99
        assert array.read(0) == 0

    def test_width_masking(self):
        array = RegisterArray("r", 2, width=8)
        array.write(0, 0x1FF)
        assert array.read(0) == 0xFF

    def test_add_returns_new_value_and_wraps(self):
        array = RegisterArray("r", 1, width=8)
        assert array.add(0, 10) == 10
        array.write(0, 255)
        assert array.add(0, 2) == 1

    def test_update_min_max(self):
        array = RegisterArray("r", 1)
        array.write(0, 50)
        assert array.update_min(0, 20) == 20
        assert array.update_min(0, 30) == 20
        assert array.update_max(0, 70) == 70
        assert array.update_max(0, 60) == 70

    def test_fill_and_reset(self):
        array = RegisterArray("r", 3)
        array.fill(7)
        assert array.snapshot() == [7, 7, 7]
        array.reset()
        assert array.snapshot() == [0, 0, 0]

    def test_snapshot_is_copy(self):
        array = RegisterArray("r", 2)
        snap = array.snapshot()
        snap[0] = 42
        assert array.read(0) == 0

    @pytest.mark.parametrize("index", [-1, 4])
    def test_bounds_checked(self, index):
        array = RegisterArray("r", 4)
        with pytest.raises(IndexError):
            array.read(index)
        with pytest.raises(IndexError):
            array.write(index, 1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RegisterArray("r", 0)
        with pytest.raises(ValueError):
            RegisterArray("r", 1, width=0)

    def test_bits_accounting(self):
        assert RegisterArray("r", 100, width=32).bits == 3200


class TestRegisterFile:
    def test_allocation_tracks_budget(self):
        rf = RegisterFile(sram_budget_bits=1000)
        rf.allocate("a", 10, width=32)  # 320 bits
        assert rf.used_bits == 320
        assert rf.free_bits == 680

    def test_exhaustion_raises(self):
        rf = RegisterFile(sram_budget_bits=100)
        with pytest.raises(SramExhaustedError, match="only 100 remain"):
            rf.allocate("big", 100, width=32)

    def test_duplicate_name_rejected(self):
        rf = RegisterFile()
        rf.allocate("a", 1)
        with pytest.raises(ValueError, match="already allocated"):
            rf.allocate("a", 1)

    def test_free_releases_budget(self):
        rf = RegisterFile(sram_budget_bits=320)
        rf.allocate("a", 10, width=32)
        with pytest.raises(SramExhaustedError):
            rf.allocate("b", 1)
        rf.free("a")
        rf.allocate("b", 10, width=32)  # now fits

    def test_free_unknown_is_noop(self):
        RegisterFile().free("ghost")

    def test_get(self):
        rf = RegisterFile()
        array = rf.allocate("a", 2)
        assert rf.get("a") is array
        with pytest.raises(KeyError):
            rf.get("b")

    def test_names_sorted(self):
        rf = RegisterFile()
        rf.allocate("z", 1)
        rf.allocate("a", 1)
        assert rf.names() == ["a", "z"]


class TestBulkLoad:
    def test_load_equals_per_cell_writes(self):
        bulk = RegisterArray("bulk", 8, width=16)
        loop = RegisterArray("loop", 8, width=16)
        values = [0, 1, 0xFFFF, 0x10000, 12345, 7, 0x1FFFF, 42]
        bulk.load(values)
        for i, v in enumerate(values):
            loop.write(i, v)
        assert bulk.snapshot() == loop.snapshot()

    def test_load_masks_to_width(self):
        array = RegisterArray("r", 2, width=8)
        array.load([0x1FF, 0x100])
        assert array.snapshot() == [0xFF, 0x00]

    def test_load_length_checked(self):
        array = RegisterArray("r", 4)
        with pytest.raises(ValueError):
            array.load([1, 2, 3])
        with pytest.raises(ValueError):
            array.load([1, 2, 3, 4, 5])

    def test_load_copies_input(self):
        array = RegisterArray("r", 3)
        values = [1, 2, 3]
        array.load(values)
        values[0] = 99
        assert array.read(0) == 1
