"""Pipeline model: stages, actions, clones, digests, resource limits."""

import pytest

from repro.switch.pipeline import (
    AES_PASS_LATENCY_MS,
    LINE_RATE_LATENCY_MS,
    MAX_STAGES,
    MAX_TABLES_PER_STAGE,
    PHV,
    PipelineCompileError,
    SwitchPipeline,
)
from repro.switch.primitives import UnsupportedOperationError
from repro.switch.tables import (
    MatchActionTable,
    MatchKey,
    MatchKind,
    TableEntry,
)


def _counting_pipeline():
    pipe = SwitchPipeline("p")
    table = MatchActionTable("t", [MatchKey("proto", MatchKind.EXACT, 8)])
    pipe.add_table(0, table)
    counter = pipe.registers.allocate("hits", 4)

    def count(pipeline, phv, params):
        counter.add(phv.get("idx", 0))

    pipe.register_action("count", count)
    table.insert(TableEntry((17,), "count"))
    return pipe, counter


class TestPHV:
    def test_field_access(self):
        phv = PHV({"a": 1})
        assert phv["a"] == 1
        phv["b"] = 2
        assert "b" in phv
        assert phv.get("missing", 9) == 9
        with pytest.raises(KeyError):
            phv["missing"]

    def test_copy_is_independent(self):
        phv = PHV({"a": 1})
        phv.metadata["m"] = True
        clone = phv.copy()
        clone["a"] = 2
        clone.metadata["m"] = False
        assert phv["a"] == 1 and phv.metadata["m"] is True


class TestProcessing:
    def test_matched_action_runs(self):
        pipe, counter = _counting_pipeline()
        result = pipe.process({"proto": 17, "idx": 2})
        assert result.forwarded
        assert counter.read(2) == 1
        assert result.latency_ms == LINE_RATE_LATENCY_MS

    def test_miss_runs_default_noop(self):
        pipe, counter = _counting_pipeline()
        pipe.process({"proto": 6, "idx": 2})
        assert counter.read(2) == 0

    def test_drop_skips_later_stages(self):
        pipe = SwitchPipeline("p")
        t0 = MatchActionTable("t0", [MatchKey("x", MatchKind.EXACT, 8)])
        t1 = MatchActionTable("t1", [MatchKey("x", MatchKind.EXACT, 8)])
        pipe.add_table(0, t0)
        pipe.add_table(1, t1)
        seen = []

        def drop(pipeline, phv, params):
            phv.drop = True

        def record(pipeline, phv, params):
            seen.append(phv["x"])

        pipe.register_action("drop", drop)
        pipe.register_action("record", record)
        t0.insert(TableEntry((1,), "drop"))
        t1.insert(TableEntry((1,), "record"))
        result = pipe.process({"x": 1})
        assert not result.forwarded
        assert seen == []
        assert pipe.packets_dropped == 1

    def test_clone_collected(self):
        pipe = SwitchPipeline("p")
        table = MatchActionTable("t", [MatchKey("x", MatchKind.EXACT, 8)])
        pipe.add_table(0, table)

        def clone(pipeline, phv, params):
            c = pipeline.clone_packet(phv)
            c.metadata["rewritten"] = True

        pipe.register_action("clone", clone)
        table.insert(TableEntry((1,), "clone"))
        result = pipe.process({"x": 1})
        assert len(result.clones) == 1
        assert result.clones[0].metadata["rewritten"]
        # Clones do not leak across packets.
        assert pipe.process({"x": 2}).clones == []

    def test_digest_collected(self):
        pipe = SwitchPipeline("p")
        table = MatchActionTable("t", [MatchKey("x", MatchKind.EXACT, 8)])
        pipe.add_table(0, table)
        pipe.register_action(
            "digest", lambda p, phv, a: p.emit_digest("seen", {"x": phv["x"]})
        )
        table.insert(TableEntry((1,), "digest"))
        result = pipe.process({"x": 1})
        assert result.digests[0].name == "seen"
        assert result.digests[0].data == {"x": 1}

    def test_latency_charge(self):
        pipe = SwitchPipeline("p")
        table = MatchActionTable("t", [MatchKey("x", MatchKind.EXACT, 8)])
        pipe.add_table(0, table)
        pipe.register_action(
            "aes", lambda p, phv, a: p.charge_latency(AES_PASS_LATENCY_MS)
        )
        table.insert(TableEntry((1,), "aes"))
        result = pipe.process({"x": 1})
        assert result.latency_ms == pytest.approx(
            LINE_RATE_LATENCY_MS + AES_PASS_LATENCY_MS
        )

    def test_negative_latency_rejected(self):
        pipe = SwitchPipeline("p")
        with pytest.raises(ValueError):
            pipe.charge_latency(-1)

    def test_unregistered_action_raises(self):
        pipe = SwitchPipeline("p")
        table = MatchActionTable("t", [MatchKey("x", MatchKind.EXACT, 8)])
        pipe.add_table(0, table)
        table.insert(TableEntry((1,), "ghost"))
        with pytest.raises(UnsupportedOperationError, match="unregistered"):
            pipe.process({"x": 1})


class TestResourceModel:
    def test_stage_limit(self):
        pipe = SwitchPipeline("p")
        for _ in range(MAX_STAGES):
            pipe.add_stage()
        with pytest.raises(PipelineCompileError, match="stages"):
            pipe.add_stage()

    def test_tables_per_stage_limit(self):
        pipe = SwitchPipeline("p")
        for i in range(MAX_TABLES_PER_STAGE):
            pipe.add_table(
                0, MatchActionTable("t%d" % i, [MatchKey("x", MatchKind.EXACT)])
            )
        with pytest.raises(PipelineCompileError, match="tables"):
            pipe.add_table(
                0, MatchActionTable("tx", [MatchKey("x", MatchKind.EXACT)])
            )

    def test_duplicate_action_rejected(self):
        pipe = SwitchPipeline("p")
        pipe.register_action("a", lambda p, v, x: None)
        with pytest.raises(ValueError):
            pipe.register_action("a", lambda p, v, x: None)

    def test_resource_report(self):
        pipe, _counter = _counting_pipeline()
        pipe.process({"proto": 17, "idx": 0})
        report = pipe.resource_report()
        assert report["stages_used"] == 1
        assert report["tables"] == 1
        assert report["packets_processed"] == 1
        assert report["sram_used_bits"] == 4 * 32
