"""Hash units: CRC check values, folding, range discipline."""

import zlib

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.switch.hashing import HashUnit, crc16, crc32, fold_hash


class TestCrc32:
    def test_check_value(self):
        assert crc32(b"123456789") == 0xCBF43926

    def test_empty(self):
        assert crc32(b"") == 0

    @given(st.binary(max_size=128))
    def test_matches_zlib(self, data):
        assert crc32(data) == zlib.crc32(data)


class TestCrc16:
    def test_check_value(self):
        assert crc16(b"123456789") == 0x29B1

    def test_empty(self):
        assert crc16(b"") == 0xFFFF

    @given(st.binary(max_size=64))
    def test_fits_16_bits(self, data):
        assert 0 <= crc16(data) <= 0xFFFF


class TestFoldHash:
    def test_folds_down(self):
        assert fold_hash(0xABCD, 8) == (0xAB ^ 0xCD)

    def test_zero(self):
        assert fold_hash(0, 8) == 0

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            fold_hash(1, 0)

    @given(st.integers(min_value=0, max_value=2**64), st.integers(1, 16))
    def test_within_width(self, value, width):
        assert 0 <= fold_hash(value, width) < (1 << width)


class TestHashUnit:
    def test_range_respected(self):
        unit = HashUnit(100)
        for i in range(200):
            assert 0 <= unit.hash(i.to_bytes(4, "big")) < 100

    def test_seeds_give_independent_functions(self):
        a = HashUnit(1 << 16, seed=1)
        b = HashUnit(1 << 16, seed=2)
        same = sum(
            a.hash(i.to_bytes(4, "big")) == b.hash(i.to_bytes(4, "big"))
            for i in range(256)
        )
        assert same < 16  # collisions should be rare

    def test_deterministic(self):
        unit = HashUnit(1000, seed=3)
        assert unit.hash(b"key") == unit.hash(b"key")

    def test_hash_int(self):
        unit = HashUnit(1000)
        assert unit.hash_int(12345) == unit.hash_int(12345)
        assert 0 <= unit.hash_int(0) < 1000

    def test_crc16_kind(self):
        unit = HashUnit(100, kind="crc16")
        assert 0 <= unit.hash(b"x") < 100

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            HashUnit(0)
        with pytest.raises(ValueError):
            HashUnit(10, kind="md5")

    def test_large_seed_accepted(self):
        unit = HashUnit(10, seed=3 * 0x9E3779B9)
        assert 0 <= unit.hash(b"x") < 10


class TestRowIndependence:
    def test_colliding_pairs_do_not_collide_in_every_row(self):
        """Regression: CRC is linear, so naive seed-prefixing makes a
        pair that collides under one seed collide under *all* seeds,
        collapsing multi-hash structures (Bloom filters) to one hash.
        The finalizer must break that correlation."""
        m = 1 << 12
        units = [HashUnit(m, seed=i * 0x9E3779B9 + 1) for i in range(3)]
        keys = [i.to_bytes(8, "big") for i in range(3000)]
        hashes = [[u.hash(k) for u in units] for k in keys]
        joint = 0
        single = 0
        for i in range(0, len(keys) - 1, 2):
            a, b = hashes[i], hashes[i + 1]
            if a[0] == b[0]:
                single += 1
                if a[1] == b[1] and a[2] == b[2]:
                    joint += 1
        # Some single-row collisions happen by chance; full-row joint
        # collisions must be (essentially) absent.
        assert joint == 0
