"""Unit tests for the compiled batch execution plan.

Covers the cache-invalidation contract of
:meth:`SwitchPipeline.compile_batch` — the compiled plan is reused
while the program and every table's control-plane state are unchanged,
and rebuilt the moment either moves — plus the per-batch bookkeeping of
:meth:`SwitchPipeline.process_batch`.
"""

import pytest

from repro.obs.registry import MetricsRegistry
from repro.switch.pipeline import SwitchPipeline
from repro.switch.primitives import UnsupportedOperationError
from repro.switch.tables import (
    MatchActionTable,
    MatchKey,
    MatchKind,
    TableEntry,
)


def build_pipeline(name="unit"):
    pipe = SwitchPipeline(name, registry=MetricsRegistry())
    table = MatchActionTable(
        "route",
        [MatchKey("port", MatchKind.EXACT, 8)],
        default_action="set_tag",
        default_params={"tag": 0},
    )
    pipe.add_table(0, table)
    pipe.register_action(
        "set_tag", lambda p, phv, params: phv.__setitem__("tag", params["tag"])
    )
    table.insert(TableEntry((1,), "set_tag", {"tag": 100}))
    table.insert(TableEntry((2,), "set_tag", {"tag": 200}))
    return pipe, table


def run_batch(pipe, ports):
    results = pipe.process_batch([{"port": p} for p in ports])
    return [r.phv["tag"] for r in results]


def test_compiled_plan_is_cached_while_unchanged():
    pipe, _ = build_pipeline()
    first = pipe.compile_batch()
    assert pipe.compile_batch() is first
    pipe.process_batch([{"port": 1}])
    pipe.process({"port": 2})
    assert pipe.compile_batch() is first


def test_table_insert_invalidates_plan():
    pipe, table = build_pipeline()
    first = pipe.compile_batch()
    assert run_batch(pipe, [1, 3]) == [100, 0]
    table.insert(TableEntry((3,), "set_tag", {"tag": 300}))
    assert not first.is_current()
    second = pipe.compile_batch()
    assert second is not first
    # The new entry takes effect in the batch path immediately.
    assert run_batch(pipe, [1, 3]) == [100, 300]


def test_table_remove_invalidates_plan():
    pipe, table = build_pipeline()
    first = pipe.compile_batch()
    assert run_batch(pipe, [2]) == [200]
    table.remove((2,))
    assert not first.is_current()
    assert run_batch(pipe, [2]) == [0]
    assert pipe.compile_batch() is not first


def test_register_action_invalidates_plan():
    pipe, table = build_pipeline()
    first = pipe.compile_batch()
    pipe.register_action(
        "double", lambda p, phv, params: phv.__setitem__("tag", 2 * params["tag"])
    )
    assert not first.is_current()
    table.insert(TableEntry((4,), "double", {"tag": 7}))
    assert run_batch(pipe, [4]) == [14]


def test_new_table_invalidates_plan():
    pipe, _ = build_pipeline()
    first = pipe.compile_batch()
    pipe.add_table(
        1, MatchActionTable("extra", [MatchKey("tag", MatchKind.EXACT, 16)])
    )
    assert not first.is_current()
    assert pipe.compile_batch() is not first


def test_unregistered_action_raises_in_batch():
    pipe = SwitchPipeline("unit-ghost", registry=MetricsRegistry())
    table = MatchActionTable("t", [MatchKey("x", MatchKind.EXACT, 8)])
    pipe.add_table(0, table)
    table.insert(TableEntry((1,), "ghost"))
    with pytest.raises(UnsupportedOperationError):
        pipe.process_batch([{"x": 1}])


def test_empty_batch_is_a_noop():
    pipe, _ = build_pipeline()
    before = pipe.packets_processed
    assert pipe.process_batch([]) == []
    assert pipe.packets_processed == before


def test_batch_counters_and_parity_with_scalar():
    scalar, _ = build_pipeline("unit-scalar")
    batched, _ = build_pipeline("unit-batched")
    ports = [1, 2, 3, 1, 2]
    scalar_results = [scalar.process({"port": p}) for p in ports]
    batch_results = batched.process_batch([{"port": p} for p in ports])
    assert [r.phv["tag"] for r in batch_results] == \
        [r.phv["tag"] for r in scalar_results]
    assert [r.latency_ms for r in batch_results] == \
        [r.latency_ms for r in scalar_results]
    assert [r.forwarded for r in batch_results] == \
        [r.forwarded for r in scalar_results]
    assert batched.packets_processed == scalar.packets_processed
    assert batched.metrics.value("pipeline.unit-batched.batches") == 1
    assert batched.metrics.get("pipeline.unit-batched.batch.size").count == 1
    # Table meters advance identically on both paths.
    assert batched.metrics.value("pipeline.unit-batched.packets") == \
        scalar.metrics.value("pipeline.unit-scalar.packets")
