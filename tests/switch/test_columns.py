"""Kernel-level parity tests for the columnar substrate.

The differential suite proves end-to-end bit-identity; these unit tests
pin the individual kernels — :class:`PacketColumns` layout (including
the uniform-length fast path), byte/be16 column extraction,
:func:`group_rows` duplicate grouping, :func:`crc32_many`, Bloom
``add_many`` and sketch ``add_many`` — against their scalar
counterparts, with numpy on and force-disabled.
"""

import random

import pytest

from repro.switch.bloom import BloomFilter
from repro.switch.columns import (
    PacketColumns,
    force_numpy,
    group_rows,
    numpy_enabled,
)
from repro.switch.hashing import crc32, crc32_many
from repro.switch.sketch import CountMinSketch


@pytest.fixture
def no_numpy():
    force_numpy(False)
    try:
        yield
    finally:
        force_numpy(None)


def _rows_uniform(n=40, width=20, seed=5):
    rng = random.Random(seed)
    return [bytes(rng.getrandbits(8) for _ in range(width)) for _ in range(n)]


def _rows_ragged(n=40, seed=6):
    rng = random.Random(seed)
    return [
        bytes(rng.getrandbits(8) for _ in range(rng.randrange(0, 25)))
        for _ in range(n)
    ]


# -- PacketColumns -----------------------------------------------------------


@pytest.mark.parametrize("make_rows", (_rows_uniform, _rows_ragged))
def test_packet_columns_layout(make_rows):
    """Rows round-trip through the padded matrix, both the uniform
    join+reshape fast path and the per-row ragged fill."""
    rows = make_rows()
    columns = PacketColumns(rows)
    assert columns.n == len(rows)
    assert columns.raw == rows
    assert list(columns.lengths) == [len(r) for r in rows]
    assert columns.max_len == max(len(r) for r in rows)
    if columns.vectorized:
        for i, row in enumerate(rows):
            assert bytes(columns.data[i, : len(row)]) == row
            assert not columns.data[i, len(row):].any(), "padding not zero"


def test_packet_columns_empty_and_no_numpy(no_numpy):
    empty = PacketColumns([])
    assert empty.n == 0 and empty.max_len == 0
    columns = PacketColumns(_rows_ragged())
    assert not columns.vectorized
    assert columns.data is None
    assert columns.lengths == [len(r) for r in columns.raw]


@pytest.mark.parametrize("make_rows", (_rows_uniform, _rows_ragged))
@pytest.mark.parametrize("index", (0, 2, 19, 24, 40))
def test_byte_column_matches_scalar(make_rows, index):
    rows = make_rows()
    got = list(PacketColumns(rows).byte_column(index, default=-1))
    assert got == [
        row[index] if len(row) > index else -1 for row in rows
    ]


@pytest.mark.parametrize("make_rows", (_rows_uniform, _rows_ragged))
@pytest.mark.parametrize("index", (0, 3, 18, 23, 40))
def test_be16_column_matches_scalar(make_rows, index):
    rows = make_rows()
    got = list(PacketColumns(rows).be16_column(index, default=0))
    assert got == [
        int.from_bytes(row[index:index + 2], "big")
        if len(row) >= index + 2 else 0
        for row in rows
    ]


def test_columns_match_without_numpy(no_numpy):
    rows = _rows_ragged()
    columns = PacketColumns(rows)
    assert list(columns.byte_column(2)) == [
        row[2] if len(row) > 2 else -1 for row in rows
    ]
    assert list(columns.be16_column(0)) == [
        int.from_bytes(row[0:2], "big") if len(row) >= 2 else 0
        for row in rows
    ]


# -- group_rows --------------------------------------------------------------


def _reference_grouping(rows, start, end):
    seen, keys, firsts, inverse = {}, [], [], []
    for i, row in enumerate(rows):
        sliced = row[start:end] if end is not None else row[start:]
        k = (len(row), sliced)
        if k not in seen:
            seen[k] = len(keys)
            keys.append(sliced)
            firsts.append(i)
        inverse.append(seen[k])
    return keys, firsts, inverse


@pytest.mark.parametrize("start,end", ((0, None), (1, 18), (2, 10), (5, 5)))
def test_group_rows_matches_scalar_scan(start, end):
    rng = random.Random(9)
    pool = [bytes(rng.getrandbits(8) for _ in range(20)) for _ in range(6)]
    # duplicates, truncations (same prefix, different length), and
    # rows shorter than the slice
    rows = [pool[rng.randrange(len(pool))] for _ in range(60)]
    rows += [row[:7] for row in rows[:5]] + [b"", b"\x00"]
    keys, firsts, inverse = group_rows(rows, start, end)
    ref_keys, ref_firsts, ref_inverse = _reference_grouping(rows, start, end)
    assert keys == ref_keys
    assert firsts == ref_firsts
    assert list(inverse) == ref_inverse


def test_group_rows_length_disambiguates():
    """A truncated row whose slice matches a full row's must not share
    its group (a short cookie aliasing a full one would poison the
    decode memo)."""
    full = bytes(range(20))
    rows = [full, full[:10], full]
    keys, firsts, inverse = group_rows(rows, 0, 8)
    assert list(inverse) == [0, 1, 0]
    assert firsts == [0, 1]


def test_group_rows_no_numpy_identical(no_numpy):
    rng = random.Random(11)
    pool = [bytes(rng.getrandbits(8) for _ in range(20)) for _ in range(4)]
    rows = [pool[rng.randrange(len(pool))] for _ in range(30)]
    keys, firsts, inverse = group_rows(rows, 1, 18)
    ref = _reference_grouping(rows, 1, 18)
    assert (keys, firsts, list(inverse)) == ref


# -- hashing / bloom / sketch kernels ---------------------------------------


def test_crc32_many_matches_scalar():
    rows = _rows_ragged(n=50, seed=13)
    assert [int(v) for v in crc32_many(rows)] == [crc32(r) for r in rows]
    columns = PacketColumns(rows)
    assert [int(v) for v in crc32_many(columns)] == [crc32(r) for r in rows]


def test_bloom_add_many_matches_sequential_add():
    rng = random.Random(17)
    keys = [
        bytes(rng.getrandbits(8) for _ in range(12)) for _ in range(80)
    ]
    keys += keys[:20]  # duplicates within the batch
    seq = BloomFilter(size_bits=4096, num_hashes=3, name="seq")
    vec = BloomFilter(size_bits=4096, num_hashes=3, name="vec")
    expected = [seq.add(k) for k in keys]
    assert vec.add_many(keys) == expected


def test_sketch_add_many_matches_sequential_add():
    rng = random.Random(19)
    keys = [
        bytes(rng.getrandbits(8) for _ in range(8)) for _ in range(100)
    ]
    seq = CountMinSketch(width=64, depth=3, name="seq")
    vec = CountMinSketch(width=64, depth=3, name="vec")
    for k in keys:
        seq.add(k)
    vec.add_many(keys)
    for k in keys:
        assert vec.estimate(k) == seq.estimate(k)


def test_kernels_match_without_numpy(no_numpy):
    assert not numpy_enabled()
    rows = _rows_ragged(n=30, seed=23)
    assert list(crc32_many(rows)) == [crc32(r) for r in rows]
