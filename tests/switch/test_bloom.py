"""Bloom filter: no false negatives, plausible false-positive rate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.switch.bloom import BloomFilter, optimal_num_hashes


class TestBasics:
    def test_add_then_contains(self):
        bloom = BloomFilter(1024, 3)
        assert not bloom.add(b"user-1")
        assert bloom.contains(b"user-1")

    def test_duplicate_detected(self):
        bloom = BloomFilter(1024, 3)
        bloom.add(b"user-1")
        assert bloom.add(b"user-1")  # already present
        assert bloom.items_added == 1

    def test_absent_key(self):
        bloom = BloomFilter(4096, 3)
        bloom.add(b"present")
        assert not bloom.contains(b"absent")

    def test_reset(self):
        bloom = BloomFilter(1024, 3)
        bloom.add(b"x")
        bloom.reset()
        assert not bloom.contains(b"x")
        assert bloom.items_added == 0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            BloomFilter(0)
        with pytest.raises(ValueError):
            BloomFilter(100, 0)
        with pytest.raises(ValueError):
            BloomFilter(100, 9)


class TestNoFalseNegatives:
    @given(st.lists(st.binary(min_size=1, max_size=20), max_size=100))
    @settings(max_examples=25)
    def test_every_inserted_key_is_found(self, keys):
        bloom = BloomFilter(8192, 4)
        for key in keys:
            bloom.add(key)
        assert all(bloom.contains(key) for key in keys)


class TestFalsePositiveRate:
    def test_analytic_estimate_monotone(self):
        bloom = BloomFilter(1024, 3)
        assert bloom.false_positive_rate(10) < bloom.false_positive_rate(500)

    def test_empirical_rate_near_estimate(self):
        bloom = BloomFilter(4096, 3)
        n = 500
        for i in range(n):
            bloom.add(b"in-%d" % i)
        false_hits = sum(
            bloom.contains(b"out-%d" % i) for i in range(2000)
        )
        empirical = false_hits / 2000
        analytic = bloom.false_positive_rate()
        assert empirical <= max(0.02, 3 * analytic)

    def test_zero_when_empty(self):
        assert BloomFilter(1024, 3).false_positive_rate() == 0.0


class TestOptimalHashes:
    def test_classic_formula(self):
        # m/n = 10 -> k ~ 7
        assert optimal_num_hashes(10_000, 1_000) == 7

    def test_clamped_to_switch_budget(self):
        assert optimal_num_hashes(10_000, 10) == 8
        assert optimal_num_hashes(10, 10_000) == 1

    def test_degenerate_population(self):
        assert optimal_num_hashes(1024, 0) == 1
