"""Bloom filter: no false negatives, plausible false-positive rate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.switch.bloom import (
    BloomFilter,
    bloom_parameters,
    optimal_num_hashes,
)


class TestBasics:
    def test_add_then_contains(self):
        bloom = BloomFilter(1024, 3)
        assert not bloom.add(b"user-1")
        assert bloom.contains(b"user-1")

    def test_duplicate_detected(self):
        bloom = BloomFilter(1024, 3)
        bloom.add(b"user-1")
        assert bloom.add(b"user-1")  # already present
        assert bloom.items_added == 1

    def test_absent_key(self):
        bloom = BloomFilter(4096, 3)
        bloom.add(b"present")
        assert not bloom.contains(b"absent")

    def test_reset(self):
        bloom = BloomFilter(1024, 3)
        bloom.add(b"x")
        bloom.reset()
        assert not bloom.contains(b"x")
        assert bloom.items_added == 0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            BloomFilter(0)
        with pytest.raises(ValueError):
            BloomFilter(100, 0)
        with pytest.raises(ValueError):
            BloomFilter(100, 9)


class TestNoFalseNegatives:
    @given(st.lists(st.binary(min_size=1, max_size=20), max_size=100))
    @settings(max_examples=25)
    def test_every_inserted_key_is_found(self, keys):
        bloom = BloomFilter(8192, 4)
        for key in keys:
            bloom.add(key)
        assert all(bloom.contains(key) for key in keys)


class TestFalsePositiveRate:
    def test_analytic_estimate_monotone(self):
        bloom = BloomFilter(1024, 3)
        assert bloom.false_positive_rate(10) < bloom.false_positive_rate(500)

    def test_empirical_rate_near_estimate(self):
        bloom = BloomFilter(4096, 3)
        n = 500
        for i in range(n):
            bloom.add(b"in-%d" % i)
        false_hits = sum(
            bloom.contains(b"out-%d" % i) for i in range(2000)
        )
        empirical = false_hits / 2000
        analytic = bloom.false_positive_rate()
        assert empirical <= max(0.02, 3 * analytic)

    def test_zero_when_empty(self):
        assert BloomFilter(1024, 3).false_positive_rate() == 0.0


class TestOptimalHashes:
    def test_classic_formula(self):
        # m/n = 10 -> k ~ 7
        assert optimal_num_hashes(10_000, 1_000) == 7

    def test_clamped_to_switch_budget(self):
        assert optimal_num_hashes(10_000, 10) == 8
        assert optimal_num_hashes(10, 10_000) == 1

    def test_degenerate_population(self):
        assert optimal_num_hashes(1024, 0) == 1

    def test_overloaded_boundary_pins_k_at_one(self):
        """The regression: once expected_items exceeds roughly
        ``2 * bits / ln 2`` the unclamped ``round()`` would return 0 —
        a zero-hash filter that matches everything."""
        bits = 1024
        for items in (2 * bits, 3 * bits, 100 * bits):
            assert optimal_num_hashes(bits, items) == 1

    @given(st.integers(min_value=1, max_value=1 << 20),
           st.integers(min_value=0, max_value=1 << 20))
    @settings(max_examples=50)
    def test_always_in_switch_budget(self, bits, items):
        assert 1 <= optimal_num_hashes(bits, items) <= 8


class TestBloomParameters:
    def test_classic_sizing(self):
        # n=1000 at 1% -> m ~ 9.6 bits/item, k ~ 7.
        bits, k = bloom_parameters(1000, 0.01)
        assert 9 * 1000 <= bits <= 10 * 1000
        assert k == 7

    def test_loose_target_never_degenerates(self):
        bits, k = bloom_parameters(1, target_fp_rate=0.99)
        assert bits >= 1
        assert k >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            bloom_parameters(0)
        with pytest.raises(ValueError):
            bloom_parameters(100, 0.0)
        with pytest.raises(ValueError):
            bloom_parameters(100, 1.0)

    def test_for_expected_items_builds_working_filter(self):
        bloom = BloomFilter.for_expected_items(500, target_fp_rate=0.01)
        expected_bits, expected_k = bloom_parameters(500, 0.01)
        assert bloom.size_bits == expected_bits
        assert bloom.num_hashes == expected_k
        for i in range(500):
            bloom.add(b"user-%d" % i)
        assert all(bloom.contains(b"user-%d" % i) for i in range(500))

    def test_single_hash_filter_still_works(self):
        """A k=1 filter (the clamped overload case) must keep the
        no-false-negative guarantee."""
        bloom = BloomFilter(64, optimal_num_hashes(64, 1000))
        assert bloom.num_hashes == 1
        for i in range(100):
            bloom.add(b"k%d" % i)
        assert all(bloom.contains(b"k%d" % i) for i in range(100))


class TestSnapshotRestore:
    def test_roundtrip(self):
        bloom = BloomFilter(2048, 3)
        for i in range(200):
            bloom.add(b"user-%d" % i)
        snap = bloom.snapshot()
        fresh = BloomFilter(2048, 3)
        fresh.load_snapshot(snap)
        assert fresh.items_added == bloom.items_added
        assert all(fresh.contains(b"user-%d" % i) for i in range(200))
        assert fresh.snapshot() == snap

    def test_size_mismatch_rejected(self):
        bloom = BloomFilter(1024, 3)
        with pytest.raises(ValueError):
            bloom.load_snapshot({"bits": [0] * 512, "items_added": 0})

    def test_restore_uses_bulk_load_not_per_cell_writes(self, monkeypatch):
        """Regression: load_snapshot used to call RegisterArray.write
        once per bit, which at 1M-user sizing (~9.6M bits) dominated
        every epoch restore.  It must go through one bulk load."""
        from repro.switch.registers import RegisterArray

        bloom = BloomFilter(4096, 3)
        for i in range(300):
            bloom.add(b"k%d" % i)
        snap = bloom.snapshot()

        calls = {"write": 0, "load": 0}
        real_write = RegisterArray.write
        real_load = RegisterArray.load

        def spy_write(self, index, value):
            calls["write"] += 1
            return real_write(self, index, value)

        def spy_load(self, values):
            calls["load"] += 1
            return real_load(self, values)

        monkeypatch.setattr(RegisterArray, "write", spy_write)
        monkeypatch.setattr(RegisterArray, "load", spy_load)
        fresh = BloomFilter(4096, 3)
        fresh.load_snapshot(snap)
        assert calls["write"] == 0
        assert calls["load"] == 1
        assert fresh.snapshot() == snap

    def test_restore_latency_scales_to_large_filters(self):
        """The bulk path keeps a ~1M-bit restore well under a second
        (the old loop took tens of seconds at this size)."""
        import time

        bloom = BloomFilter(1 << 20, 2)
        for i in range(1000):
            bloom.add(b"u%d" % i)
        snap = bloom.snapshot()
        fresh = BloomFilter(1 << 20, 2)
        start = time.perf_counter()
        fresh.load_snapshot(snap)
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0
        assert fresh.items_added == 1000
