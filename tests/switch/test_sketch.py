"""Count-min sketch: one-sided error, bounds, mergeability."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.switch.registers import RegisterFile, SramExhaustedError
from repro.switch.sketch import CountMinSketch, dimensions_for


class TestEstimates:
    def test_exact_for_sparse_streams(self):
        cms = CountMinSketch(width=2048, depth=4)
        for i in range(20):
            cms.add(b"key-%d" % i, count=i + 1)
        for i in range(20):
            assert cms.estimate(b"key-%d" % i) == i + 1

    def test_never_underestimates(self):
        cms = CountMinSketch(width=64, depth=3)
        truth = {}
        rng = random.Random(1)
        for _ in range(2000):
            key = b"k%d" % rng.randrange(200)
            truth[key] = truth.get(key, 0) + 1
            cms.add(key)
        for key, count in truth.items():
            assert cms.estimate(key) >= count

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=300))
    @settings(max_examples=20)
    def test_overestimate_within_bound(self, stream):
        cms = CountMinSketch(width=256, depth=4)
        truth = {}
        for item in stream:
            key = b"%d" % item
            cms.add(key)
            truth[key] = truth.get(key, 0) + 1
        for key, count in truth.items():
            assert count <= cms.estimate(key) <= count + cms.error_bound()

    def test_absent_key_small_estimate(self):
        cms = CountMinSketch(width=4096, depth=4)
        for i in range(100):
            cms.add(b"present-%d" % i)
        assert cms.estimate(b"never-seen") <= cms.error_bound() + 1

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            CountMinSketch().add(b"x", count=-1)


class TestHeavyHitters:
    def test_finds_the_elephant(self):
        cms = CountMinSketch(width=1024, depth=4)
        for _ in range(900):
            cms.add(b"elephant")
        for i in range(100):
            cms.add(b"mouse-%d" % i)
        candidates = [b"elephant"] + [b"mouse-%d" % i for i in range(100)]
        hitters = cms.heavy_hitters(candidates, threshold_fraction=0.5)
        assert hitters[0][0] == b"elephant"
        assert len(hitters) == 1

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            CountMinSketch().heavy_hitters([], threshold_fraction=0)


class TestMerge:
    def test_merged_counts_add(self):
        a = CountMinSketch(width=512, depth=3)
        b = CountMinSketch(width=512, depth=3)
        a.add(b"k", 5)
        b.add(b"k", 7)
        b.add(b"other", 2)
        a.merge(b)
        assert a.estimate(b"k") == 12
        assert a.estimate(b"other") == 2
        assert a.total == 14

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shapes"):
            CountMinSketch(width=512, depth=3).merge(
                CountMinSketch(width=256, depth=3)
            )


class TestResources:
    def test_reset(self):
        cms = CountMinSketch(width=128, depth=2)
        cms.add(b"x", 9)
        cms.reset()
        assert cms.estimate(b"x") == 0
        assert cms.total == 0

    def test_uses_register_budget(self):
        registers = RegisterFile(sram_budget_bits=128 * 32 * 2)
        CountMinSketch(width=128, depth=2, registers=registers)
        with pytest.raises(SramExhaustedError):
            CountMinSketch(width=128, depth=2, name="second",
                           registers=registers)

    def test_dimensions_for(self):
        width, depth = dimensions_for(0.01, 0.01)
        assert width >= 272
        assert depth >= 5
        with pytest.raises(ValueError):
            dimensions_for(0, 0.5)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=0)


class TestHeavyHitterCost:
    def test_one_estimate_per_candidate(self, monkeypatch):
        """Regression: heavy_hitters used to call estimate() twice per
        candidate (filter + kept value) — at depth hashes per estimate
        that doubled the control-plane read-out cost."""
        cms = CountMinSketch(width=512, depth=4)
        for _ in range(50):
            cms.add(b"hot")
        cms.add(b"cold")

        calls = {"estimate": 0}
        real_estimate = CountMinSketch.estimate

        def spy(self, key):
            calls["estimate"] += 1
            return real_estimate(self, key)

        monkeypatch.setattr(CountMinSketch, "estimate", spy)
        candidates = [b"hot", b"cold", b"absent"]
        hitters = cms.heavy_hitters(candidates, threshold_fraction=0.5)
        assert calls["estimate"] == len(candidates)
        assert hitters == [(b"hot", 50)]
