"""P4-style parser: header extraction, parse graph, emit/extract
round-trips, and the raw-bytes LarkSwitch path."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.larkswitch import LarkSwitch, lark_process_raw
from repro.core.schema import CookieSchema, Feature
from repro.core.stats import StatKind, StatSpec
from repro.core.transport_cookie import TransportCookieCodec
from repro.switch.parser import (
    ETHERNET,
    ETHERTYPE_IPV4,
    HeaderField,
    HeaderType,
    IPV4,
    ParseError,
    ParseState,
    Parser,
    QUIC_PORT,
    QUIC_SHORT,
    UDP,
    build_snatch_packet,
    snatch_parser,
)

KEY = bytes(range(16))


class TestHeaderType:
    def test_must_be_byte_aligned(self):
        with pytest.raises(ValueError, match="byte-aligned"):
            HeaderType("bad", (HeaderField("x", 5),))

    def test_extract_bit_fields(self):
        header = HeaderType(
            "h", (HeaderField("hi", 4), HeaderField("lo", 4))
        )
        fields = header.extract(b"\xAB", 0)
        assert fields == {"h.hi": 0xA, "h.lo": 0xB}

    def test_extract_offset(self):
        header = HeaderType("h", (HeaderField("v", 8),))
        assert header.extract(b"\x00\x42", 1) == {"h.v": 0x42}

    def test_extract_truncated(self):
        with pytest.raises(ParseError, match="truncated"):
            IPV4.extract(b"\x45\x00", 0)

    def test_emit_roundtrip(self):
        values = {"version": 4, "ihl": 5, "ttl": 64, "protocol": 17,
                  "src": 0x0A000001, "dst": 0x08080808}
        raw = IPV4.emit(values)
        fields = IPV4.extract(raw, 0)
        for name, value in values.items():
            assert fields["ipv4.%s" % name] == value

    def test_emit_range_checked(self):
        header = HeaderType("h", (HeaderField("v", 8),))
        with pytest.raises(ValueError):
            header.emit({"v": 256})

    @given(st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1))
    @settings(max_examples=25)
    def test_udp_roundtrip(self, sport, dport):
        raw = UDP.emit({"sport": sport, "dport": dport,
                        "length": 8, "checksum": 0})
        fields = UDP.extract(raw, 0)
        assert fields["udp.sport"] == sport
        assert fields["udp.dport"] == dport


class TestParseGraph:
    def test_full_snatch_stack(self):
        dcid = bytes(range(20))
        packet = build_snatch_packet(dcid)
        fields, payload_offset = snatch_parser().parse(packet)
        assert fields["eth.ethertype"] == ETHERTYPE_IPV4
        assert fields["ipv4.protocol"] == 17
        assert fields["udp.dport"] == QUIC_PORT
        assert fields["quic.app_id"] == dcid[1]
        assert fields["quic.cookie_block"] == int.from_bytes(
            dcid[2:18], "big"
        )
        assert payload_offset == len(packet)

    def test_non_ip_accepts_early(self):
        arp = ETHERNET.emit({"dst": 0, "src": 0, "ethertype": 0x0806})
        fields, offset = snatch_parser().parse(arp)
        assert "ipv4.protocol" not in fields
        assert offset == ETHERNET.total_bytes

    def test_non_udp_accepts_after_ipv4(self):
        eth = ETHERNET.emit({"dst": 0, "src": 0,
                             "ethertype": ETHERTYPE_IPV4})
        tcp_ip = IPV4.emit({"version": 4, "ihl": 5, "protocol": 6,
                            "ttl": 64, "src": 1, "dst": 2})
        fields, _ = snatch_parser().parse(eth + tcp_ip)
        assert "udp.dport" not in fields

    def test_non_quic_port_accepts_after_udp(self):
        eth = ETHERNET.emit({"dst": 0, "src": 0,
                             "ethertype": ETHERTYPE_IPV4})
        ip = IPV4.emit({"version": 4, "ihl": 5, "protocol": 17,
                        "ttl": 64, "src": 1, "dst": 2})
        dns = UDP.emit({"sport": 5353, "dport": 53, "length": 8,
                        "checksum": 0})
        fields, _ = snatch_parser().parse(eth + ip + dns)
        assert "quic.app_id" not in fields

    def test_truncated_quic_rejected(self):
        packet = build_snatch_packet(bytes(20))
        with pytest.raises(ParseError):
            snatch_parser().parse(packet[:-5])

    def test_unknown_state_rejected(self):
        parser = Parser(
            [ParseState("a", ETHERNET, lambda _f: "ghost")], start="a"
        )
        eth = ETHERNET.emit({"dst": 0, "src": 0, "ethertype": 0})
        with pytest.raises(ParseError, match="unknown state"):
            parser.parse(eth)

    def test_depth_bound(self):
        loop = Parser(
            [ParseState("a", ETHERNET, lambda _f: "a")], start="a"
        )
        eth = ETHERNET.emit({"dst": 0, "src": 0, "ethertype": 0}) * 32
        with pytest.raises(ParseError, match="depth"):
            loop.parse(eth)

    def test_invalid_start(self):
        with pytest.raises(ValueError):
            Parser([ParseState("a", ETHERNET, lambda _f: None)], start="b")


class TestRawLarkPath:
    def _lark(self):
        schema = CookieSchema(
            "x", (Feature.categorical("g", ["a", "b", "c"]),)
        )
        lark = LarkSwitch("l", random.Random(1))
        lark.register_application(
            0x42, schema, KEY,
            [StatSpec("count", StatKind.COUNT_BY_CLASS, "g")],
        )
        codec = TransportCookieCodec(0x42, schema, KEY, random.Random(2))
        return lark, codec

    def test_bytes_to_statistics(self):
        lark, codec = self._lark()
        packet = build_snatch_packet(bytes(codec.encode({"g": "c"})))
        result = lark_process_raw(lark, packet)
        assert result.decoded_values == {"g": "c"}
        assert result.aggregation_payload is not None
        assert lark.stats_report(0x42)["count"]["c"] == 1

    def test_non_quic_traffic_passes(self):
        lark, _codec = self._lark()
        arp = ETHERNET.emit({"dst": 0, "src": 0, "ethertype": 0x0806})
        result = lark_process_raw(lark, arp)
        assert not result.matched and result.forwarded_original

    def test_garbage_bytes_pass(self):
        lark, _codec = self._lark()
        result = lark_process_raw(lark, b"\x00" * 5)
        assert not result.matched and result.forwarded_original

    def test_dcid_validation(self):
        with pytest.raises(ValueError):
            build_snatch_packet(b"short")
