"""Switch ALU: supported integer ops, hardware limits."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.switch.primitives import (
    SUPPORTED_OPS,
    SwitchALU,
    UnsupportedOperationError,
)


class TestSupportedOps:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("add", 3, 4, 7),
            ("sub", 10, 4, 6),
            ("min", 3, 9, 3),
            ("max", 3, 9, 9),
            ("and", 0b1100, 0b1010, 0b1000),
            ("or", 0b1100, 0b1010, 0b1110),
            ("xor", 0b1100, 0b1010, 0b0110),
            ("shl", 1, 4, 16),
            ("shr", 16, 4, 1),
            ("eq", 5, 5, 1),
            ("ne", 5, 5, 0),
            ("lt", 3, 5, 1),
            ("le", 5, 5, 1),
            ("gt", 5, 3, 1),
            ("ge", 3, 5, 0),
        ],
    )
    def test_results(self, op, a, b, expected):
        assert SwitchALU().execute(op, a, b) == expected

    def test_not(self):
        alu = SwitchALU(width=8)
        assert alu.execute("not", 0b10101010) == 0b01010101

    def test_counts_executed_ops(self):
        alu = SwitchALU()
        alu.execute("add", 1, 1)
        alu.execute("xor", 1, 1)
        assert alu.ops_executed == 2


class TestWrapAround:
    def test_add_wraps(self):
        alu = SwitchALU(width=8)
        assert alu.execute("add", 255, 1) == 0

    def test_sub_wraps(self):
        alu = SwitchALU(width=8)
        assert alu.execute("sub", 0, 1) == 255

    def test_shl_truncates(self):
        alu = SwitchALU(width=8)
        assert alu.execute("shl", 0x81, 1) == 0x02

    def test_saturating_add_clamps(self):
        alu = SwitchALU(width=8)
        assert alu.saturating_add(250, 10) == 255

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_results_fit_width(self, a, b):
        alu = SwitchALU(width=8)
        for op in SUPPORTED_OPS:
            assert 0 <= alu.execute(op, a, b) <= 255


class TestHardwareLimits:
    @pytest.mark.parametrize("op", ["mod", "div", "mul", "log", "sqrt"])
    def test_unsupported_operands_raise(self, op):
        with pytest.raises(UnsupportedOperationError):
            SwitchALU().execute(op, 10, 3)

    def test_error_carries_hint(self):
        with pytest.raises(UnsupportedOperationError, match="modulo"):
            SwitchALU().execute("mod", 10, 3)

    def test_operand_range_checked(self):
        alu = SwitchALU(width=8)
        with pytest.raises(ValueError, match="container"):
            alu.execute("add", 256, 0)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            SwitchALU(width=0)
