"""Sampled quantile sketch: bounded memory, eviction, register accounting."""

import random

import pytest

from repro.switch.quantile_sketch import (
    SampledQuantileSketch,
    capacity_for,
    epsilon_for,
)
from repro.switch.registers import RegisterFile, SramExhaustedError


class TestConstruction:
    def test_sizing_from_epsilon(self):
        sketch = SampledQuantileSketch(epsilon=0.05, delta=0.01)
        assert sketch.capacity == capacity_for(0.05, 0.01) == 1060
        assert sketch.error_bound() <= 0.05

    def test_explicit_capacity_reports_its_epsilon(self):
        sketch = SampledQuantileSketch(capacity=512)
        assert sketch.epsilon == epsilon_for(512, sketch.delta)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SampledQuantileSketch(capacity=0)
        with pytest.raises(ValueError):
            capacity_for(0.0)
        with pytest.raises(ValueError):
            capacity_for(0.05, delta=1.5)
        with pytest.raises(ValueError):
            epsilon_for(0)

    def test_register_file_accounting(self):
        registers = RegisterFile()
        sketch = SampledQuantileSketch(
            capacity=100, registers=registers, name="q", value_bits=48
        )
        assert "q.values" in registers.names()
        assert sketch.bits == 100 * 48
        assert registers.used_bits == sketch.bits

    def test_register_budget_enforced(self):
        registers = RegisterFile(sram_budget_bits=100)
        with pytest.raises(SramExhaustedError):
            SampledQuantileSketch(capacity=100, registers=registers)


class TestBoundedMemory:
    def test_sample_never_exceeds_capacity(self):
        sketch = SampledQuantileSketch(capacity=32)
        for i in range(5000):
            sketch.add(b"k%d" % i)
        assert len(sketch) == 32
        assert len(sketch._free) == 0
        assert sketch.evictions > 0
        assert sketch.items + sketch.dropped == 5000

    def test_heap_stays_bounded_under_churn(self):
        sketch = SampledQuantileSketch(capacity=16)
        for i in range(20000):
            sketch.add(b"churn-%d" % i)
        assert len(sketch._heap) <= 4 * sketch.capacity

    def test_evicted_key_never_readmitted(self):
        sketch = SampledQuantileSketch(capacity=8)
        keys = [b"k%d" % i for i in range(400)]
        for key in keys:
            sketch.add(key)
        survivors = set(sketch._sample)
        # Replaying every key: survivors fold, evictees stay out.
        for key in keys:
            sketch.add(key)
        assert set(sketch._sample) == survivors
        assert sorted(sketch.sampled_values()) == [2] * 8

    def test_slots_are_recycled_and_zeroed(self):
        sketch = SampledQuantileSketch(capacity=4)
        for i in range(100):
            sketch.add(b"x%d" % i, 7)
        # All value cells outside live slots must be zero.
        live = {slot for slot, _prio in sketch._sample.values()}
        for slot in range(sketch.capacity):
            if slot not in live:
                assert sketch._values.read(slot) == 0


class TestReadout:
    def test_empty_sketch(self):
        sketch = SampledQuantileSketch(capacity=8)
        assert sketch.quantile(0.5) is None
        assert sketch.quantiles((0.1, 0.9)) == [None, None]
        assert sketch.rank(10) == 0.0
        assert sketch.distinct_estimate() == 0
        assert sketch.sampled_values() == []

    def test_quantile_bounds_checked(self):
        sketch = SampledQuantileSketch(capacity=8)
        with pytest.raises(ValueError):
            sketch.quantile(1.5)
        with pytest.raises(ValueError):
            sketch.quantile(-0.1)

    def test_nearest_rank_convention(self):
        sketch = SampledQuantileSketch(capacity=16)
        for i, v in enumerate([10, 20, 30, 40]):
            sketch.add(b"k%d" % i, v)
        assert sketch.quantile(0.0) == 10
        assert sketch.quantile(0.25) == 10
        assert sketch.quantile(0.5) == 20
        assert sketch.quantile(0.75) == 30
        assert sketch.quantile(1.0) == 40

    def test_rank_is_cdf(self):
        sketch = SampledQuantileSketch(capacity=16)
        for i, v in enumerate([1, 2, 2, 5]):
            sketch.add(b"k%d" % i, v)
        assert sketch.rank(0) == 0.0
        assert sketch.rank(1) == 0.25
        assert sketch.rank(2) == 0.75
        assert sketch.rank(5) == 1.0

    def test_negative_delta_rejected(self):
        sketch = SampledQuantileSketch(capacity=8)
        with pytest.raises(ValueError):
            sketch.add(b"k", -1)
        with pytest.raises(ValueError):
            sketch.add_many([b"k"], [-1])

    def test_add_many_alignment_checked(self):
        sketch = SampledQuantileSketch(capacity=8)
        with pytest.raises(ValueError):
            sketch.add_many([b"a", b"b"], [1])


class TestDeterminism:
    def test_same_stream_same_state_across_instances(self):
        rng = random.Random(77)
        stream = [b"u%d" % rng.randrange(300) for _ in range(2000)]
        a = SampledQuantileSketch(capacity=64)
        b = SampledQuantileSketch(capacity=64)
        for key in stream:
            a.add(key)
            b.add(key)
        assert a.snapshot() == b.snapshot()

    def test_seed_changes_the_sample(self):
        keys = [b"user-%d" % i for i in range(500)]
        a = SampledQuantileSketch(capacity=32)
        b = SampledQuantileSketch(capacity=32, seed=0xBEEF)
        for key in keys:
            a.add(key)
            b.add(key)
        assert set(a._sample) != set(b._sample)

    def test_reset_restores_pristine_state(self):
        sketch = SampledQuantileSketch(capacity=8)
        for i in range(50):
            sketch.add(b"k%d" % i, 3)
        sketch.reset()
        assert len(sketch) == 0
        assert sketch.items == sketch.dropped == sketch.evictions == 0
        assert sketch.sampled_values() == []
        assert sketch._values.snapshot() == [0] * 8
        # And it behaves like a fresh sketch afterwards.
        fresh = SampledQuantileSketch(capacity=8)
        for i in range(50):
            sketch.add(b"k%d" % i, 3)
            fresh.add(b"k%d" % i, 3)
        assert sketch.snapshot() == fresh.snapshot()
